#!/usr/bin/env bash
# Atomic-ordering lint for crates/runtime.
#
# The token protocol's correctness rests on the exact Release/Acquire
# edges model-checked in crates/runtime/src/check.rs (the eight
# invariants of docs/ROBUSTNESS.md §"Model checking"). A stray
# `Ordering::Relaxed` — or a brand-new atomic that the model checker
# never explores — silently weakens those proofs, so both are gated
# here and the gate runs in CI.
#
# Two rules:
#
#   1. Only the pinned set of files below may use atomics at all. A new
#      atomic in any other runtime source file must first be reviewed
#      against the model checker (extend src/check.rs or argue why the
#      new atomic is outside the token protocol), then added to
#      ALLOWED_ATOMIC_FILES in the same PR.
#
#   2. `Ordering::Relaxed` is forbidden in non-test runtime code except
#      at the allowlisted sites below. Code after a file's top-level
#      `#[cfg(test)]` marker is exempt: test counters are read only
#      after `thread::scope` joins, which are full happens-before edges.
#
# ---- Relaxed allowlist ------------------------------------------------
# ALLOW_RELAXED_RE matches the *content* of an allowed line:
#
#   release_ns (runner.rs): the handoff-latency timestamp. The stamp is
#     written before the Release store of `release_chunk` publishes the
#     grant, and read after the claimant's Acquire load of
#     `release_chunk` observes it — the pairing rides entirely on
#     release_chunk's Release/Acquire edge (model-checked token handoff,
#     invariant 1), so the value itself needs no ordering. A missed
#     pairing only drops a latency sample; it can never affect results.
#
#   release_digest (runner.rs): the checksummed-handoff digest. Stored
#     before `try_advance`'s Release store publishes the commit, loaded
#     by the claimant after its Acquire claim CAS observes it — exactly
#     the release_ns pattern, ordered by the token edge (VerifyModel
#     invariant: verification happens-before downstream commit
#     visibility). The digest is advisory next to the VerifyPacket slot
#     (a Mutex, its own synchronization); a stale read can only cause a
#     redundant verify, never a missed one.
#
#   scrubs (runner.rs): the arena-scrub pass counter. Bumped only by the
#     supervisor (single-loop) or the end-of-loop barrier leader
#     (sequence) and read into RunStats after `thread::scope` joins /
#     the barrier's own AcqRel edge — every reader is already ordered
#     after every writer, so the counter itself needs no ordering. Pure
#     statistics; no protocol decision reads it.
set -euo pipefail
cd "$(dirname "$0")/.."

RT=crates/runtime/src
# sched.rs: the DOACROSS post/wait counters (padded per-worker committed
#   frontiers, Release on post / Acquire in the gate) plus the stage
#   halt/unjournaled flags. The protocol is model-checked by
#   DoAcrossModel in src/check.rs; the module uses no Relaxed orderings.
ALLOWED_ATOMIC_FILES="barrier.rs govern.rs health.rs runner.rs sched.rs token.rs"
ALLOW_RELAXED_RE='(release_ns|release_digest)\.(load|store)\(|scrubs\.(load|fetch_add)\('

fail=0

# Rule 1: pinned atomic-using file set.
for f in "$RT"/*.rs; do
  base=$(basename "$f")
  if grep -qE 'Atomic(Bool|U8|U16|U32|U64|Usize|I8|I16|I32|I64|Isize|Ptr)|Ordering::' "$f"; then
    case " $ALLOWED_ATOMIC_FILES " in
      *" $base "*) ;;
      *)
        echo "lint_atomics: $f uses atomics but is not in the pinned set" >&2
        echo "  review it against the model checker (src/check.rs, docs/ROBUSTNESS.md)" >&2
        echo "  and add '$base' to ALLOWED_ATOMIC_FILES in scripts/lint_atomics.sh" >&2
        fail=1
        ;;
    esac
  fi
done

# Rule 2: no unlisted Relaxed in non-test code.
while IFS=: read -r file line content; do
  [ -n "$file" ] || continue
  testline=$(grep -n '^#\[cfg(test)\]' "$file" | head -1 | cut -d: -f1)
  if [ -n "$testline" ] && [ "$line" -gt "$testline" ]; then
    continue # test module: joins give happens-before
  fi
  if printf '%s' "$content" | grep -qE "$ALLOW_RELAXED_RE"; then
    continue
  fi
  echo "lint_atomics: $file:$line: unlisted Ordering::Relaxed in non-test code" >&2
  echo "  $content" >&2
  echo "  justify it against the model-checked invariants (src/check.rs," >&2
  echo "  docs/ROBUSTNESS.md) and extend ALLOW_RELAXED_RE, or use a stronger order" >&2
  fail=1
done < <(grep -n 'Ordering::Relaxed' "$RT"/*.rs /dev/null || true)

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "lint_atomics: ok"

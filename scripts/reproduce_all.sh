#!/usr/bin/env bash
# Regenerate every table/figure of the paper plus all extension
# experiments into results/, then run the full test and bench suites.
#
# Usage: scripts/reproduce_all.sh [scale-override]
#   The optional argument overrides each experiment's default workload
#   scale (1.0 = the paper's enlarged problem; sweeps default to 0.5).

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ARG="${1:-}"

mkdir -p results

BINS=(
  table1
  fig1_schedule
  fig2_speedup_procs
  fig3_loop_times
  fig4_l2_misses
  fig5_l1_misses
  fig6_chunk_size
  fig7_future
  extra_unbounded_wave5
  extra_jumpout_ablation
  extra_hoist_ablation
  extra_tlb_effect
  extra_amdahl
  extra_kernels
  extra_reuse_profile
  extra_modern
  extra_runtime_demo
  overview
)

cargo build --release -p cascade-bench

for b in "${BINS[@]}"; do
  echo "== $b"
  if [ -n "$SCALE_ARG" ]; then
    cargo run --release -q -p cascade-bench --bin "$b" -- "$SCALE_ARG" | tee "results/$b.txt"
  else
    cargo run --release -q -p cascade-bench --bin "$b" | tee "results/$b.txt"
  fi
done

echo "== tests"
cargo test --workspace --release 2>&1 | tee test_output.txt

echo "== criterion benches"
cargo bench --workspace 2>&1 | tee bench_output.txt

echo "done — see results/, test_output.txt, bench_output.txt"

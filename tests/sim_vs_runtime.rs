//! Simulator/runtime agreement: the same workload descriptions drive both
//! the trace-driven simulator and the real-thread runtime, and cascaded
//! real execution is bitwise identical to sequential real execution for
//! every PARMVR loop and the synthetic loop.

use cascaded_execution::rt::{run_cascaded, RtPolicy, RunnerConfig, SpecProgram};
use cascaded_execution::synth::{Synth, Variant};
use cascaded_execution::wave5::{Parmvr, ParmvrParams};
use cascaded_execution::ChunkPlan;

fn parmvr() -> Parmvr {
    Parmvr::build(ParmvrParams {
        scale: 0.01,
        seed: 31,
    })
}

fn sequential_checksum(p: Parmvr) -> u64 {
    let mut prog = SpecProgram::new(p.workload, p.arena).unwrap();
    for i in 0..prog.num_loops() {
        let k = prog.kernel(i);
        // SAFETY: single-threaded baseline.
        unsafe { cascaded_execution::rt::RealKernel::execute(&k, 0..p_iters(&k)) };
    }
    prog.checksum()
}

fn p_iters(k: &cascaded_execution::rt::SpecKernel<'_>) -> u64 {
    cascaded_execution::rt::RealKernel::iters(k)
}

#[test]
fn all_fifteen_parmvr_loops_cascade_bitwise() {
    let expected = sequential_checksum(parmvr());
    for policy in [RtPolicy::None, RtPolicy::Prefetch, RtPolicy::Restructure] {
        for threads in [2usize, 3] {
            let p = parmvr();
            let mut prog = SpecProgram::new(p.workload, p.arena).unwrap();
            for i in 0..prog.num_loops() {
                let k = prog.kernel(i);
                run_cascaded(
                    &k,
                    &RunnerConfig {
                        nthreads: threads,
                        iters_per_chunk: 301, // deliberately ragged
                        policy,
                        poll_batch: 32,
                    },
                );
            }
            assert_eq!(
                prog.checksum(),
                expected,
                "policy {policy:?}, {threads} threads diverged from sequential"
            );
        }
    }
}

#[test]
fn synthetic_loop_cascades_bitwise_in_both_variants() {
    for variant in [Variant::Dense, Variant::Sparse] {
        let expected = {
            let s = Synth::build(1 << 14, variant, 77);
            let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
            let k = prog.kernel(0);
            // SAFETY: single-threaded baseline.
            unsafe { cascaded_execution::rt::RealKernel::execute(&k, 0..p_iters(&k)) };
            prog.checksum()
        };
        let s = Synth::build(1 << 14, variant, 77);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let k = prog.kernel(0);
        run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: 4,
                iters_per_chunk: 123,
                policy: RtPolicy::Restructure,
                poll_batch: 16,
            },
        );
        assert_eq!(prog.checksum(), expected, "{variant:?} diverged");
    }
}

#[test]
fn simulator_and_runtime_agree_on_chunk_boundaries() {
    // Both sides split the iteration space with ChunkPlan; a plan built
    // from the same parameters must give identical ranges everywhere.
    let p = parmvr();
    for spec in &p.workload.loops {
        let plan_a = ChunkPlan::new(spec, 64 * 1024, 32);
        let plan_b = ChunkPlan::new(spec, 64 * 1024, 32);
        assert_eq!(plan_a, plan_b);
        let covered: u64 = plan_a.ranges().map(|r| r.end - r.start).sum();
        assert_eq!(
            covered, spec.iters,
            "{}: plan must cover the loop exactly",
            spec.name
        );
    }
}

#[test]
fn runtime_helper_stats_are_consistent() {
    let p = parmvr();
    let prog = SpecProgram::new(p.workload, p.arena).unwrap();
    let k = prog.kernel(0);
    let stats = run_cascaded(
        &k,
        &RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 256,
            policy: RtPolicy::Restructure,
            poll_batch: 16,
        },
    );
    let total_chunks: u64 = stats.threads.iter().map(|t| t.chunks).sum();
    assert_eq!(
        total_chunks, stats.chunks,
        "every chunk executed exactly once"
    );
    let coverage = stats.helper_coverage();
    assert!(
        (0.0..=1.0).contains(&coverage),
        "coverage must be a fraction: {coverage}"
    );
    let helped: u64 = stats.threads.iter().map(|t| t.helper_iters).sum();
    assert!(
        helped <= stats.iters,
        "helpers cannot cover more than the loop"
    );
}

//! Cross-crate integration: the full pipeline (workload -> simulators ->
//! reports) holds the paper's structural properties at test scale.

use cascaded_execution::wave5::{Parmvr, ParmvrParams};
use cascaded_execution::{
    machines, run_cascaded, run_sequential, run_unbounded, CascadeConfig, HelperPolicy,
    UnboundedConfig,
};

fn parmvr() -> Parmvr {
    Parmvr::build(ParmvrParams {
        scale: 0.05,
        seed: 99,
    })
}

fn cfg(nprocs: usize, policy: HelperPolicy) -> CascadeConfig {
    CascadeConfig {
        nprocs,
        policy,
        calls: 1,
        ..CascadeConfig::default()
    }
}

#[test]
fn restructured_beats_prefetched_beats_none_overall() {
    let p = parmvr();
    for machine in [machines::pentium_pro(), machines::r10000()] {
        let base = run_sequential(&machine, &p.workload, 1, true);
        let none = run_cascaded(&machine, &p.workload, &cfg(4, HelperPolicy::None));
        let pre = run_cascaded(&machine, &p.workload, &cfg(4, HelperPolicy::Prefetch));
        let rst = run_cascaded(
            &machine,
            &p.workload,
            &cfg(4, HelperPolicy::Restructure { hoist: true }),
        );
        let (s_none, s_pre, s_rst) = (
            none.overall_speedup_vs(&base),
            pre.overall_speedup_vs(&base),
            rst.overall_speedup_vs(&base),
        );
        assert!(
            s_rst > s_pre && s_pre > s_none,
            "{}: restructured {s_rst:.2} > prefetched {s_pre:.2} > none {s_none:.2}",
            machine.name
        );
        assert!(
            s_none <= 1.0,
            "{}: helperless cascading cannot win",
            machine.name
        );
    }
}

#[test]
fn cascading_moves_l2_misses_off_the_execution_phase() {
    let p = parmvr();
    let machine = machines::pentium_pro();
    let base = run_sequential(&machine, &p.workload, 1, true);
    let pre = run_cascaded(&machine, &p.workload, &cfg(4, HelperPolicy::Prefetch));
    let base_l2: u64 = base.loops.iter().map(|l| l.exec.l2_misses).sum();
    let exec_l2: u64 = pre.loops.iter().map(|l| l.exec.l2_misses).sum();
    let helper_l2: u64 = pre.loops.iter().map(|l| l.helper.l2_misses).sum();
    assert!(
        (exec_l2 as f64) < 0.3 * base_l2 as f64,
        "execution-phase misses must collapse: {exec_l2} vs baseline {base_l2}"
    );
    assert!(
        helper_l2 > 0,
        "the misses must reappear in the helper phases"
    );
}

#[test]
fn speedup_grows_with_processors_and_unbounded_dominates() {
    let p = parmvr();
    let machine = machines::r10000();
    let base = run_sequential(&machine, &p.workload, 1, true);
    let policy = HelperPolicy::Restructure { hoist: true };
    let s2 = run_cascaded(&machine, &p.workload, &cfg(2, policy)).overall_speedup_vs(&base);
    let s8 = run_cascaded(&machine, &p.workload, &cfg(8, policy)).overall_speedup_vs(&base);
    let unb = run_unbounded(
        &machine,
        &p.workload,
        &UnboundedConfig {
            policy,
            calls: 1,
            ..UnboundedConfig::default()
        },
    )
    .overall_speedup_vs(&base);
    assert!(
        s8 >= s2,
        "more processors should not hurt: {s2:.2} -> {s8:.2}"
    );
    assert!(
        unb >= s8 * 0.95,
        "unbounded processors bound the achievable speedup: {unb:.2} vs {s8:.2}"
    );
}

#[test]
fn per_loop_spread_matches_paper_shape() {
    // The paper: individual loops range from slight slowdown (0.9x) to
    // strong speedup; the no-read-only loop (L4) must be among the losers.
    let p = parmvr();
    let machine = machines::pentium_pro();
    let base = run_sequential(&machine, &p.workload, 1, true);
    let rst = run_cascaded(
        &machine,
        &p.workload,
        &cfg(4, HelperPolicy::Restructure { hoist: true }),
    );
    let speedups = rst.loop_speedups_vs(&base);
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min > 1.5,
        "per-loop spread must be wide: {min:.2}..{max:.2}"
    );
    assert!(min > 0.7, "no catastrophic slowdown: {min:.2}");
    let l4 = speedups[3];
    assert!(
        l4 < max * 0.8,
        "L4 (nothing to restructure) must not be a top gainer: {l4:.2} vs max {max:.2}"
    );
}

#[test]
fn reports_are_fully_deterministic_across_builds() {
    let a = {
        let p = parmvr();
        let m = machines::r10000();
        run_cascaded(
            &m,
            &p.workload,
            &cfg(4, HelperPolicy::Restructure { hoist: false }),
        )
    };
    let b = {
        let p = parmvr();
        let m = machines::r10000();
        run_cascaded(
            &m,
            &p.workload,
            &cfg(4, HelperPolicy::Restructure { hoist: false }),
        )
    };
    assert_eq!(a.total_cycles(), b.total_cycles());
    for (la, lb) in a.loops.iter().zip(&b.loops) {
        assert_eq!(la.exec.l1_misses, lb.exec.l1_misses);
        assert_eq!(la.exec.l2_misses, lb.exec.l2_misses);
        assert_eq!(la.chunks, lb.chunks);
        assert_eq!(la.helper_iters, lb.helper_iters);
    }
}

#[test]
fn both_machines_run_the_same_workload_object() {
    // One workload instance must be reusable across machines and runs
    // (the simulators never mutate it).
    let p = parmvr();
    let w = &p.workload;
    let before = w.space.extent();
    let _ = run_sequential(&machines::pentium_pro(), w, 1, true);
    let _ = run_cascaded(
        &machines::r10000(),
        w,
        &cfg(3, HelperPolicy::Restructure { hoist: true }),
    );
    assert_eq!(w.space.extent(), before, "workload must be unchanged");
    assert_eq!(w.loops.len(), 15);
}

//! Property-based tests over randomized workloads: the invariants that
//! must hold for *any* loop population, not just PARMVR.

use proptest::prelude::*;

use cascaded_execution::rt::{
    run_cascaded as rt_cascaded, RealKernel, RtPolicy, RunnerConfig, SpecProgram,
};
use cascaded_execution::{
    machines, run_cascaded, run_sequential, AddressSpace, Arena, CascadeConfig, ChunkPlan,
    HelperPolicy, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};

/// Data-array length used by all generated workloads.
const ARR_LEN: u64 = 8192;

/// A generated reference stream, in index form.
#[derive(Debug, Clone)]
struct GenRef {
    read_pool: bool,
    array_pick: u8,
    indirect: bool,
    stride: i64,
    base: i64,
    mode_pick: u8,
    hoistable: bool,
}

/// A generated workload configuration.
#[derive(Debug, Clone)]
struct GenWorkload {
    iters: u64,
    refs: Vec<GenRef>,
    seed: u64,
}

fn gen_ref() -> impl Strategy<Value = GenRef> {
    (
        any::<bool>(),
        0u8..3,
        any::<bool>(),
        1i64..4,
        0i64..4,
        0u8..3,
        any::<bool>(),
    )
        .prop_map(
            |(read_pool, array_pick, indirect, stride, base, mode_pick, hoistable)| GenRef {
                read_pool,
                array_pick,
                indirect,
                stride,
                base,
                mode_pick,
                hoistable,
            },
        )
}

fn gen_workload() -> impl Strategy<Value = GenWorkload> {
    (
        64u64..800,
        proptest::collection::vec(gen_ref(), 1..5),
        any::<u64>(),
    )
        .prop_map(|(iters, refs, seed)| GenWorkload { iters, refs, seed })
}

/// Materialize a generated configuration into a valid workload + arena.
/// Read refs draw from a read-only array pool, write/modify refs from a
/// disjoint written pool, so helper-phase reads can never race.
fn build(gw: &GenWorkload) -> (Workload, Arena) {
    let mut space = AddressSpace::new();
    let read_pool: Vec<_> = (0..3)
        .map(|i| space.alloc(&format!("r{i}"), 8, ARR_LEN))
        .collect();
    let write_pool: Vec<_> = (0..3)
        .map(|i| space.alloc(&format!("w{i}"), 8, ARR_LEN))
        .collect();
    let index_arr = space.alloc("idx", 4, ARR_LEN);

    let mut index = IndexStore::new();
    // Deterministic pseudo-random in-range indices.
    index.set(
        index_arr,
        (0..ARR_LEN)
            .map(|i| ((i.wrapping_mul(2_654_435_761) ^ gw.seed) % ARR_LEN) as u32)
            .collect(),
    );

    let mut refs = Vec::new();
    let mut any_write = false;
    for (k, r) in gw.refs.iter().enumerate() {
        let mode = if r.read_pool {
            Mode::Read
        } else {
            any_write = true;
            if r.mode_pick == 0 {
                Mode::Write
            } else {
                Mode::Modify
            }
        };
        let pool = if r.read_pool { &read_pool } else { &write_pool };
        let array = pool[(r.array_pick as usize) % pool.len()];
        // Keep affine walks in bounds: base + stride * iters <= ARR_LEN.
        let stride = r
            .stride
            .min(((ARR_LEN - 8) / gw.iters.max(1)) as i64)
            .max(1);
        let pattern = if r.indirect {
            Pattern::Indirect {
                index: index_arr,
                ibase: 0,
                istride: stride,
            }
        } else {
            Pattern::Affine {
                base: r.base,
                stride,
            }
        };
        refs.push(StreamRef {
            name: Box::leak(format!("ref{k}").into_boxed_str()),
            array,
            pattern,
            mode,
            bytes: 8,
            hoistable: r.hoistable && mode == Mode::Read,
        });
    }
    // Ensure the loop writes something (pure-read loops are legal but make
    // runtime equivalence vacuous) half the time by adding a writer.
    if !any_write {
        refs.push(StreamRef {
            name: "out(i)",
            array: write_pool[0],
            pattern: Pattern::Affine { base: 0, stride: 1 },
            mode: Mode::Write,
            bytes: 8,
            hoistable: false,
        });
    }
    let any_hoistable = refs.iter().any(|r| r.hoistable);
    let spec = LoopSpec {
        name: "generated".into(),
        iters: gw.iters,
        refs,
        compute: 7.0,
        hoistable_compute: if any_hoistable { 3.0 } else { 0.0 },
        hoist_result_bytes: if any_hoistable { 8 } else { 0 },
    };
    spec.validate();
    let workload = Workload {
        space,
        index,
        loops: vec![spec],
    };
    let mut arena = Arena::new(&workload.space);
    for (i, id) in read_pool.iter().chain(&write_pool).enumerate() {
        for e in 0..ARR_LEN {
            let v = ((e ^ gw.seed) as f64).sin() * 0.5 + i as f64;
            arena.set_f64(&workload.space, *id, e, v);
        }
    }
    arena.install_indices(&workload.space, &workload.index);
    (workload, arena)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cascaded real-thread execution is bitwise identical to sequential
    /// execution for arbitrary workloads, thread counts, chunk sizes and
    /// helper policies.
    #[test]
    fn runtime_matches_sequential_bitwise(
        gw in gen_workload(),
        threads in 1usize..5,
        chunk in 17u64..600,
        policy_pick in 0u8..3,
    ) {
        let policy = match policy_pick {
            0 => RtPolicy::None,
            1 => RtPolicy::Prefetch,
            _ => RtPolicy::Restructure,
        };
        let expected = {
            let (w, a) = build(&gw);
            let mut prog = SpecProgram::new(w, a).unwrap();
            let k = prog.kernel(0);
            // SAFETY: single-threaded baseline.
            unsafe { k.execute(0..k.iters()) };
            prog.checksum()
        };
        let (w, a) = build(&gw);
        let mut prog = SpecProgram::new(w, a).unwrap();
        let k = prog.kernel(0);
        rt_cascaded(&k, &RunnerConfig {
            nthreads: threads,
            iters_per_chunk: chunk,
            policy,
            poll_batch: 16,
        });
        prop_assert_eq!(prog.checksum(), expected);
    }

    /// The simulator is deterministic and its reports are well-formed for
    /// arbitrary workloads and cascade parameters.
    #[test]
    fn simulator_reports_are_wellformed(
        gw in gen_workload(),
        nprocs in 1usize..9,
        chunk_kb in 1u64..129,
        policy_pick in 0u8..4,
        jump_out in any::<bool>(),
    ) {
        let policy = match policy_pick {
            0 => HelperPolicy::None,
            1 => HelperPolicy::Prefetch,
            2 => HelperPolicy::Restructure { hoist: false },
            _ => HelperPolicy::Restructure { hoist: true },
        };
        let (w, _) = build(&gw);
        let m = machines::pentium_pro();
        let cfg = CascadeConfig {
            nprocs,
            chunk_bytes: chunk_kb * 1024,
            policy,
            jump_out,
            calls: 1,
            flush_between_calls: true,
        };
        let r1 = run_cascaded(&m, &w, &cfg);
        let r2 = run_cascaded(&m, &w, &cfg);
        prop_assert_eq!(r1.total_cycles(), r2.total_cycles());
        let l = &r1.loops[0];
        prop_assert!(l.cycles > 0.0);
        prop_assert!(l.helper_iters <= l.iters);
        prop_assert!(l.helper_complete <= l.chunks);
        prop_assert_eq!(l.iters, w.loops[0].iters);
        // Chunk accounting matches the plan.
        let plan = ChunkPlan::new(&w.loops[0], cfg.chunk_bytes, m.l1.line as u64);
        prop_assert_eq!(l.chunks, plan.num_chunks());
    }

    /// With unbounded helper time (no jump-out, enough processors), the
    /// prefetch policy can only reduce execution-phase memory traffic
    /// relative to the sequential baseline.
    #[test]
    fn prefetch_never_adds_execution_phase_memory_traffic(
        gw in gen_workload(),
    ) {
        let (w, _) = build(&gw);
        let m = machines::pentium_pro();
        let base = run_sequential(&m, &w, 1, true);
        let cfg = CascadeConfig {
            nprocs: 8,
            chunk_bytes: 32 * 1024,
            policy: HelperPolicy::Prefetch,
            jump_out: false,
            calls: 1,
            flush_between_calls: true,
        };
        let r = run_cascaded(&m, &w, &cfg);
        let base_mem: u64 = base.loops.iter().map(|l| l.exec.mem_lines).sum();
        let exec_mem: u64 = r.loops.iter().map(|l| l.exec.mem_lines).sum();
        // Tolerance for boundary lines shared between chunks on different
        // processors (each fetches its own copy).
        prop_assert!(
            exec_mem as f64 <= base_mem as f64 * 1.05 + 64.0,
            "exec-phase lines {} vs baseline {}", exec_mem, base_mem
        );
    }

    /// Chunk plans partition any iteration space exactly.
    #[test]
    fn chunk_plans_partition(iters in 1u64..100_000, per in 1u64..5_000) {
        let plan = ChunkPlan::by_iterations(iters, per);
        let mut next = 0u64;
        for r in plan.ranges() {
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end > r.start);
            next = r.end;
        }
        prop_assert_eq!(next, iters);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential invariant: a one-processor cascade with no helper is
    /// the sequential execution plus exactly one control transfer per
    /// chunk — same cycles otherwise, same misses.
    #[test]
    fn single_processor_cascade_equals_sequential_plus_transfers(
        gw in gen_workload(),
        chunk_kb in 1u64..65,
    ) {
        let (w, _) = build(&gw);
        let m = machines::pentium_pro();
        let seq = run_sequential(&m, &w, 1, true);
        let casc = run_cascaded(&m, &w, &CascadeConfig {
            nprocs: 1,
            chunk_bytes: chunk_kb * 1024,
            policy: HelperPolicy::None,
            jump_out: true,
            calls: 1,
            flush_between_calls: true,
        });
        let transfers = casc.loops[0].chunks as f64 * m.transfer_cost as f64;
        let expect = seq.total_cycles() + transfers;
        prop_assert!(
            (casc.total_cycles() - expect).abs() < 1e-6,
            "cascade {} != sequential {} + transfers {}",
            casc.total_cycles(), seq.total_cycles(), transfers
        );
        prop_assert_eq!(casc.loops[0].exec.l2_misses, seq.loops[0].exec.l2_misses);
        prop_assert_eq!(casc.loops[0].exec.l1_misses, seq.loops[0].exec.l1_misses);
    }

    /// The recorded timeline is always a valid Figure-1 schedule, and its
    /// makespan matches the reported loop cycles.
    #[test]
    fn recorded_timelines_are_valid_schedules(
        gw in gen_workload(),
        nprocs in 2usize..6,
        policy_pick in 0u8..3,
    ) {
        let policy = match policy_pick {
            0 => HelperPolicy::Prefetch,
            1 => HelperPolicy::Restructure { hoist: false },
            _ => HelperPolicy::Restructure { hoist: true },
        };
        let (w, _) = build(&gw);
        let m = machines::pentium_pro();
        let r = run_cascaded(&m, &w, &CascadeConfig {
            nprocs,
            chunk_bytes: 16 * 1024,
            policy,
            jump_out: true,
            calls: 1,
            flush_between_calls: true,
        });
        let l = &r.loops[0];
        l.timeline.validate();
        prop_assert_eq!(l.timeline.events.len() as u64, l.chunks);
        // Makespan = schedule end + final transfer.
        let expect = l.timeline.end() - l.timeline.start() + m.transfer_cost as f64;
        prop_assert!((l.cycles - expect).abs() < 1e-6,
            "loop cycles {} != timeline span {}", l.cycles, expect);
    }
}

//! A real application on the cascaded runtime: a 1-D electrostatic
//! particle-in-cell plasma simulation (cold plasma oscillation) whose
//! unparallelizable particle loops — the order-sensitive charge deposit
//! and the gather/push — run cascaded across threads, while the field
//! solve plays the role of the surrounding parallel section.
//!
//! ```sh
//! cargo run --release --example pic_demo -- [particles] [steps] [threads]
//! ```

use cascaded_execution::pic::{estimate_period, Grid, MoverMode, Particles, PicConfig, Simulation};
use cascaded_execution::rt::RtPolicy;

fn main() {
    let mut args = std::env::args().skip(1);
    let np: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 16);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(400);
    let threads: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |c| c.get().min(4)));

    let length = 2.0 * std::f64::consts::PI;
    let dt = 0.05;
    let build = |mover| {
        Simulation::new(
            Grid::new(256, length),
            Particles::plasma_oscillation(np, length, 0.02, 1.0),
            PicConfig { dt, mover },
        )
    };

    println!("1-D electrostatic PIC: {np} particles, 256 cells, {steps} steps, dt {dt}");

    // Sequential reference.
    let mut seq = build(MoverMode::Sequential);
    let t0 = std::time::Instant::now();
    let diags = seq.run(steps);
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let energy: Vec<f64> = diags.iter().map(|d| d.field).collect();
    let period = estimate_period(&energy, dt);
    println!("\nsequential mover: {seq_ms:.1} ms");
    if let Some(p) = period {
        println!(
            "field-energy period {p:.3} (theory pi = {:.3}; energy oscillates at 2*omega_p)",
            std::f64::consts::PI
        );
    }
    let e0 = diags[0].total();
    let e1 = diags[steps - 1].total();
    println!(
        "total energy {e0:.4e} -> {e1:.4e} ({:+.2}%)",
        100.0 * (e1 - e0) / e0
    );

    // Cascaded mover.
    let mut casc = build(MoverMode::Cascaded {
        threads,
        chunk: (np as u64 / 16).max(1024),
        policy: RtPolicy::Prefetch,
    });
    let t0 = std::time::Instant::now();
    casc.run(steps);
    let casc_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("\ncascaded mover ({threads} threads): {casc_ms:.1} ms");
    assert_eq!(
        casc.particle_bits(),
        seq.particle_bits(),
        "cascaded trajectories must be bitwise sequential"
    );
    println!("particle trajectories: bitwise identical to the sequential run");
}

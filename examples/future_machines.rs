//! The paper's §3.4 projection, extended: how does the benefit of
//! cascaded execution grow as processors continue to outpace memory?
//!
//! The paper freezes the processor and varies the *loop* (dense vs sparse)
//! to change the memory-to-compute ratio. Here we also vary the *machine*:
//! `machines::future(&base, k)` scales main-memory latency by `k`,
//! modelling k-times-worse relative memory. Both the paper's synthetic
//! loop and a wave5-like gather loop are projected.
//!
//! ```sh
//! cargo run --release --example future_machines
//! ```

use cascaded_execution::synth::{Synth, Variant};
use cascaded_execution::wave5::{Parmvr, ParmvrParams};
use cascaded_execution::{machines, run_sequential, run_unbounded, HelperPolicy, UnboundedConfig};

fn main() {
    let scales = [1.0, 2.0, 4.0, 8.0, 16.0];
    let cfg = UnboundedConfig {
        chunk_bytes: 32 * 1024,
        policy: HelperPolicy::Restructure { hoist: true },
        calls: 1,
        flush_between_calls: true,
    };

    println!("Unbounded-processor restructured speedup vs memory-latency scaling");
    println!("(base machine: Pentium Pro; paper §3.4 expects the benefit to grow)\n");
    println!(
        "{:<28} {}",
        "workload",
        scales
            .iter()
            .map(|s| format!("{:>7}", format!("x{s}")))
            .collect::<String>()
    );

    // The paper's synthetic loop, dense and sparse.
    for variant in [Variant::Dense, Variant::Sparse] {
        let synth = Synth::build(1 << 20, variant, 11);
        let mut cells = String::new();
        for &ms in &scales {
            let m = machines::future(&machines::pentium_pro(), ms);
            let base = run_sequential(&m, &synth.workload, 1, true);
            let r = run_unbounded(&m, &synth.workload, &cfg);
            cells.push_str(&format!("{:>7.1}", r.overall_speedup_vs(&base)));
        }
        println!("{:<28} {}", format!("synthetic {}", variant.label()), cells);
    }

    // The full PARMVR at reduced scale.
    let parmvr = Parmvr::build(ParmvrParams {
        scale: 0.1,
        seed: 11,
    });
    let mut cells = String::new();
    for &ms in &scales {
        let m = machines::future(&machines::pentium_pro(), ms);
        let base = run_sequential(&m, &parmvr.workload, 1, true);
        let r = run_unbounded(&m, &parmvr.workload, &cfg);
        cells.push_str(&format!("{:>7.1}", r.overall_speedup_vs(&base)));
    }
    println!("{:<28} {}", "wave5 PARMVR (15 loops)", cells);

    println!("\nReading: columns are main-memory latency scaled 1x..16x; every row should");
    println!("increase to the right — the slower memory gets, the more cascading helps.");
}

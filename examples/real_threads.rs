//! Implementing [`RealKernel`] by hand: cascade your own loop on real
//! threads.
//!
//! The other examples drive the generic `SpecProgram` interpreter; this
//! one shows the pattern for production use — a concrete kernel type with
//! its state behind `UnsafeCell`, mutation confined to `execute` (whose
//! exclusivity the runner's token protocol guarantees), and a prefetch
//! helper using the x86-64 intrinsics.
//!
//! The loop is a recurrence the compiler must keep sequential:
//!
//! ```text
//! smooth[i] = 0.25*smooth[i-1] + 0.5*raw[i] + 0.25*raw[i+1]
//! ```
//!
//! ```sh
//! cargo run --release --example real_threads -- [threads] [iters_per_chunk]
//! ```

use std::cell::UnsafeCell;
use std::ops::Range;

use cascaded_execution::rt::{
    prefetch_range, run_cascaded, run_sequential, RealKernel, RtPolicy, RunnerConfig,
};

struct SmoothKernel {
    raw: Vec<f64>,
    smooth: UnsafeCell<Vec<f64>>,
}

// SAFETY: `smooth` is only mutated inside `execute`, which the cascade
// runner serializes via the token protocol (Release/Acquire edges between
// consecutive chunks).
unsafe impl Sync for SmoothKernel {}

impl SmoothKernel {
    fn new(n: usize) -> Self {
        SmoothKernel {
            raw: (0..n).map(|i| ((i * 37) % 1009) as f64 * 1e-3).collect(),
            smooth: UnsafeCell::new(vec![0.0; n]),
        }
    }

    fn result(self) -> Vec<f64> {
        self.smooth.into_inner()
    }
}

impl RealKernel for SmoothKernel {
    fn iters(&self) -> u64 {
        (self.raw.len() - 1) as u64
    }

    unsafe fn execute(&self, range: Range<u64>) {
        // SAFETY: the trait contract gives us exclusive access and
        // visibility of all previous chunks' writes.
        let smooth = unsafe { &mut *self.smooth.get() };
        for i in range {
            let i = i as usize;
            let prev = if i == 0 { 0.0 } else { smooth[i - 1] }; // loop-carried
            smooth[i] = 0.25 * prev + 0.5 * self.raw[i] + 0.25 * self.raw[i + 1];
        }
    }

    fn prefetch_iter(&self, i: u64) {
        let i = i as usize;
        // Warm the read operands of this iteration; the write target is
        // hinted too (write-allocate would otherwise miss).
        prefetch_range(self.raw[i..].as_ptr() as *const u8, 16);
        // SAFETY of the pointer math: in-bounds offset; prefetch performs
        // no language-level access.
        let smooth_base = self.smooth.get() as *const u8;
        prefetch_range(smooth_base.wrapping_add(i * 8), 8);
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |c| c.get().min(4)));
    let chunk: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8192);
    let n = 1 << 21;

    // Sequential reference.
    let reference = {
        let k = SmoothKernel::new(n);
        let dt = run_sequential(&k);
        println!("sequential:          {:>8.2} ms", dt.as_secs_f64() * 1e3);
        k.result()
    };

    // Cascaded with prefetch helpers.
    let k = SmoothKernel::new(n);
    let stats = run_cascaded(
        &k,
        &RunnerConfig {
            nthreads: threads,
            iters_per_chunk: chunk,
            policy: RtPolicy::Prefetch,
            poll_batch: 256,
        },
    );
    println!(
        "cascaded ({} thr):    {:>8.2} ms   {} chunks, helper coverage {:.0}%",
        threads,
        stats.elapsed.as_secs_f64() * 1e3,
        stats.chunks,
        stats.helper_coverage() * 100.0,
    );
    for (t, s) in stats.threads.iter().enumerate() {
        println!(
            "  thread {t}: {:>5} chunks, exec {:>7.2} ms, helper {:>7.2} ms, spin {:>7.2} ms",
            s.chunks,
            s.exec_ns as f64 / 1e6,
            s.helper_ns as f64 / 1e6,
            s.spin_ns as f64 / 1e6,
        );
    }

    let got = k.result();
    assert_eq!(
        got, reference,
        "cascaded execution must be bitwise sequential"
    );
    println!("result: bitwise identical to sequential execution");
}

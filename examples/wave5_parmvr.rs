//! The paper's main workload end to end: the (synthetic) PARMVR
//! subroutine of wave5, cascaded on a simulated machine.
//!
//! ```sh
//! cargo run --release --example wave5_parmvr -- [scale] [machine] [procs]
//! #   scale   workload scale, default 0.25 (1.0 = the paper's enlarged problem)
//! #   machine "ppro" (default) or "r10000"
//! #   procs   processor count, default 4
//! ```

use cascaded_execution::wave5::{Parmvr, ParmvrParams};
use cascaded_execution::{machines, run_cascaded, run_sequential, CascadeConfig, HelperPolicy};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let machine = match args.next().as_deref() {
        Some("r10000") => machines::r10000(),
        _ => machines::pentium_pro(),
    };
    let nprocs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("Building PARMVR at scale {scale} ...");
    let parmvr = Parmvr::build(ParmvrParams { scale, seed: 42 });
    let w = &parmvr.workload;
    println!(
        "  15 loops, footprints {:.1}KB .. {:.1}MB, total arrays {:.1}MB\n",
        w.loops.iter().map(|l| l.footprint()).min().unwrap() as f64 / 1024.0,
        w.loops.iter().map(|l| l.footprint()).max().unwrap() as f64 / (1024.0 * 1024.0),
        w.space.extent() as f64 / (1024.0 * 1024.0),
    );

    let baseline = run_sequential(&machine, w, 2, true);
    let prefetched = run_cascaded(
        &machine,
        w,
        &CascadeConfig {
            nprocs,
            policy: HelperPolicy::Prefetch,
            ..CascadeConfig::default()
        },
    );
    let restructured = run_cascaded(
        &machine,
        w,
        &CascadeConfig {
            nprocs,
            policy: HelperPolicy::Restructure { hoist: true },
            ..CascadeConfig::default()
        },
    );

    println!(
        "{} with {} processors, 64KB chunks (speedup over 1-processor sequential):",
        machine.name, nprocs
    );
    println!(
        "{:<46} {:>9} {:>9} {:>9}",
        "loop", "orig Mcy", "pre-spd", "rst-spd"
    );
    for i in 0..w.loops.len() {
        println!(
            "{:<46} {:>9.2} {:>9.2} {:>9.2}",
            baseline.loops[i].name,
            baseline.loops[i].cycles / 1e6,
            baseline.loops[i].cycles / prefetched.loops[i].cycles,
            baseline.loops[i].cycles / restructured.loops[i].cycles,
        );
    }
    println!(
        "{:<46} {:>9.2} {:>9.2} {:>9.2}",
        "OVERALL",
        baseline.total_cycles() / 1e6,
        prefetched.overall_speedup_vs(&baseline),
        restructured.overall_speedup_vs(&baseline),
    );
    println!(
        "\nhelper coverage: prefetched {:.0}%, restructured {:.0}%",
        100.0 * prefetched.loops.iter().map(|l| l.helper_iters).sum::<u64>() as f64
            / prefetched.loops.iter().map(|l| l.iters).sum::<u64>() as f64,
        100.0
            * restructured
                .loops
                .iter()
                .map(|l| l.helper_iters)
                .sum::<u64>() as f64
            / restructured.loops.iter().map(|l| l.iters).sum::<u64>() as f64,
    );
}

//! The kernel zoo: where does cascaded execution pay?
//!
//! Runs the `cascade-kernels` suite — the canonical unparallelizable
//! loops beyond wave5's particle mover — through the simulator on both
//! machines and through the real-thread runtime, printing a one-screen
//! map of the technique's applicability. Kernels with loop-carried reads
//! run under an analyzer-derived helper horizon (see `docs/ANALYSIS.md`).
//!
//! ```sh
//! cargo run --release --example kernel_zoo -- [elements]
//! ```

use cascaded_execution::kernels::suite;
use cascaded_execution::rt::{RtPolicy, RunnerConfig, SpecProgram};
use cascaded_execution::{machines, run_cascaded, run_sequential, CascadeConfig, HelperPolicy};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 17);
    println!("kernel zoo at n = {n} elements\n");
    println!(
        "{:<18} {:>12} {:>9} {:>9} {:>9}   why it is sequential",
        "kernel", "footprint", "PPro rst", "R10k rst", "rt check"
    );
    let why = [
        "x(i) depends on earlier x entries",
        "next address is this node's data",
        "y(i) = a*y(i-1) + x(i)",
        "b recurrence fused with parallel c stream",
        "colliding FP scatter-add",
        "scatter-accumulate into y",
    ];
    assert_eq!(suite(n, 7).len(), why.len(), "one why per kernel");
    for (k, why) in suite(n, 7).into_iter().zip(why) {
        let spec = &k.workload.loops[0];
        let footprint = format!("{:.1} MB", spec.footprint() as f64 / (1024.0 * 1024.0));
        let mut speeds = Vec::new();
        for machine in [machines::pentium_pro(), machines::r10000()] {
            let base = run_sequential(&machine, &k.workload, 2, true);
            let r = run_cascaded(
                &machine,
                &k.workload,
                &CascadeConfig {
                    nprocs: 4,
                    policy: HelperPolicy::Restructure { hoist: true },
                    ..CascadeConfig::default()
                },
            );
            speeds.push(r.overall_speedup_vs(&base));
        }
        let rt_col = if k.rt_safe() {
            // Verify bitwise equivalence on real threads.
            let expected = {
                let mut prog = SpecProgram::new(k.workload.clone(), k.arena.clone()).unwrap();
                let kern = prog.kernel(0);
                // SAFETY: single-threaded baseline.
                unsafe {
                    cascaded_execution::rt::RealKernel::execute(
                        &kern,
                        0..cascaded_execution::rt::RealKernel::iters(&kern),
                    )
                };
                prog.checksum()
            };
            let mut prog = SpecProgram::new(k.workload.clone(), k.arena.clone()).unwrap();
            let kern = prog.kernel(0);
            cascaded_execution::rt::run_cascaded(
                &kern,
                &RunnerConfig {
                    nthreads: 2,
                    iters_per_chunk: 2048,
                    policy: RtPolicy::Restructure,
                    poll_batch: 64,
                },
            );
            if prog.checksum() == expected {
                "bitwise"
            } else {
                "MISMATCH"
            }
        } else {
            "sim-only"
        };
        println!(
            "{:<18} {:>12} {:>8.2}x {:>8.2}x {:>9}   {}",
            k.name, footprint, speeds[0], speeds[1], rt_col, why
        );
    }
    println!("\nEvery kernel the dependence analyzer admits runs on real threads; loops that");
    println!("read an array they also write carry a HorizonSafe(lag) verdict, and helpers");
    println!("stay within `lag` of the committed frontier (see docs/ANALYSIS.md).");
}

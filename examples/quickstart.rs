//! Quickstart: cascade one unparallelizable loop, in the simulator and on
//! real threads.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The loop is a gather-update with a loop-carried scatter dependence —
//! the kind of loop a parallelizing compiler must leave sequential:
//!
//! ```fortran
//! do i = 1, n
//!    hist(cell(i)) = hist(cell(i)) + weight(i)   ! colliding scatter-add
//! end do
//! ```

use cascaded_execution::rt::{
    run_cascaded as rt_cascaded, run_sequential as rt_sequential, RtPolicy, RunnerConfig,
    SpecProgram,
};
use cascaded_execution::{
    machines, run_cascaded, run_sequential, AddressSpace, Arena, CascadeConfig, HelperPolicy,
    IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};

fn build_workload(n: u64) -> (Workload, Arena) {
    let mut space = AddressSpace::new();
    let hist = space.alloc("hist", 8, n);
    let weight = space.alloc("weight", 8, n);
    let cell = space.alloc("cell", 4, n);

    let mut index = IndexStore::new();
    // A colliding map: the scatter-add order matters, so the loop cannot
    // be parallelized without changing its result.
    index.set(
        cell,
        (0..n).map(|i| ((i * 2_654_435_761) % n) as u32).collect(),
    );

    let spec = LoopSpec {
        name: "hist(cell(i)) += weight(i)".into(),
        iters: n,
        refs: vec![
            StreamRef {
                name: "weight(i)",
                array: weight,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: true,
            },
            StreamRef {
                name: "hist(cell(i))",
                array: hist,
                pattern: Pattern::Indirect {
                    index: cell,
                    ibase: 0,
                    istride: 1,
                },
                mode: Mode::Modify,
                bytes: 8,
                hoistable: false,
            },
        ],
        compute: 6.0,
        hoistable_compute: 2.0,
        hoist_result_bytes: 8,
    };

    let workload = Workload {
        space,
        index,
        loops: vec![spec],
    };
    let mut arena = Arena::new(&workload.space);
    for i in 0..n {
        arena.set_f64(&workload.space, weight, i, (i % 17) as f64 * 0.25 + 0.5);
    }
    arena.install_indices(&workload.space, &workload.index);
    (workload, arena)
}

fn main() {
    let n = 1u64 << 19; // 512K iterations, ~8MB of data: exceeds both L2s
    let (workload, arena) = build_workload(n);

    // ---- 1. Simulated speedup on the paper's machines --------------------
    println!("Simulated cascaded execution (4 processors, 64KB chunks):");
    for machine in [machines::pentium_pro(), machines::r10000()] {
        let baseline = run_sequential(&machine, &workload, 2, true);
        for policy in [
            HelperPolicy::Prefetch,
            HelperPolicy::Restructure { hoist: true },
        ] {
            let report = run_cascaded(
                &machine,
                &workload,
                &CascadeConfig {
                    nprocs: 4,
                    policy,
                    ..CascadeConfig::default()
                },
            );
            println!(
                "  {:11} {:18}: speedup {:.2}  (exec-phase L2 misses {} vs {})",
                machine.name,
                policy.label(),
                report.overall_speedup_vs(&baseline),
                report.loops[0].exec.l2_misses,
                baseline.loops[0].exec.l2_misses,
            );
        }
    }

    // ---- 2. The same loop on real threads --------------------------------
    println!("\nReal-thread cascaded execution on this host:");
    let expected = {
        let mut prog = SpecProgram::new(workload.clone(), arena.clone()).unwrap();
        let kernel = prog.kernel(0);
        let dt = rt_sequential(&kernel);
        println!(
            "  sequential:              {:>8.2} ms",
            dt.as_secs_f64() * 1e3
        );
        prog.checksum()
    };
    let mut prog = SpecProgram::new(workload, arena).unwrap();
    let kernel = prog.kernel(0);
    let stats = rt_cascaded(
        &kernel,
        &RunnerConfig {
            nthreads: std::thread::available_parallelism().map_or(2, |c| c.get().clamp(2, 4)),
            iters_per_chunk: 8192,
            policy: RtPolicy::Restructure,
            poll_batch: 128,
        },
    );
    println!(
        "  cascaded ({} chunks):    {:>8.2} ms, helper coverage {:.0}%",
        stats.chunks,
        stats.elapsed.as_secs_f64() * 1e3,
        stats.helper_coverage() * 100.0
    );
    assert_eq!(
        prog.checksum(),
        expected,
        "cascaded result must be bitwise sequential"
    );
    println!("  result: bitwise identical to sequential execution");
}

//! Chunk-size tuning (paper §2.2): the central trade-off of cascaded
//! execution, shown on a single loop so the mechanics are visible.
//!
//! Small chunks maximize helper coverage and cache fit but pay a control
//! transfer per chunk; large chunks amortize transfers but overflow the
//! caches and starve the helpers. This example prints the whole frontier
//! for one gather loop, including the quantities that move: transfers,
//! helper coverage, execution-phase L2 misses.
//!
//! ```sh
//! cargo run --release --example chunk_tuning -- [ppro|r10000]
//! ```

use cascaded_execution::wave5::{Parmvr, ParmvrParams};
use cascaded_execution::{machines, run_cascaded, run_sequential, CascadeConfig, HelperPolicy};

fn main() {
    let machine = match std::env::args().nth(1).as_deref() {
        Some("r10000") => machines::r10000(),
        _ => machines::pentium_pro(),
    };
    let parmvr = Parmvr::build(ParmvrParams {
        scale: 0.25,
        seed: 3,
    });
    // Isolate loop L1 (the field gather) for a clean single-loop picture.
    let mut workload = parmvr.workload.clone();
    workload.loops.truncate(1);

    let baseline = run_sequential(&machine, &workload, 2, true);
    println!(
        "{} / {} / 4 processors / restructured+hoist",
        machine.name, workload.loops[0].name
    );
    println!(
        "{:>9} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "chunk KB", "chunks", "speedup", "coverage", "exec L2", "vs orig"
    );
    let base_l2 = baseline.loops[0].exec.l2_misses;
    for kb in [2u64, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let r = run_cascaded(
            &machine,
            &workload,
            &CascadeConfig {
                nprocs: 4,
                chunk_bytes: kb * 1024,
                policy: HelperPolicy::Restructure { hoist: true },
                ..CascadeConfig::default()
            },
        );
        let l = &r.loops[0];
        println!(
            "{:>9} {:>8} {:>8.2} {:>9.0}% {:>12} {:>9.0}%",
            kb,
            l.chunks,
            r.overall_speedup_vs(&baseline),
            l.helper_coverage() * 100.0,
            l.exec.l2_misses,
            100.0 * l.exec.l2_misses as f64 / base_l2 as f64,
        );
    }
    println!(
        "\nThe optimum sits well above the L1 size ({}KB): transfers are too costly for",
        machine.l1.size / 1024
    );
    println!("tiny chunks, while huge chunks overflow the L2 and leave helpers unfinished.");
}

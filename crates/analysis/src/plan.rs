//! Whole-loop transformation legality: statement-level dependence
//! graphs, fission partitions, and DOACROSS lag schedules.
//!
//! The per-operand lattice ([`crate::Verdict`]) answers "may a *helper*
//! touch this stream ahead of the executor?". This module answers the
//! whole-loop question the next runtime layers need: "which
//! *reorderings of the loop itself* are legal?" — loop fission into
//! independently executable sub-loops, per-sub-loop DOALL parallelism,
//! and pipelined DOACROSS with a post/wait lag.
//!
//! ## Statements
//!
//! A [`cascade_trace::LoopSpec`] body (as the real-thread interpreter
//! executes it) folds **every** pure-read operand into an accumulator,
//! then stores a function of that accumulator through each write-mode
//! operand in operand order (`Modify` additionally reads its own old
//! value at the write). A *statement* is therefore one write-mode
//! operand — the anchor — together with the shared pure-read set; a
//! loop with no writes is a single pure-read statement. Fissioning the
//! loop at statement granularity re-executes the shared reads in each
//! sub-loop, so a fissioned statement computes bitwise-identical values
//! exactly when every read observes the same memory — which is what the
//! dependence edges govern.
//!
//! ## Edges
//!
//! Edges are directed `src → dst` = "`src`'s access must happen no
//! later than `dst`'s", each carrying the **minimal iteration lag** at
//! which the two statements touch a common element:
//!
//! * **flow** (write → read): statement `S` writes an element some
//!   later iteration reads. Since the shared reads feed every
//!   statement, a carried flow from `S` edges to *all* statements.
//!   Same-iteration write→read is *not* a dependence for the pure-read
//!   set (reads precede writes in the body) but *is* one (lag 0) into a
//!   later `Modify`'s own read.
//! * **anti** (read → write): a read observes an element `S` overwrites
//!   in the same (lag 0 — reads precede writes) or a later iteration.
//! * **output** (write → write): two writes touch a common element;
//!   lag-0 direction follows operand order.
//!
//! Lags come from the same machinery as [`crate::Verdict::lag`]: an
//! affine closed form where both patterns are affine, an exact
//! index-store replay otherwise, after a footprint-disjointness
//! short-circuit.
//!
//! ## Condensation and schedules
//!
//! Tarjan's SCC condensation of the statement graph yields the fission
//! partition in topological order ([`TransformPlan::partition`]): each
//! SCC is one sub-loop; singleton SCCs without carried self-dependences
//! are fully parallel (DOALL); an SCC whose minimal carried lag is
//! `L ≥ 2` admits a pipelined DOACROSS schedule in which iteration `i`
//! may start once every iteration `≤ i − L` has committed (the same
//! committed-frontier rule the helper horizon uses); `L = 1` is the
//! sequential residue. Verdicts are reported as typed diagnostics
//! (`AN009`–`AN013`), never panics, and every plan is falsifiable
//! against the dynamic replay oracle ([`crate::oracle::check_plan`]).

use std::collections::HashMap;

use cascade_trace::diag::{DiagCode, Diagnostic, Severity};
use cascade_trace::{LoopSpec, Mode, Pattern, StreamRef, Workload};

use crate::{analyze_loop, Journalability, LoopReport};

/// The kind of a statement-level dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Write-then-read: the source statement produces a value the
    /// destination statement consumes.
    Flow,
    /// Read-then-write: the destination statement overwrites an element
    /// the source statement must observe first.
    Anti,
    /// Write-then-write: both statements store to a common element; the
    /// destination's store must land last.
    Output,
}

impl DepKind {
    /// Stable lower-case name for reports (`"flow"`, `"anti"`,
    /// `"output"`).
    pub fn as_str(self) -> &'static str {
        match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        }
    }
}

/// One statement of the loop body: a write-mode anchor operand plus the
/// shared pure-read set (or the pure-read body itself).
#[derive(Debug, Clone)]
pub struct Statement {
    /// Statement id (dense, in operand order).
    pub id: usize,
    /// Index into `spec.refs` of the anchoring write-mode operand;
    /// `None` for the pure-read body of a loop with no writes.
    pub anchor: Option<usize>,
    /// The anchor operand's name (or `"<reads>"`).
    pub name: &'static str,
}

/// One edge of the statement-level dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// Source statement id (must execute no later than `dst`).
    pub src: usize,
    /// Destination statement id.
    pub dst: usize,
    /// Dependence kind.
    pub kind: DepKind,
    /// Minimal iteration lag at which the dependence is realized;
    /// `0` = loop-independent (within one iteration), `L ≥ 1` =
    /// loop-carried at distance `L`.
    pub lag: u64,
    /// Name of the source statement's participating operand.
    pub src_ref: &'static str,
    /// Name of the destination statement's participating operand.
    pub dst_ref: &'static str,
}

/// The statement-level dependence graph of one loop.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Statements, in operand order (ids are dense indices).
    pub statements: Vec<Statement>,
    /// All dependence edges, deduplicated to the minimal lag per
    /// `(src, dst, kind, carried?)`.
    pub edges: Vec<DepEdge>,
    /// `Some(name)` when an operand's access pattern cannot be resolved
    /// statically (missing or loop-written index contents) — the graph
    /// proves nothing and the planner degrades to one sequential
    /// residue.
    pub opaque: Option<&'static str>,
}

/// Resolve the element a pattern touches at iteration `i`, or `None`
/// when it cannot be resolved (missing/short index contents, negative
/// affine index) — the same cases the analyzer flags separately.
pub(crate) fn elem_at(w: &Workload, p: &Pattern, i: u64) -> Option<u64> {
    match *p {
        Pattern::Affine { base, stride } => {
            let e = base + stride * i as i64;
            (e >= 0).then_some(e as u64)
        }
        Pattern::Indirect {
            index,
            ibase,
            istride,
        } => {
            let pos = ibase + istride * i as i64;
            let len = w.index.len_of(index)? as i64;
            (pos >= 0 && pos < len).then(|| w.index.get(index, pos as u64) as u64)
        }
    }
}

/// Minimal carried gap `min(i − j) ≥ 1` over pairs where `src` touches
/// an element at iteration `j` and `dst` touches the same element at
/// iteration `i > j`; `None` when no such pair exists. Affine closed
/// form when both patterns are affine, exact replay otherwise, after a
/// footprint-disjointness short-circuit.
fn carried_gap(w: &Workload, src: &StreamRef, dst: &StreamRef, n: u64) -> Option<u64> {
    if src.array != dst.array {
        return None;
    }
    if let (Some(sf), Some(df)) = (
        crate::ref_footprint(w, src, 0..n),
        crate::ref_footprint(w, dst, 0..n),
    ) {
        if !sf.overlaps(&df) {
            return None;
        }
    }
    if let (
        Pattern::Affine {
            base: sb,
            stride: ss,
        },
        Pattern::Affine {
            base: db,
            stride: ds,
        },
    ) = (src.pattern, dst.pattern)
    {
        // `dst` plays the "read" role of the closed form (later
        // iteration), `src` the "write" role.
        return crate::affine_flow_lag(db, ds, sb, ss, n);
    }
    let mut last: HashMap<u64, u64> = HashMap::new();
    let mut best: Option<u64> = None;
    for i in 0..n {
        if let Some(e) = elem_at(w, &dst.pattern, i) {
            if let Some(&j) = last.get(&e) {
                let gap = i - j;
                if best.is_none_or(|b| gap < b) {
                    best = Some(gap);
                }
                if best == Some(1) {
                    return best;
                }
            }
        }
        if let Some(e) = elem_at(w, &src.pattern, i) {
            last.insert(e, i);
        }
    }
    best
}

/// Do the two patterns touch a common element in the *same* iteration
/// somewhere in `0..n`? (Feeds the lag-0, loop-independent edges.)
fn same_iter_alias(w: &Workload, a: &StreamRef, b: &StreamRef, n: u64) -> bool {
    if a.array != b.array {
        return false;
    }
    if let (
        Pattern::Affine {
            base: ab,
            stride: asx,
        },
        Pattern::Affine {
            base: bb,
            stride: bs,
        },
    ) = (a.pattern, b.pattern)
    {
        if asx == bs {
            return ab == bb && n > 0;
        }
        let diff = bb - ab;
        let denom = asx - bs;
        if diff % denom != 0 {
            return false;
        }
        let i = diff / denom;
        return i >= 0 && (i as u64) < n && ab + asx * i >= 0;
    }
    (0..n).any(|i| {
        matches!(
            (elem_at(w, &a.pattern, i), elem_at(w, &b.pattern, i)),
            (Some(x), Some(y)) if x == y
        )
    })
}

impl DepGraph {
    /// Build the statement-level dependence graph of `spec`.
    pub fn build(w: &Workload, spec: &LoopSpec) -> DepGraph {
        let n = spec.iters;
        let written: Vec<_> = spec
            .refs
            .iter()
            .filter(|r| r.mode.writes())
            .map(|r| r.array)
            .collect();
        let opaque = spec
            .refs
            .iter()
            .find(|r| match r.pattern {
                Pattern::Affine { .. } => false,
                Pattern::Indirect { index, .. } => {
                    written.contains(&index) || !w.index.contains(index)
                }
            })
            .map(|r| r.name);

        let anchors: Vec<usize> = (0..spec.refs.len())
            .filter(|&k| spec.refs[k].mode.writes())
            .collect();
        let reads: Vec<usize> = (0..spec.refs.len())
            .filter(|&k| spec.refs[k].mode.is_read_only())
            .collect();
        let statements: Vec<Statement> = if anchors.is_empty() {
            vec![Statement {
                id: 0,
                anchor: None,
                name: "<reads>",
            }]
        } else {
            anchors
                .iter()
                .enumerate()
                .map(|(id, &a)| Statement {
                    id,
                    anchor: Some(a),
                    name: spec.refs[a].name,
                })
                .collect()
        };

        let mut g = DepGraph {
            statements,
            edges: Vec::new(),
            opaque,
        };
        if g.opaque.is_some() || anchors.is_empty() || n == 0 {
            return g;
        }

        let nstmt = anchors.len();
        for (s, &a) in anchors.iter().enumerate() {
            let wa = &spec.refs[a];

            // Carried flow from `wa` into the shared read set: the value
            // feeds the accumulator of *every* statement.
            let feed = reads
                .iter()
                .filter_map(|&r| carried_gap(w, wa, &spec.refs[r], n).map(|g| (g, r)))
                .min();
            if let Some((lag, r)) = feed {
                for t in 0..nstmt {
                    g.push(DepEdge {
                        src: s,
                        dst: t,
                        kind: DepKind::Flow,
                        lag,
                        src_ref: wa.name,
                        dst_ref: spec.refs[r].name,
                    });
                }
            }

            // Anti from the shared read set into `wa`: every statement
            // must observe the element before `wa` overwrites it. Reads
            // precede writes within an iteration, so a same-iteration
            // alias is a lag-0 edge.
            let carried_anti = reads
                .iter()
                .filter_map(|&r| carried_gap(w, &spec.refs[r], wa, n).map(|g| (g, r)))
                .min();
            let zero_anti = reads
                .iter()
                .find(|&&r| same_iter_alias(w, &spec.refs[r], wa, n))
                .copied();
            for (lag, r) in zero_anti.map(|r| (0, r)).into_iter().chain(carried_anti) {
                for t in 0..nstmt {
                    if lag == 0 && t == s {
                        continue; // a statement's own body is atomic
                    }
                    g.push(DepEdge {
                        src: t,
                        dst: s,
                        kind: DepKind::Anti,
                        lag,
                        src_ref: spec.refs[r].name,
                        dst_ref: wa.name,
                    });
                }
            }

            for (t, &b) in anchors.iter().enumerate() {
                let wb = &spec.refs[b];

                // Output: `wa`'s store must land before `wb`'s.
                if let Some(lag) = carried_gap(w, wa, wb, n) {
                    g.push(DepEdge {
                        src: s,
                        dst: t,
                        kind: DepKind::Output,
                        lag,
                        src_ref: wa.name,
                        dst_ref: wb.name,
                    });
                }
                if a < b && same_iter_alias(w, wa, wb, n) {
                    g.push(DepEdge {
                        src: s,
                        dst: t,
                        kind: DepKind::Output,
                        lag: 0,
                        src_ref: wa.name,
                        dst_ref: wb.name,
                    });
                }

                // `Modify` anchors read their own element at the write
                // phase: `wa`'s store feeds `wb`'s modify-read (flow),
                // and `wb`'s modify-read must precede `wa`'s store
                // (anti). Lag-0 direction follows operand order.
                if wb.mode == Mode::Modify {
                    if let Some(lag) = carried_gap(w, wa, wb, n) {
                        g.push(DepEdge {
                            src: s,
                            dst: t,
                            kind: DepKind::Flow,
                            lag,
                            src_ref: wa.name,
                            dst_ref: wb.name,
                        });
                    }
                    if a != b && same_iter_alias(w, wa, wb, n) {
                        let (src, dst, kind) = if a < b {
                            (s, t, DepKind::Flow)
                        } else {
                            (t, s, DepKind::Anti)
                        };
                        g.push(DepEdge {
                            src,
                            dst,
                            kind,
                            lag: 0,
                            src_ref: spec.refs[anchors[src]].name,
                            dst_ref: spec.refs[anchors[dst]].name,
                        });
                    }
                    if a != b {
                        if let Some(lag) = carried_gap(w, wb, wa, n) {
                            g.push(DepEdge {
                                src: t,
                                dst: s,
                                kind: DepKind::Anti,
                                lag,
                                src_ref: wb.name,
                                dst_ref: wa.name,
                            });
                        }
                    }
                }
            }
        }
        g
    }

    /// Insert an edge, keeping only the minimal lag per
    /// `(src, dst, kind, carried?)`.
    fn push(&mut self, e: DepEdge) {
        if let Some(old) = self.edges.iter_mut().find(|o| {
            o.src == e.src && o.dst == e.dst && o.kind == e.kind && (o.lag == 0) == (e.lag == 0)
        }) {
            if e.lag < old.lag {
                *old = e;
            }
            return;
        }
        self.edges.push(e);
    }

    /// Strongly connected components of the statement graph (Tarjan),
    /// in a canonical topological order of the condensation: among
    /// schedulable SCCs, the one containing the smallest statement id
    /// goes first (deterministic Kahn).
    pub fn condense(&self) -> Vec<Vec<usize>> {
        let n = self.statements.len();
        let mut succ = vec![Vec::new(); n];
        for e in &self.edges {
            if e.src != e.dst {
                succ[e.src].push(e.dst);
            }
        }
        struct Tarjan<'a> {
            succ: &'a [Vec<usize>],
            index: Vec<Option<usize>>,
            low: Vec<usize>,
            on_stack: Vec<bool>,
            stack: Vec<usize>,
            next: usize,
            out: Vec<Vec<usize>>,
        }
        impl Tarjan<'_> {
            fn visit(&mut self, v: usize) {
                self.index[v] = Some(self.next);
                self.low[v] = self.next;
                self.next += 1;
                self.stack.push(v);
                self.on_stack[v] = true;
                for &u in &self.succ[v] {
                    match self.index[u] {
                        None => {
                            self.visit(u);
                            self.low[v] = self.low[v].min(self.low[u]);
                        }
                        Some(i) if self.on_stack[u] => {
                            self.low[v] = self.low[v].min(i);
                        }
                        Some(_) => {}
                    }
                }
                if self.low[v] == self.index[v].unwrap() {
                    let mut scc = Vec::new();
                    loop {
                        let u = self.stack.pop().unwrap();
                        self.on_stack[u] = false;
                        scc.push(u);
                        if u == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    self.out.push(scc);
                }
            }
        }
        let mut t = Tarjan {
            succ: &succ,
            index: vec![None; n],
            low: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next: 0,
            out: Vec::new(),
        };
        for v in 0..n {
            if t.index[v].is_none() {
                t.visit(v);
            }
        }
        let sccs = t.out;

        // Kahn over the condensation, always picking the ready SCC with
        // the smallest leading statement id (each SCC is sorted, and the
        // Tarjan output order is traversal-dependent — this makes the
        // partition canonical).
        let mut scc_of = vec![0usize; n];
        for (k, scc) in sccs.iter().enumerate() {
            for &v in scc {
                scc_of[v] = k;
            }
        }
        let mut indeg = vec![0usize; sccs.len()];
        let mut csucc = vec![Vec::new(); sccs.len()];
        for e in &self.edges {
            let (a, b) = (scc_of[e.src], scc_of[e.dst]);
            if a != b && !csucc[a].contains(&b) {
                csucc[a].push(b);
                indeg[b] += 1;
            }
        }
        let mut order = Vec::with_capacity(sccs.len());
        let mut ready: Vec<usize> = (0..sccs.len()).filter(|&k| indeg[k] == 0).collect();
        while !ready.is_empty() {
            let pick = ready.iter().copied().min_by_key(|&k| sccs[k][0]).unwrap();
            ready.retain(|&k| k != pick);
            order.push(pick);
            for &b in &csucc[pick] {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    ready.push(b);
                }
            }
        }
        order.into_iter().map(|k| sccs[k].clone()).collect()
    }
}

/// How one fissioned sub-loop may be scheduled across iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// No loop-carried dependence: iterations may run in any order
    /// (DOALL).
    Parallel,
    /// Pipelined post/wait at the minimal carried lag `L ≥ 2`:
    /// iteration `i` may start once every iteration `≤ i − L` has
    /// committed (the committed-frontier rule).
    DoAcross {
        /// The minimal carried dependence distance.
        lag: u64,
    },
    /// Minimal carried lag 1: iterations are totally ordered.
    Sequential,
}

impl Schedule {
    /// Stable lower-case name for reports (`"parallel"`, `"doacross"`,
    /// `"sequential"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Schedule::Parallel => "parallel",
            Schedule::DoAcross { .. } => "doacross",
            Schedule::Sequential => "sequential",
        }
    }

    fn from_lag(lag: Option<u64>) -> Schedule {
        match lag {
            None => Schedule::Parallel,
            Some(1) => Schedule::Sequential,
            Some(l) => Schedule::DoAcross { lag: l },
        }
    }
}

/// One fissioned sub-loop: an SCC of the dependence graph.
#[derive(Debug, Clone)]
pub struct SubLoop {
    /// Member statement ids, in operand order.
    pub statements: Vec<usize>,
    /// The sub-loop's cross-iteration schedule.
    pub schedule: Schedule,
    /// Minimal carried lag among the sub-loop's internal edges
    /// (`None` = no carried dependence).
    pub carried_lag: Option<u64>,
}

/// Which execution modes the analysis statically proves sound for one
/// loop — the per-kernel mode matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeMatrix {
    /// The real-thread cascade interpreter accepts the loop
    /// ([`LoopReport::rt_ok`]).
    pub cascade: bool,
    /// Helper horizon lag ([`LoopReport::helper_lag`]): helpers stay
    /// behind `committed + lag`; `None` = unrestricted.
    pub helper_lag: Option<u64>,
    /// Chunk write-sets are boundable, so undo journaling and bitwise
    /// rollback work ([`LoopReport::journalability`]).
    pub journalable: bool,
    /// The plan splits the loop into ≥ 2 sub-loops.
    pub fissionable: bool,
    /// Number of sub-loops in the fission partition.
    pub sub_loops: usize,
    /// Minimal carried dependence lag of the whole loop; `None` when no
    /// dependence is carried at all (or the loop is opaque).
    pub doacross_lag: Option<u64>,
    /// The whole loop carries no cross-iteration dependence: DOALL.
    pub parallel: bool,
    /// Sound to run speculatively: the loop is journalable (misspeculation
    /// can be rolled back bitwise) and the interpreter accepts it.
    pub speculation_ready: bool,
}

/// A typed, machine-checkable transformation plan for one loop.
#[derive(Debug, Clone)]
pub struct TransformPlan {
    /// Loop name.
    pub loop_name: String,
    /// Iteration count.
    pub iters: u64,
    /// The statements of the loop body.
    pub statements: Vec<Statement>,
    /// The dependence edges between them.
    pub edges: Vec<DepEdge>,
    /// The fission partition, in the (topological) order the sub-loops
    /// must execute. A single entry means fission buys nothing: the
    /// loop *is* its own residue.
    pub partition: Vec<SubLoop>,
    /// True when some access pattern was statically unresolvable and
    /// the plan conservatively degraded to one sequential residue.
    pub opaque: bool,
    /// The execution-mode matrix for this loop.
    pub modes: ModeMatrix,
    /// Plan findings (`AN009`–`AN012`), loop-level.
    pub diagnostics: Vec<Diagnostic>,
}

impl TransformPlan {
    /// The distinct plan diagnostic codes, in first-seen order.
    pub fn codes(&self) -> Vec<DiagCode> {
        let mut out = Vec::new();
        for d in &self.diagnostics {
            if !out.contains(&d.code) {
                out.push(d.code);
            }
        }
        out
    }

    /// Check a *proposed* fission partition (groups of statement ids in
    /// execution order) against the dependence graph. Legal iff every
    /// statement appears exactly once and no edge points from a later
    /// group to an earlier one. Violations come back as `AN013`
    /// diagnostics, never panics.
    pub fn check_partition(&self, groups: &[Vec<usize>]) -> Result<(), Vec<Diagnostic>> {
        let mut errs = Vec::new();
        let mut group_of = vec![None; self.statements.len()];
        for (gi, g) in groups.iter().enumerate() {
            for &s in g {
                match group_of.get(s).copied() {
                    Some(None) => group_of[s] = Some(gi),
                    Some(Some(_)) => errs.push(
                        self.illegal(format!("statement {s} appears in more than one group")),
                    ),
                    None => {
                        errs.push(self.illegal(format!("group {gi} names unknown statement {s}")))
                    }
                }
            }
        }
        if let Some(s) = group_of.iter().position(|g| g.is_none()) {
            errs.push(self.illegal(format!("statement {s} missing from the partition")));
        }
        if errs.is_empty() && self.opaque && groups.len() > 1 {
            errs.push(self.illegal(
                "loop has unresolvable access patterns; no fission is provable".to_string(),
            ));
        }
        if errs.is_empty() {
            for e in &self.edges {
                let (Some(gs), Some(gd)) = (group_of[e.src], group_of[e.dst]) else {
                    continue;
                };
                if gs > gd {
                    errs.push(self.illegal(format!(
                        "{} edge {} -> {} (lag {}) runs backwards: group {gs} \
                         is scheduled after group {gd}",
                        e.kind.as_str(),
                        e.src_ref,
                        e.dst_ref,
                        e.lag
                    )));
                }
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    fn illegal(&self, message: String) -> Diagnostic {
        Diagnostic::loop_level(
            DiagCode::IllegalPartition,
            Severity::Error,
            &self.loop_name,
            message,
        )
    }
}

/// Plan one loop, reusing an existing [`LoopReport`] for the mode
/// matrix (avoids re-running the per-operand analysis).
pub fn plan_loop_with_report(w: &Workload, spec: &LoopSpec, report: &LoopReport) -> TransformPlan {
    let graph = DepGraph::build(w, spec);
    let mut diags = Vec::new();
    let all_ids: Vec<usize> = (0..graph.statements.len()).collect();

    let (partition, opaque) = if let Some(name) = graph.opaque {
        diags.push(Diagnostic::loop_level(
            DiagCode::PlanOpaque,
            Severity::Warning,
            &spec.name,
            format!(
                "{name} has a statically unresolvable access pattern; \
                 the plan degrades to a single sequential residue"
            ),
        ));
        (
            vec![SubLoop {
                statements: all_ids,
                schedule: Schedule::Sequential,
                carried_lag: None,
            }],
            true,
        )
    } else {
        let partition: Vec<SubLoop> = graph
            .condense()
            .into_iter()
            .map(|members| {
                let lag = graph
                    .edges
                    .iter()
                    .filter(|e| e.lag >= 1 && members.contains(&e.src) && members.contains(&e.dst))
                    .map(|e| e.lag)
                    .min();
                SubLoop {
                    statements: members,
                    schedule: Schedule::from_lag(lag),
                    carried_lag: lag,
                }
            })
            .collect();
        (partition, false)
    };

    if !opaque && partition.len() >= 2 {
        diags.push(Diagnostic::loop_level(
            DiagCode::FissionLegal,
            Severity::Info,
            &spec.name,
            format!(
                "fission into {} sub-loops is legal in the listed order",
                partition.len()
            ),
        ));
    }
    if !opaque {
        for (k, sub) in partition.iter().enumerate() {
            let anchors = || {
                sub.statements
                    .iter()
                    .map(|&s| graph.statements[s].name)
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            match sub.schedule {
                Schedule::DoAcross { lag } => diags.push(Diagnostic::loop_level(
                    DiagCode::DoacrossLag,
                    Severity::Info,
                    &spec.name,
                    format!(
                        "sub-loop {k} ({}) admits a DOACROSS post/wait schedule \
                         with min lag {lag}",
                        anchors()
                    ),
                )),
                Schedule::Parallel => diags.push(Diagnostic::loop_level(
                    DiagCode::PlanParallel,
                    Severity::Info,
                    &spec.name,
                    format!(
                        "sub-loop {k} ({}) carries no dependence; iterations \
                         may run in any order",
                        anchors()
                    ),
                )),
                Schedule::Sequential => {}
            }
        }
    }

    let carried = graph.edges.iter().filter(|e| e.lag >= 1).map(|e| e.lag);
    let doacross_lag = if opaque { None } else { carried.min() };
    let journalable = matches!(report.journalability(), Journalability::Journalable);
    let cascade = report.rt_ok();
    let modes = ModeMatrix {
        cascade,
        helper_lag: report.helper_lag(),
        journalable,
        fissionable: partition.len() >= 2,
        sub_loops: partition.len(),
        doacross_lag,
        parallel: !opaque && doacross_lag.is_none() && !graph.statements.is_empty(),
        speculation_ready: journalable && cascade,
    };

    TransformPlan {
        loop_name: spec.name.clone(),
        iters: spec.iters,
        statements: graph.statements,
        edges: graph.edges,
        partition,
        opaque,
        modes,
        diagnostics: diags,
    }
}

/// Analyze and plan one loop.
pub fn plan_loop(w: &Workload, spec: &LoopSpec) -> TransformPlan {
    plan_loop_with_report(w, spec, &analyze_loop(w, spec))
}

/// Plan every loop of a workload, in workload order.
pub fn plan_workload(w: &Workload) -> Vec<TransformPlan> {
    let report = crate::analyze_workload(w);
    w.loops
        .iter()
        .zip(&report.loops)
        .map(|(spec, rep)| plan_loop_with_report(w, spec, rep))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_trace::{AddressSpace, ArrayId, IndexStore};

    fn sref(name: &'static str, array: ArrayId, pattern: Pattern, mode: Mode) -> StreamRef {
        StreamRef {
            name,
            array,
            pattern,
            mode,
            bytes: 8,
            hoistable: false,
        }
    }

    fn workload(
        iters: u64,
        refs: Vec<StreamRef>,
        space: AddressSpace,
        index: IndexStore,
    ) -> Workload {
        Workload {
            space,
            index,
            loops: vec![LoopSpec {
                name: "t".into(),
                iters,
                refs,
                compute: 1.0,
                hoistable_compute: 0.0,
                hoist_result_bytes: 0,
            }],
        }
    }

    fn aff(base: i64, stride: i64) -> Pattern {
        Pattern::Affine { base, stride }
    }

    /// Recurrence fused with an independent store: `b(i+1) = f(a(i), b(i))`
    /// and `c(i) = g(a(i), b(i))`.
    fn fused() -> Workload {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 64);
        let b = s.alloc("b", 8, 65);
        let c = s.alloc("c", 8, 64);
        workload(
            64,
            vec![
                sref("a(i)", a, aff(0, 1), Mode::Read),
                sref("b(i)", b, aff(0, 1), Mode::Read),
                sref("b(i+1)", b, aff(1, 1), Mode::Write),
                sref("c(i)", c, aff(0, 1), Mode::Write),
            ],
            s,
            IndexStore::new(),
        )
    }

    #[test]
    fn fused_recurrence_fissions_into_residue_plus_doall() {
        let w = fused();
        let p = plan_loop(&w, &w.loops[0]);
        assert!(!p.opaque);
        assert_eq!(p.statements.len(), 2);
        assert_eq!(p.partition.len(), 2, "{:?}", p.partition);
        // The recurrence statement must come first.
        assert_eq!(p.partition[0].statements, vec![0]);
        assert_eq!(p.partition[0].schedule, Schedule::Sequential);
        assert_eq!(p.partition[1].statements, vec![1]);
        assert_eq!(p.partition[1].schedule, Schedule::Parallel);
        assert!(p.modes.fissionable);
        assert_eq!(p.modes.doacross_lag, Some(1));
        assert!(!p.modes.parallel);
        assert!(p.codes().contains(&DiagCode::FissionLegal));
        assert!(p.codes().contains(&DiagCode::PlanParallel));
        // The flow edge from the b-write reaches *both* statements.
        assert!(p
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Flow && e.src == 0 && e.dst == 1 && e.lag == 1));
        assert!(p
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Flow && e.src == 0 && e.dst == 0 && e.lag == 1));
    }

    #[test]
    fn illegal_partition_is_rejected_with_an013() {
        let w = fused();
        let p = plan_loop(&w, &w.loops[0]);
        // Swapping the two sub-loops runs the recurrence after its consumer.
        let err = p
            .check_partition(&[vec![1], vec![0]])
            .expect_err("backwards partition must be rejected");
        assert!(err.iter().all(|d| d.code == DiagCode::IllegalPartition));
        assert!(err.iter().any(|d| d.message.contains("runs backwards")));
        // The plan's own partition is legal.
        let groups: Vec<Vec<usize>> = p.partition.iter().map(|s| s.statements.clone()).collect();
        p.check_partition(&groups).expect("own partition is legal");
        // Incomplete and duplicated partitions are rejected too.
        assert!(p.check_partition(&[vec![0]]).is_err());
        assert!(p.check_partition(&[vec![0, 1], vec![1]]).is_err());
    }

    #[test]
    fn carried_anti_dependence_serializes_a_sub_loop() {
        // `x(i) = f(y(i+1))` with `y(i) = g(...)`: the y-read looks one
        // ahead of the y-write, an anti dependence at distance 1.
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 64);
        let y = s.alloc("y", 8, 65);
        let w = workload(
            64,
            vec![
                sref("y(i+1)", y, aff(1, 1), Mode::Read),
                sref("x(i)", x, aff(0, 1), Mode::Write),
                sref("y(i)", y, aff(0, 1), Mode::Write),
            ],
            s,
            IndexStore::new(),
        );
        let p = plan_loop(&w, &w.loops[0]);
        // Both statements consume y(i+1), so the y-writer has an incoming
        // anti edge from every statement, fusing the two into one SCC? No:
        // anti edges point *into* the y-writer (statement 1), so statement
        // 0 can still be peeled off ahead of it.
        assert!(p
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Anti && e.src == 1 && e.dst == 1 && e.lag == 1));
        let yw = p
            .partition
            .iter()
            .find(|s| s.statements.contains(&1))
            .unwrap();
        assert_eq!(yw.schedule, Schedule::Sequential, "{:?}", p.edges);
    }

    #[test]
    fn wide_lag_yields_doacross_schedule() {
        // y(i+8) = f(y(i)): carried flow at distance 8.
        let mut s = AddressSpace::new();
        let y = s.alloc("y", 8, 72);
        let w = workload(
            64,
            vec![
                sref("y(i)", y, aff(0, 1), Mode::Read),
                sref("y(i+8)", y, aff(8, 1), Mode::Write),
            ],
            s,
            IndexStore::new(),
        );
        let p = plan_loop(&w, &w.loops[0]);
        assert_eq!(p.partition.len(), 1);
        assert_eq!(p.partition[0].schedule, Schedule::DoAcross { lag: 8 });
        assert_eq!(p.modes.doacross_lag, Some(8));
        assert!(p.codes().contains(&DiagCode::DoacrossLag));
    }

    #[test]
    fn scatter_modify_collisions_come_from_the_replay_scan() {
        // hist(key(i)) += ... with a key stream whose nearest repeat is 3
        // iterations apart.
        let mut s = AddressSpace::new();
        let h = s.alloc("hist", 8, 8);
        let key = s.alloc("key", 4, 16);
        let mut index = IndexStore::new();
        index.set(key, vec![0, 1, 2, 0, 1, 2, 7, 6, 5, 7, 6, 5, 3, 4, 3, 4]);
        let w = workload(
            16,
            vec![sref(
                "hist(key(i))",
                h,
                Pattern::Indirect {
                    index: key,
                    ibase: 0,
                    istride: 1,
                },
                Mode::Modify,
            )],
            s,
            index,
        );
        let p = plan_loop(&w, &w.loops[0]);
        assert_eq!(p.partition.len(), 1);
        // Nearest collision: key[12]=3, key[14]=3 → lag 2.
        assert_eq!(p.partition[0].carried_lag, Some(2));
        assert_eq!(p.partition[0].schedule, Schedule::DoAcross { lag: 2 });
    }

    #[test]
    fn unresolvable_index_degrades_to_opaque_residue() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 64);
        let idx = s.alloc("idx", 4, 64);
        // No contents installed for idx.
        let w = workload(
            64,
            vec![
                sref(
                    "a(idx(i))",
                    a,
                    Pattern::Indirect {
                        index: idx,
                        ibase: 0,
                        istride: 1,
                    },
                    Mode::Write,
                ),
                sref("a(i)", a, aff(0, 1), Mode::Read),
            ],
            s,
            IndexStore::new(),
        );
        let p = plan_loop(&w, &w.loops[0]);
        assert!(p.opaque);
        assert_eq!(p.partition.len(), 1);
        assert_eq!(p.partition[0].schedule, Schedule::Sequential);
        assert!(p.codes().contains(&DiagCode::PlanOpaque));
        assert!(!p.modes.fissionable);
        assert!(!p.modes.parallel);
        // Opaque loops admit no multi-group partition.
        assert!(p.check_partition(&[vec![0]]).is_ok());
        assert!(p.check_partition(&[vec![0], vec![]]).is_err());
    }

    #[test]
    fn pure_read_loop_is_one_parallel_statement() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 64);
        let w = workload(
            64,
            vec![sref("a(i)", a, aff(0, 1), Mode::Read)],
            s,
            IndexStore::new(),
        );
        let p = plan_loop(&w, &w.loops[0]);
        assert_eq!(p.statements.len(), 1);
        assert_eq!(p.statements[0].anchor, None);
        assert_eq!(p.partition[0].schedule, Schedule::Parallel);
        assert!(p.modes.parallel);
        assert_eq!(p.modes.doacross_lag, None);
    }

    #[test]
    fn disjoint_writes_fission_into_parallel_sub_loops() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 64);
        let x = s.alloc("x", 8, 64);
        let y = s.alloc("y", 8, 64);
        let w = workload(
            64,
            vec![
                sref("a(i)", a, aff(0, 1), Mode::Read),
                sref("x(i)", x, aff(0, 1), Mode::Write),
                sref("y(i)", y, aff(0, 1), Mode::Write),
            ],
            s,
            IndexStore::new(),
        );
        let p = plan_loop(&w, &w.loops[0]);
        assert_eq!(p.partition.len(), 2);
        assert!(p.partition.iter().all(|s| s.schedule == Schedule::Parallel));
        assert!(p.modes.parallel);
        assert!(p.modes.fissionable);
    }

    #[test]
    fn same_iteration_output_alias_orders_by_operand_position() {
        // Two writes to the same stream element every iteration: operand
        // order is the only legal order, as a lag-0 output edge.
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 64);
        let w = workload(
            64,
            vec![
                sref("a(i) first", a, aff(0, 1), Mode::Write),
                sref("a(i) second", a, aff(0, 1), Mode::Write),
            ],
            s,
            IndexStore::new(),
        );
        let p = plan_loop(&w, &w.loops[0]);
        assert!(p
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Output && e.src == 0 && e.dst == 1 && e.lag == 0));
        assert!(p.check_partition(&[vec![1], vec![0]]).is_err());
        assert!(p.check_partition(&[vec![0], vec![1]]).is_ok());
        assert!(p.check_partition(&[vec![0, 1]]).is_ok());
    }
}

//! # cascade-analyze — helper-safety dependence/effect analysis
//!
//! The cascaded-execution helper phases (paper §2.1) are only sound for
//! operands the concurrent execution phase cannot be writing: the
//! restructuring helper *reads values* into a sequential buffer, and a
//! value packed while the executor is still producing it would silently
//! diverge from the sequential run. This crate replaces the runtime's
//! former ad-hoc `assert!` judgments with a real static analysis over
//! [`LoopSpec`] / [`Workload`]:
//!
//! * a per-[`StreamRef`] byte-interval **footprint** as a function of the
//!   iteration range — exact for [`Pattern::Affine`], bounded by the
//!   installed index contents for [`Pattern::Indirect`];
//! * **loop-carried read/write overlap** detection, with the minimum flow
//!   (write-then-read) iteration gap — the *lag*;
//! * a per-operand **helper-safety lattice** verdict ([`Verdict`]):
//!   `Packable` ⊐ `Prefetchable` ⊐ `HorizonSafe { lag }` ⊐ `Unsafe`;
//! * lint-style [`Diagnostic`]s (stable codes, documented in
//!   `docs/ANALYSIS.md`) instead of panics.
//!
//! ## The horizon rule
//!
//! For a carried read with lag `L` (every aliasing write at iteration `j`
//! precedes the read at `i` by `i − j ≥ L`), a helper may touch iteration
//! `i` iff `i < committed + L`, where `committed` is the first iteration
//! of the lowest chunk the token has not yet granted past. Every aliasing
//! write for such an `i` lies at `j ≤ i − L < committed`, is therefore
//! already executed, and is visible through the token's Release/Acquire
//! pair — so the packed value is bitwise the value the sequential run
//! would read. Writes at `j ≥ i` can never race the helper either: they
//! belong to chunks at or above the one the helper itself is waiting for.
//! The runtime enforces the rule through
//! `cascade_rt::RealKernel::helper_horizon`.
//!
//! ## Static + dynamic synergy
//!
//! Verdicts are falsifiable: [`oracle`] replays the exact reference
//! stream (through [`cascade_trace::Resolver`] semantics — reads before
//! writes within an iteration) and reports any observation contradicting
//! a `Packable`/`HorizonSafe` claim or escaping a reported footprint.
//! A proptest over randomized specs keeps the two in agreement.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

use cascade_trace::diag::{DiagCode, Diagnostic, Severity};
use cascade_trace::{ArrayId, LoopSpec, Mode, Pattern, StreamRef, Workload};

pub mod oracle;
pub mod plan;

/// Why an operand is unsafe for any helper participation (and usually for
/// real-thread cascading of the whole loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeReason {
    /// The ref gathers/scatters through an index array that the same loop
    /// writes: helpers (and the analysis itself) cannot trust the index
    /// contents.
    WrittenIndexArray,
    /// The ref is indirect but its index array has no installed contents.
    MissingIndexContents,
    /// The operand aliases a write stream whose addresses the analysis
    /// cannot resolve (the write itself is unsafe), so no lag bound
    /// exists.
    OpaqueWrite,
}

impl fmt::Display for UnsafeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnsafeReason::WrittenIndexArray => "index array written by the same loop",
            UnsafeReason::MissingIndexContents => "index array has no installed contents",
            UnsafeReason::OpaqueWrite => "aliases an unresolvable write stream",
        })
    }
}

/// The helper-safety lattice: what a waiting thread may do with an
/// operand while another thread executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Read-only and never written by the loop: helpers may read the
    /// value at any iteration (restructure it into the sequential
    /// buffer), arbitrarily far ahead.
    Packable,
    /// Address-predictable but value-carrying (a write or scatter
    /// target): helpers may compute the address — prefetch the line, pack
    /// the scatter index — but never the value.
    Prefetchable,
    /// A carried read whose aliasing writes all precede it by at least
    /// `lag` iterations: helpers may pack/prefetch iteration `i` only
    /// while `i < committed + lag` (the horizon rule), and the loop is
    /// still safe to *execute* cascaded.
    HorizonSafe {
        /// Minimum write→read iteration gap over all aliasing pairs.
        lag: u64,
    },
    /// No helper may touch the operand; the loop cannot run under the
    /// real-thread interpreter.
    Unsafe {
        /// Why the operand is disqualified.
        reason: UnsafeReason,
    },
}

impl Verdict {
    /// Stable lower-case class name for reports and golden tests.
    pub fn class(&self) -> &'static str {
        match self {
            Verdict::Packable => "packable",
            Verdict::Prefetchable => "prefetchable",
            Verdict::HorizonSafe { .. } => "horizon_safe",
            Verdict::Unsafe { .. } => "unsafe",
        }
    }

    /// The lag when horizon-safe, else `None`.
    pub fn lag(&self) -> Option<u64> {
        match self {
            Verdict::HorizonSafe { lag } => Some(*lag),
            _ => None,
        }
    }

    /// Is this the bottom of the lattice?
    pub fn is_unsafe(&self) -> bool {
        matches!(self, Verdict::Unsafe { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::HorizonSafe { lag } => write!(f, "horizon_safe(lag={lag})"),
            Verdict::Unsafe { reason } => write!(f, "unsafe({reason})"),
            other => f.write_str(other.class()),
        }
    }
}

/// A byte/element interval touched by one stream over an iteration range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// First byte touched (inclusive).
    pub lo: u64,
    /// One past the last byte touched (exclusive).
    pub hi: u64,
    /// First element index touched (inclusive).
    pub elem_lo: u64,
    /// One past the last element index touched (exclusive).
    pub elem_hi: u64,
    /// `true` when the interval hull is derived in closed form from an
    /// affine pattern; `false` when it is bounded by scanning the
    /// installed index contents.
    pub exact: bool,
}

impl Footprint {
    /// Does the byte interval `[addr, addr + bytes)` fall inside this
    /// footprint?
    pub fn contains(&self, addr: u64, bytes: u32) -> bool {
        addr >= self.lo && addr + bytes as u64 <= self.hi
    }

    /// Do two footprints overlap as byte intervals?
    pub fn overlaps(&self, other: &Footprint) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }
}

/// The footprint of stream `r` over the iteration range, as a function of
/// that range: exact interval hull for affine patterns, index-bounded
/// hull for indirect ones. Returns `None` when the range is empty, an
/// element index resolves negative, or the index contents needed to bound
/// an indirect stream are missing/too short (those cases carry their own
/// error diagnostics).
pub fn ref_footprint(w: &Workload, r: &StreamRef, range: Range<u64>) -> Option<Footprint> {
    let (elem_lo, elem_hi_incl) = elem_hull(w, &r.pattern, range)?;
    let def = w.space.array(r.array);
    Some(Footprint {
        lo: def.base + elem_lo * def.elem as u64,
        hi: def.base + elem_hi_incl * def.elem as u64 + r.bytes as u64,
        elem_lo,
        elem_hi: elem_hi_incl + 1,
        exact: r.pattern.is_affine(),
    })
}

/// Whether a chunk transaction (undo journal + bitwise rollback) can be
/// materialized for a loop: every write-mode stream's footprint over an
/// arbitrary chunk range must be resolvable — in affine closed form, or
/// bounded by installed index contents. The runtime uses this to decide
/// whether a faulted chunk can be rolled back and re-executed, or must
/// keep the conservative fail-stop gate (see `docs/ROBUSTNESS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Journalability {
    /// Every write stream's footprint is resolvable: [`write_set`]
    /// bounds the undo journal of any non-empty in-bounds chunk range.
    Journalable,
    /// Some write stream's footprint cannot be bounded; the chunk's
    /// write-set is unknowable and rollback is impossible.
    Unjournalable {
        /// The first offending write stream.
        ref_name: &'static str,
        /// Why its footprint cannot be bounded.
        reason: UnsafeReason,
    },
}

impl fmt::Display for Journalability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Journalability::Journalable => f.write_str("journalable"),
            Journalability::Unjournalable { ref_name, reason } => {
                write!(f, "unjournalable({ref_name}: {reason})")
            }
        }
    }
}

/// The undo-journal bound of one chunk: the footprint of every
/// write-mode stream of `spec` over `range`, in spec order. This is the
/// exact set of byte intervals `execute(range)` may mutate — affine
/// closed form where available, index-store-bounded for indirect
/// writes — so snapshotting these intervals before the chunk body and
/// restoring them after a fault yields bitwise-identical array state.
///
/// Returns `None` when the range is empty or any write footprint is
/// unresolvable (the loop is [`Journalability::Unjournalable`]); a loop
/// with no writes journals as `Some(vec![])` (an empty journal).
pub fn write_set(w: &Workload, spec: &LoopSpec, range: Range<u64>) -> Option<Vec<Footprint>> {
    if range.is_empty() {
        return None;
    }
    spec.refs
        .iter()
        .filter(|r| r.mode.writes())
        .map(|r| ref_footprint(w, r, range.clone()))
        .collect()
}

/// The footprint of the *index-array* reads of an indirect stream over
/// the iteration range (`None` for affine streams or empty ranges).
pub fn index_footprint(w: &Workload, r: &StreamRef, range: Range<u64>) -> Option<Footprint> {
    let Pattern::Indirect {
        index,
        ibase,
        istride,
    } = r.pattern
    else {
        return None;
    };
    if range.is_empty() {
        return None;
    }
    let first = ibase + istride * range.start as i64;
    let last = ibase + istride * (range.end - 1) as i64;
    let (lo, hi) = (first.min(last), first.max(last));
    if lo < 0 {
        return None;
    }
    let def = w.space.array(index);
    Some(Footprint {
        lo: def.base + lo as u64 * def.elem as u64,
        hi: def.base + hi as u64 * def.elem as u64 + cascade_trace::INDEX_BYTES as u64,
        elem_lo: lo as u64,
        elem_hi: hi as u64 + 1,
        exact: true,
    })
}

/// Inclusive element-index hull `(min, max)` of `pattern` over `range`.
fn elem_hull(w: &Workload, pattern: &Pattern, range: Range<u64>) -> Option<(u64, u64)> {
    if range.is_empty() {
        return None;
    }
    match *pattern {
        Pattern::Affine { base, stride } => {
            let first = base + stride * range.start as i64;
            let last = base + stride * (range.end - 1) as i64;
            let (lo, hi) = (first.min(last), first.max(last));
            (lo >= 0).then_some((lo as u64, hi as u64))
        }
        Pattern::Indirect {
            index,
            ibase,
            istride,
        } => {
            let len = w.index.len_of(index)? as i64;
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for i in range {
                let p = ibase + istride * i as i64;
                if p < 0 || p >= len {
                    return None;
                }
                let e = w.index.get(index, p as u64) as u64;
                lo = lo.min(e);
                hi = hi.max(e);
            }
            Some((lo, hi))
        }
    }
}

/// The analysis result for one operand.
#[derive(Debug, Clone)]
pub struct RefReport {
    /// Operand name (from [`StreamRef::name`]).
    pub name: &'static str,
    /// The referenced array.
    pub array: ArrayId,
    /// Read/write mode.
    pub mode: Mode,
    /// Lattice verdict.
    pub verdict: Verdict,
    /// Data footprint over the full iteration range, when computable.
    pub footprint: Option<Footprint>,
    /// Index-array footprint for indirect streams, when computable.
    pub index_footprint: Option<Footprint>,
}

/// The analysis result for one loop.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Loop name.
    pub loop_name: String,
    /// Iteration count.
    pub iters: u64,
    /// Per-operand reports, in spec order.
    pub refs: Vec<RefReport>,
    /// All findings about this loop (validation + analysis).
    pub diagnostics: Vec<Diagnostic>,
}

impl LoopReport {
    /// Can the real-thread interpreter run this loop? True when no
    /// operand is `Unsafe` and no error-severity diagnostic fired.
    pub fn rt_ok(&self) -> bool {
        self.refs.iter().all(|r| !r.verdict.is_unsafe())
            && !self.diagnostics.iter().any(|d| d.is_error())
    }

    /// The helper horizon of the loop: the minimum lag over all
    /// `HorizonSafe` operands, or `None` when helpers are unrestricted.
    pub fn helper_lag(&self) -> Option<u64> {
        self.refs.iter().filter_map(|r| r.verdict.lag()).min()
    }

    /// The report for operand `name`, if present.
    pub fn find_ref(&self, name: &str) -> Option<&RefReport> {
        self.refs.iter().find(|r| r.name == name)
    }

    /// Can a chunk of this loop be journaled and rolled back? The undo
    /// journal is bounded by [`write_set`]: it exists exactly when every
    /// write-mode operand's footprint is resolvable, i.e. no write
    /// operand bottomed out at [`Verdict::Unsafe`]. Loops the
    /// real-thread interpreter accepts ([`LoopReport::rt_ok`]) are
    /// always journalable; the distinction matters for hand-written
    /// kernels and for reporting.
    pub fn journalability(&self) -> Journalability {
        for r in self.refs.iter().filter(|r| r.mode.writes()) {
            if let Verdict::Unsafe { reason } = r.verdict {
                return Journalability::Unjournalable {
                    ref_name: r.name,
                    reason,
                };
            }
        }
        Journalability::Journalable
    }

    /// The distinct diagnostic codes that fired, in first-seen order.
    pub fn codes(&self) -> Vec<DiagCode> {
        let mut out = Vec::new();
        for d in &self.diagnostics {
            if !out.contains(&d.code) {
                out.push(d.code);
            }
        }
        out
    }
}

/// The analysis result for a whole workload.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Per-loop reports, in workload order.
    pub loops: Vec<LoopReport>,
    /// Workload-level findings (e.g. an empty loop list).
    pub diagnostics: Vec<Diagnostic>,
}

impl WorkloadReport {
    /// Can the real-thread interpreter run every loop?
    pub fn rt_ok(&self) -> bool {
        !self.diagnostics.iter().any(|d| d.is_error()) && self.loops.iter().all(|l| l.rt_ok())
    }

    /// Every error-severity finding, workload-level first.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .chain(self.loops.iter().flat_map(|l| l.diagnostics.iter()))
            .filter(|d| d.is_error())
            .collect()
    }

    /// Turn the report into a hard error when anything disqualifies the
    /// workload from real-thread execution.
    pub fn require_rt(self) -> Result<WorkloadReport, AnalysisError> {
        if self.rt_ok() {
            Ok(self)
        } else {
            let diagnostics = self.errors().into_iter().cloned().collect();
            Err(AnalysisError { diagnostics })
        }
    }
}

/// The typed rejection carried by `SpecProgram::new` and friends: every
/// error-severity diagnostic the analyzer produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisError {
    /// The disqualifying findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisError {
    /// Build from an explicit diagnostic list (used by consumers that add
    /// their own findings, e.g. the arena-size check).
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        AnalysisError { diagnostics }
    }

    /// Do any of the findings carry the given code?
    pub fn has_code(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "helper-safety analysis rejected the workload ({} finding{}):",
            self.diagnostics.len(),
            if self.diagnostics.len() == 1 { "" } else { "s" }
        )?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalysisError {}

/// Analyze one loop of a workload. Never panics: every finding — from
/// malformed specs to helper races — lands in the report's diagnostics.
pub fn analyze_loop(w: &Workload, spec: &LoopSpec) -> LoopReport {
    let mut diags = spec.try_validate();
    check_widths(spec, &mut diags);

    // Which arrays does this loop write (as data)?
    let written: Vec<ArrayId> = spec
        .refs
        .iter()
        .filter(|r| r.mode.writes())
        .map(|r| r.array)
        .collect();
    let writes_array = |id: ArrayId| written.contains(&id);

    // An indirect stream is resolvable when its index array has installed
    // contents, covers every position the loop reads, and is not written
    // by the loop itself.
    let index_status = |r: &StreamRef| -> Result<(), UnsafeReason> {
        let Pattern::Indirect { index, .. } = r.pattern else {
            return Ok(());
        };
        if writes_array(index) {
            return Err(UnsafeReason::WrittenIndexArray);
        }
        if !w.index.contains(index) {
            return Err(UnsafeReason::MissingIndexContents);
        }
        Ok(())
    };

    let mut refs = Vec::with_capacity(spec.refs.len());
    for r in &spec.refs {
        let footprint = ref_footprint(w, r, 0..spec.iters);
        let index_fp = index_footprint(w, r, 0..spec.iters);
        let verdict = classify(w, spec, r, &index_status, &mut diags);
        if footprint.is_none() && !unresolved_index(&verdict) {
            diags.push(Diagnostic::ref_level(
                DiagCode::OutOfBounds,
                Severity::Error,
                &spec.name,
                r.name,
                format!(
                    "{}: {} resolves outside its array over 0..{}",
                    spec.name, r.name, spec.iters
                ),
            ));
        }
        if let Some(fp) = &footprint {
            check_footprint_bounds(w, spec, r, r.array, fp, &mut diags);
        }
        if let (Some(ifp), Pattern::Indirect { index, .. }) = (&index_fp, r.pattern) {
            check_footprint_bounds(w, spec, r, index, ifp, &mut diags);
        }
        refs.push(RefReport {
            name: r.name,
            array: r.array,
            mode: r.mode,
            verdict,
            footprint,
            index_footprint: index_fp,
        });
    }

    LoopReport {
        loop_name: spec.name.clone(),
        iters: spec.iters,
        refs,
        diagnostics: diags,
    }
}

/// Analyze every loop of a workload. Never panics.
pub fn analyze_workload(w: &Workload) -> WorkloadReport {
    let mut diagnostics = Vec::new();
    if w.loops.is_empty() {
        diagnostics.push(Diagnostic::loop_level(
            DiagCode::NoLoops,
            Severity::Error,
            "",
            "workload has no loops",
        ));
    }
    WorkloadReport {
        loops: w.loops.iter().map(|l| analyze_loop(w, l)).collect(),
        diagnostics,
    }
}

/// The overflow direction of the out-of-bounds check: a computed
/// footprint is valid interval arithmetic, but the stream must also stay
/// inside the array it names — past-the-end accesses would read or write
/// neighboring arrays (silently invalidating per-array verdicts) or run
/// off the arena entirely, and `AddressSpace::addr` only debug-asserts
/// bounds. Negative / unresolvable indices surface as a `None` footprint
/// and are diagnosed separately.
fn check_footprint_bounds(
    w: &Workload,
    spec: &LoopSpec,
    r: &StreamRef,
    array: ArrayId,
    fp: &Footprint,
    diags: &mut Vec<Diagnostic>,
) {
    let def = w.space.array(array);
    let end = def.base + def.len * def.elem as u64;
    if fp.elem_hi > def.len || fp.hi > end {
        diags.push(Diagnostic::ref_level(
            DiagCode::OutOfBounds,
            Severity::Error,
            &spec.name,
            r.name,
            format!(
                "{}: {} runs past the end of {}: touches element {} / byte offset {} \
                 of a {}-element array ({} bytes)",
                spec.name,
                r.name,
                def.name,
                fp.elem_hi - 1,
                fp.hi - def.base,
                def.len,
                end - def.base,
            ),
        ));
    }
}

/// An unresolvable indirect stream already carries an `Unsafe`
/// diagnostic; don't pile an out-of-bounds error on top.
fn unresolved_index(v: &Verdict) -> bool {
    matches!(
        v,
        Verdict::Unsafe {
            reason: UnsafeReason::MissingIndexContents | UnsafeReason::WrittenIndexArray
        }
    )
}

/// The real-thread interpreter moves 4- or 8-byte elements and requires
/// one uniform width per loop; violations are error diagnostics (they do
/// not affect the dependence verdicts).
fn check_widths(spec: &LoopSpec, diags: &mut Vec<Diagnostic>) {
    let mut first: Option<u32> = None;
    for r in &spec.refs {
        if r.bytes != 4 && r.bytes != 8 {
            diags.push(Diagnostic::ref_level(
                DiagCode::UnsupportedWidth,
                Severity::Error,
                &spec.name,
                r.name,
                format!(
                    "{}: {} is {} bytes wide; the interpreter supports 4- or 8-byte operands",
                    spec.name, r.name, r.bytes
                ),
            ));
            continue;
        }
        match first {
            None => first = Some(r.bytes),
            Some(wd) if wd != r.bytes => {
                diags.push(Diagnostic::ref_level(
                    DiagCode::MixedWidth,
                    Severity::Error,
                    &spec.name,
                    r.name,
                    format!(
                        "{}: interpreter requires uniform operand width ({} vs {} bytes)",
                        spec.name, wd, r.bytes
                    ),
                ));
            }
            Some(_) => {}
        }
    }
}

/// Classify one operand into the lattice, appending its diagnostics.
fn classify(
    w: &Workload,
    spec: &LoopSpec,
    r: &StreamRef,
    index_status: &dyn Fn(&StreamRef) -> Result<(), UnsafeReason>,
    diags: &mut Vec<Diagnostic>,
) -> Verdict {
    if let Err(reason) = index_status(r) {
        let code = match reason {
            UnsafeReason::WrittenIndexArray => DiagCode::WrittenIndexArray,
            _ => DiagCode::MissingIndexContents,
        };
        diags.push(Diagnostic::ref_level(
            code,
            Severity::Error,
            &spec.name,
            r.name,
            format!("{}: {}: {}", spec.name, r.name, reason),
        ));
        return Verdict::Unsafe { reason };
    }

    if r.mode.writes() {
        // Value production stays in the execution phase; helpers may only
        // compute the address (prefetch / pack the scatter index).
        return Verdict::Prefetchable;
    }

    // A pure read. Safe at any distance unless the loop also writes the
    // array with a flow (write-then-read) dependence.
    let writers: Vec<&StreamRef> = spec
        .refs
        .iter()
        .filter(|o| o.mode.writes() && o.array == r.array)
        .collect();
    if writers.is_empty() {
        return Verdict::Packable;
    }
    if writers.iter().any(|o| index_status(o).is_err()) {
        let reason = UnsafeReason::OpaqueWrite;
        diags.push(Diagnostic::ref_level(
            DiagCode::CarriedRead,
            Severity::Error,
            &spec.name,
            r.name,
            format!("{}: {}: {}", spec.name, r.name, reason),
        ));
        return Verdict::Unsafe { reason };
    }

    match min_flow_lag(w, spec, r, &writers) {
        Some(lag) => {
            diags.push(Diagnostic::ref_level(
                DiagCode::CarriedRead,
                Severity::Info,
                &spec.name,
                r.name,
                format!(
                    "{}: {} reads elements the loop wrote {lag}+ iterations earlier; \
                     helpers must stay behind committed+{lag}",
                    spec.name, r.name
                ),
            ));
            Verdict::HorizonSafe { lag }
        }
        None => {
            diags.push(Diagnostic::ref_level(
                DiagCode::BenignOverlap,
                Severity::Info,
                &spec.name,
                r.name,
                format!(
                    "{}: {} shares an array with a write stream but carries no \
                     flow dependence (disjoint or anti-only); packable",
                    spec.name, r.name
                ),
            ));
            Verdict::Packable
        }
    }
}

/// Minimum flow lag `min(i - j)` over all pairs where write iteration `j`
/// and read iteration `i > j` touch the same element; `None` when no such
/// pair exists. Writers whose full-range footprint never meets the
/// read's are disjoint at every distance and are dropped before any
/// per-iteration reasoning; the survivors go through a closed form for
/// all-affine pairs and an exact forward replay (index-store-bounded)
/// otherwise.
fn min_flow_lag(
    w: &Workload,
    spec: &LoopSpec,
    read: &StreamRef,
    writers: &[&StreamRef],
) -> Option<u64> {
    let n = spec.iters;
    let read_fp = ref_footprint(w, read, 0..n);
    let writers: Vec<&StreamRef> = writers
        .iter()
        .copied()
        .filter(|o| match (&read_fp, ref_footprint(w, o, 0..n)) {
            (Some(rf), Some(of)) => rf.overlaps(&of),
            // An unresolvable hull proves nothing — keep the writer.
            _ => true,
        })
        .collect();
    if writers.is_empty() {
        return None;
    }
    if read.pattern.is_affine() && writers.iter().all(|o| o.pattern.is_affine()) {
        let Pattern::Affine {
            base: rb,
            stride: rs,
        } = read.pattern
        else {
            unreachable!()
        };
        return writers
            .iter()
            .filter_map(|o| {
                let Pattern::Affine {
                    base: wb,
                    stride: ws,
                } = o.pattern
                else {
                    unreachable!()
                };
                affine_flow_lag(rb, rs, wb, ws, n)
            })
            .min();
    }
    scan_flow_lag(w, read, &writers, n)
}

/// Closed-form (or single-scan) minimum flow lag between an affine read
/// `rb + rs·i` and an affine write `wb + ws·j` over `0 ≤ j < i < n`.
/// (Also the carried-gap core of the [`plan`] dependence edges, with
/// the roles src=write, dst=read.)
pub(crate) fn affine_flow_lag(rb: i64, rs: i64, wb: i64, ws: i64, n: u64) -> Option<u64> {
    if n < 2 {
        return None;
    }
    if rs == ws {
        if rs == 0 {
            return (rb == wb).then_some(1);
        }
        // rb + rs·i = wb + rs·j  ⇔  rs·(i − j) = wb − rb.
        let diff = wb - rb;
        if diff % rs != 0 {
            return None;
        }
        let d = diff / rs;
        return (d >= 1 && (d as u64) < n).then_some(d as u64);
    }
    // Unequal strides: scan write iterations and solve for the read.
    let mut best: Option<u64> = None;
    for j in 0..n {
        let target = wb + ws * j as i64 - rb; // rs·i must equal this
        let i = if rs == 0 {
            // The read always touches rb; every i > j aliases.
            (target == 0).then_some(j + 1)
        } else if target % rs == 0 && target / rs >= 0 {
            Some((target / rs) as u64)
        } else {
            None
        };
        if let Some(i) = i {
            if i > j && i < n {
                let lag = i - j;
                if best.is_none_or(|b| lag < b) {
                    best = Some(lag);
                }
                if best == Some(1) {
                    break;
                }
            }
        }
    }
    best
}

/// Exact forward replay: walk iterations in order, record writes after
/// the reads of the same iteration (the interpreter's read-before-write
/// body order), and report the minimum observed write→read gap.
fn scan_flow_lag(w: &Workload, read: &StreamRef, writers: &[&StreamRef], n: u64) -> Option<u64> {
    let elem = |p: &Pattern, i: u64| -> Option<u64> {
        match *p {
            Pattern::Affine { base, stride } => {
                let e = base + stride * i as i64;
                (e >= 0).then_some(e as u64)
            }
            Pattern::Indirect {
                index,
                ibase,
                istride,
            } => {
                let pos = ibase + istride * i as i64;
                let len = w.index.len_of(index)? as i64;
                (pos >= 0 && pos < len).then(|| w.index.get(index, pos as u64) as u64)
            }
        }
    };
    let mut last_write: HashMap<u64, u64> = HashMap::new();
    let mut best: Option<u64> = None;
    for i in 0..n {
        if let Some(e) = elem(&read.pattern, i) {
            if let Some(&j) = last_write.get(&e) {
                let lag = i - j;
                if best.is_none_or(|b| lag < b) {
                    best = Some(lag);
                }
                if best == Some(1) {
                    return best;
                }
            }
        }
        for o in writers {
            if let Some(e) = elem(&o.pattern, i) {
                last_write.insert(e, i);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_trace::{AddressSpace, IndexStore};

    fn rd(name: &'static str, array: ArrayId, pattern: Pattern) -> StreamRef {
        StreamRef {
            name,
            array,
            pattern,
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        }
    }

    fn wr(name: &'static str, array: ArrayId, pattern: Pattern) -> StreamRef {
        StreamRef {
            name,
            array,
            pattern,
            mode: Mode::Write,
            bytes: 8,
            hoistable: false,
        }
    }

    fn workload(refs: Vec<StreamRef>, space: AddressSpace, index: IndexStore) -> Workload {
        Workload {
            space,
            index,
            loops: vec![LoopSpec {
                name: "l".into(),
                iters: 64,
                refs,
                compute: 1.0,
                hoistable_compute: 0.0,
                hoist_result_bytes: 0,
            }],
        }
    }

    #[test]
    fn pure_read_is_packable() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 64);
        let b = s.alloc("b", 8, 64);
        let w = workload(
            vec![
                rd("a(i)", a, Pattern::Affine { base: 0, stride: 1 }),
                wr("b(i)", b, Pattern::Affine { base: 0, stride: 1 }),
            ],
            s,
            IndexStore::new(),
        );
        let rep = analyze_workload(&w);
        assert!(rep.rt_ok());
        let l = &rep.loops[0];
        assert_eq!(l.find_ref("a(i)").unwrap().verdict, Verdict::Packable);
        assert_eq!(l.find_ref("b(i)").unwrap().verdict, Verdict::Prefetchable);
        assert_eq!(l.helper_lag(), None);
    }

    #[test]
    fn recurrence_read_is_horizon_safe_with_lag_one() {
        let mut s = AddressSpace::new();
        let y = s.alloc("y", 8, 65);
        let w = workload(
            vec![
                rd("y(i-1)", y, Pattern::Affine { base: 0, stride: 1 }),
                wr("y(i)", y, Pattern::Affine { base: 1, stride: 1 }),
            ],
            s,
            IndexStore::new(),
        );
        let rep = analyze_workload(&w);
        assert!(rep.rt_ok());
        let l = &rep.loops[0];
        assert_eq!(
            l.find_ref("y(i-1)").unwrap().verdict,
            Verdict::HorizonSafe { lag: 1 }
        );
        assert_eq!(l.helper_lag(), Some(1));
        assert!(l.codes().contains(&DiagCode::CarriedRead));
    }

    #[test]
    fn wider_recurrence_gets_its_exact_lag() {
        let mut s = AddressSpace::new();
        let y = s.alloc("y", 8, 80);
        let w = workload(
            vec![
                rd("y(i)", y, Pattern::Affine { base: 0, stride: 1 }),
                wr("y(i+5)", y, Pattern::Affine { base: 5, stride: 1 }),
            ],
            s,
            IndexStore::new(),
        );
        let l = &analyze_workload(&w).loops[0];
        assert_eq!(
            l.find_ref("y(i)").unwrap().verdict,
            Verdict::HorizonSafe { lag: 5 }
        );
    }

    #[test]
    fn disjoint_halves_are_benign_overlap() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 128);
        let w = workload(
            vec![
                rd("a(i)", a, Pattern::Affine { base: 0, stride: 1 }),
                wr(
                    "a(64+i)",
                    a,
                    Pattern::Affine {
                        base: 64,
                        stride: 1,
                    },
                ),
            ],
            s,
            IndexStore::new(),
        );
        let l = &analyze_workload(&w).loops[0];
        assert_eq!(l.find_ref("a(i)").unwrap().verdict, Verdict::Packable);
        assert!(l.codes().contains(&DiagCode::BenignOverlap));
        assert!(l.rt_ok());
    }

    #[test]
    fn anti_dependence_only_is_packable() {
        // Read a(i+1), write a(i): the write at j aliases the read at
        // i = j − 1 < j — anti, never flow.
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 65);
        let w = workload(
            vec![
                rd("a(i+1)", a, Pattern::Affine { base: 1, stride: 1 }),
                wr("a(i)", a, Pattern::Affine { base: 0, stride: 1 }),
            ],
            s,
            IndexStore::new(),
        );
        let l = &analyze_workload(&w).loops[0];
        assert_eq!(l.find_ref("a(i+1)").unwrap().verdict, Verdict::Packable);
    }

    #[test]
    fn write_set_bounds_affine_chunks_in_closed_form() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 64);
        let b = s.alloc("b", 8, 64);
        let w = workload(
            vec![
                rd("a(i)", a, Pattern::Affine { base: 0, stride: 1 }),
                wr("b(i)", b, Pattern::Affine { base: 0, stride: 1 }),
            ],
            s,
            IndexStore::new(),
        );
        assert_eq!(
            analyze_workload(&w).loops[0].journalability(),
            Journalability::Journalable
        );
        let set = write_set(&w, &w.loops[0], 8..16).expect("journalable chunk");
        assert_eq!(set.len(), 1, "reads contribute nothing to the journal");
        let fp = set[0];
        assert!(fp.exact, "affine writes bound in closed form");
        assert_eq!((fp.elem_lo, fp.elem_hi), (8, 16));
        assert_eq!(fp.hi - fp.lo, 8 * 8, "eight f64 elements");
        assert!(
            write_set(&w, &w.loops[0], 3..3).is_none(),
            "an empty range has no journal"
        );
    }

    #[test]
    fn indirect_write_set_is_index_store_bounded() {
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 64);
        let ij = s.alloc("ij", 4, 64);
        let contents: Vec<u32> = (0..64u32).map(|i| (i * 13) % 32).collect();
        let mut index = IndexStore::new();
        index.set(ij, contents.clone());
        let scatter = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Modify,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(vec![scatter], s, index);
        assert_eq!(
            analyze_workload(&w).loops[0].journalability(),
            Journalability::Journalable
        );
        let range = 4..9u64;
        let set = write_set(&w, &w.loops[0], range.clone()).expect("index contents installed");
        assert_eq!(set.len(), 1);
        let fp = set[0];
        assert!(!fp.exact, "indirect hulls are scanned, not closed-form");
        let touched: Vec<u64> = range.map(|i| contents[i as usize] as u64).collect();
        assert_eq!(fp.elem_lo, *touched.iter().min().unwrap());
        assert_eq!(fp.elem_hi, *touched.iter().max().unwrap() + 1);
        let base = w.space.array(x).base;
        for &e in &touched {
            assert!(
                fp.contains(base + e * 8, 8),
                "every scattered element lies inside the journal bound"
            );
        }
    }

    #[test]
    fn unresolvable_write_footprints_are_unjournalable() {
        // A scatter *write* whose index array has no installed contents:
        // the write-set is unknowable, so no undo journal can exist.
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 64);
        let ij = s.alloc("ij", 4, 64);
        let scatter = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Write,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(vec![scatter], s, IndexStore::new());
        assert_eq!(
            analyze_workload(&w).loops[0].journalability(),
            Journalability::Unjournalable {
                ref_name: "x(ij(i))",
                reason: UnsafeReason::MissingIndexContents
            }
        );
        assert!(write_set(&w, &w.loops[0], 0..8).is_none());
    }

    #[test]
    fn unsafe_reads_do_not_block_journaling() {
        // The gather reads through an index array the loop itself
        // writes — unsafe for helpers — but the only *write* is affine,
        // so the chunk write-set is still exactly bounded.
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 64);
        let ij = s.alloc("ij", 4, 64);
        let mut index = IndexStore::new();
        index.set(ij, (0..64).collect());
        let gather = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(
            vec![
                gather,
                wr("ij(i)", ij, Pattern::Affine { base: 0, stride: 1 }),
            ],
            s,
            index,
        );
        let l = &analyze_workload(&w).loops[0];
        assert!(!l.rt_ok(), "helpers must not touch this loop");
        assert_eq!(l.journalability(), Journalability::Journalable);
        assert_eq!(
            write_set(&w, &w.loops[0], 0..16).map(|s| s.len()),
            Some(1),
            "the affine index-array write is the whole journal"
        );
    }

    #[test]
    fn written_index_array_is_unsafe() {
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 64);
        let ij = s.alloc("ij", 4, 64);
        let mut index = IndexStore::new();
        index.set(ij, (0..64).collect());
        let gather = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(
            vec![
                gather,
                wr("ij(i)", ij, Pattern::Affine { base: 0, stride: 1 }),
            ],
            s,
            index,
        );
        let l = &analyze_workload(&w).loops[0];
        assert_eq!(
            l.find_ref("x(ij(i))").unwrap().verdict,
            Verdict::Unsafe {
                reason: UnsafeReason::WrittenIndexArray
            }
        );
        assert!(!l.rt_ok());
        assert!(l.codes().contains(&DiagCode::WrittenIndexArray));
    }

    #[test]
    fn missing_index_contents_are_unsafe() {
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 64);
        let ij = s.alloc("ij", 4, 64);
        let gather = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(vec![gather], s, IndexStore::new());
        let l = &analyze_workload(&w).loops[0];
        assert!(matches!(
            l.find_ref("x(ij(i))").unwrap().verdict,
            Verdict::Unsafe {
                reason: UnsafeReason::MissingIndexContents
            }
        ));
    }

    #[test]
    fn indirect_flow_lag_is_found_by_replay() {
        // Gather x(ij(i)) with ij = [0, 0, 1, ...]: iteration 1 reads
        // x(0), written at iteration 0 by x(i) → lag 1.
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 64);
        let ij = s.alloc("ij", 4, 64);
        let mut index = IndexStore::new();
        let mut vals: Vec<u32> = (0..64).collect();
        vals[1] = 0;
        index.set(ij, vals);
        let gather = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(
            vec![
                gather,
                wr("x(i)", x, Pattern::Affine { base: 0, stride: 1 }),
            ],
            s,
            index,
        );
        let l = &analyze_workload(&w).loops[0];
        assert_eq!(
            l.find_ref("x(ij(i))").unwrap().verdict,
            Verdict::HorizonSafe { lag: 1 }
        );
    }

    #[test]
    fn self_alias_same_iteration_is_not_flow() {
        // Read x(ij(i)) with identity ij while writing x(i): every alias
        // is within one iteration (read-before-write) — packable.
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 64);
        let ij = s.alloc("ij", 4, 64);
        let mut index = IndexStore::new();
        index.set(ij, (0..64).collect());
        let gather = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(
            vec![
                gather,
                wr("x(i)", x, Pattern::Affine { base: 0, stride: 1 }),
            ],
            s,
            index,
        );
        let l = &analyze_workload(&w).loops[0];
        assert_eq!(l.find_ref("x(ij(i))").unwrap().verdict, Verdict::Packable);
    }

    #[test]
    fn footprints_are_exact_for_affine() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 100);
        let base = s.array(a).base;
        let w = workload(
            vec![rd("a(i)", a, Pattern::Affine { base: 2, stride: 3 })],
            s,
            IndexStore::new(),
        );
        // iters = 64 → elements 2, 5, ..., 2 + 3·63 = 191 — out of bounds
        // for len 100, so the report flags it.
        let l = &analyze_workload(&w).loops[0];
        let fp = l.find_ref("a(i)").unwrap().footprint.unwrap();
        assert!(fp.exact);
        assert_eq!(fp.elem_lo, 2);
        assert_eq!(fp.elem_hi, 192);
        assert_eq!(fp.lo, base + 16);
        assert_eq!(fp.hi, base + 191 * 8 + 8);
        assert!(!l.rt_ok());
        assert!(l.codes().contains(&DiagCode::OutOfBounds));
        // The partial-range footprint is a function of the range.
        let fp8 = ref_footprint(&w, &w.loops[0].refs[0], 0..8).unwrap();
        assert_eq!(fp8.elem_hi, 2 + 3 * 7 + 1);
    }

    #[test]
    fn affine_overshoot_is_out_of_bounds() {
        // Exactly in-bounds passes; one element past the end is an AN008
        // error even though the footprint itself computes fine.
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 64);
        let w = workload(
            vec![rd("a(i)", a, Pattern::Affine { base: 0, stride: 1 })],
            s,
            IndexStore::new(),
        );
        let l = &analyze_workload(&w).loops[0];
        assert!(l.rt_ok(), "{:?}", l.diagnostics);

        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 63);
        let w = workload(
            vec![rd("a(i)", a, Pattern::Affine { base: 0, stride: 1 })],
            s,
            IndexStore::new(),
        );
        let l = &analyze_workload(&w).loops[0];
        assert!(!l.rt_ok());
        assert!(l.codes().contains(&DiagCode::OutOfBounds));
        // The footprint is still reported — the diagnostic carries the
        // rejection, not a poisoned report.
        assert!(l.find_ref("a(i)").unwrap().footprint.is_some());
    }

    #[test]
    fn index_values_past_array_end_are_out_of_bounds() {
        // The index contents resolve, but point one element past the end
        // of the data array: the gather's footprint overshoots → AN008.
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 64);
        let ij = s.alloc("ij", 4, 64);
        let mut index = IndexStore::new();
        let mut vals: Vec<u32> = (0..64).collect();
        vals[17] = 64; // x has elements 0..=63
        index.set(ij, vals);
        let gather = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(vec![gather], s, index);
        let l = &analyze_workload(&w).loops[0];
        assert!(!l.rt_ok());
        assert!(l.codes().contains(&DiagCode::OutOfBounds));
    }

    #[test]
    fn index_positions_past_index_array_end_are_out_of_bounds() {
        // The *index-array* reads themselves overshoot: istride walks past
        // the installed contents' backing array.
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 256);
        let ij = s.alloc("ij", 4, 32);
        let mut index = IndexStore::new();
        // Contents longer than the declared array: positions resolve, but
        // the declared ij array only owns 32 elements.
        index.set(ij, (0..64).collect());
        let gather = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(vec![gather], s, index);
        let l = &analyze_workload(&w).loops[0];
        assert!(!l.rt_ok());
        assert!(l.codes().contains(&DiagCode::OutOfBounds));
    }

    #[test]
    fn disjoint_footprints_short_circuit_indirect_lag_scan() {
        // Gather confined to the low half, write confined to the high
        // half: the hulls are disjoint, so min_flow_lag drops the writer
        // without replaying the index contents — packable, benign.
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 128);
        let ij = s.alloc("ij", 4, 64);
        let mut index = IndexStore::new();
        index.set(ij, (0..64).collect());
        let gather = StreamRef {
            name: "a(ij(i))",
            array: a,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(
            vec![
                gather,
                wr(
                    "a(64+i)",
                    a,
                    Pattern::Affine {
                        base: 64,
                        stride: 1,
                    },
                ),
            ],
            s,
            index,
        );
        let l = &analyze_workload(&w).loops[0];
        assert_eq!(l.find_ref("a(ij(i))").unwrap().verdict, Verdict::Packable);
        assert!(l.codes().contains(&DiagCode::BenignOverlap));
        assert!(l.rt_ok());
    }

    #[test]
    fn mixed_width_is_an_error_diagnostic_not_a_verdict() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 64);
        let b = s.alloc("b", 4, 64);
        let mut narrow = rd("b(i)", b, Pattern::Affine { base: 0, stride: 1 });
        narrow.bytes = 4;
        let w = workload(
            vec![
                rd("a(i)", a, Pattern::Affine { base: 0, stride: 1 }),
                narrow,
            ],
            s,
            IndexStore::new(),
        );
        let l = &analyze_workload(&w).loops[0];
        assert!(!l.rt_ok());
        assert!(l.codes().contains(&DiagCode::MixedWidth));
        // Verdicts stay dependence-based.
        assert_eq!(l.find_ref("a(i)").unwrap().verdict, Verdict::Packable);
    }

    #[test]
    fn empty_workload_reports_no_loops() {
        let rep = analyze_workload(&Workload::default());
        assert!(!rep.rt_ok());
        assert_eq!(rep.errors()[0].code, DiagCode::NoLoops);
    }

    #[test]
    fn analysis_error_display_lists_findings() {
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 64);
        let ij = s.alloc("ij", 4, 64);
        let gather = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        let w = workload(vec![gather], s, IndexStore::new());
        let err = analyze_workload(&w).require_rt().unwrap_err();
        assert!(err.has_code(DiagCode::MissingIndexContents));
        let msg = format!("{err}");
        assert!(msg.contains("AN004"), "{msg}");
    }

    #[test]
    fn affine_closed_form_matches_scan() {
        // Cross-check the closed form against the generic replay on a
        // grid of small affine pairs.
        for rb in -2..3i64 {
            for rs in -2..3i64 {
                for wb in -2..3i64 {
                    for ws in -2..3i64 {
                        let n = 12u64;
                        let closed = affine_flow_lag(rb, rs, wb, ws, n);
                        // Brute force.
                        let mut brute: Option<u64> = None;
                        for j in 0..n {
                            for i in (j + 1)..n {
                                let re = rb + rs * i as i64;
                                let we = wb + ws * j as i64;
                                if re == we && re >= 0 {
                                    let lag = i - j;
                                    if brute.is_none_or(|b| lag < b) {
                                        brute = Some(lag);
                                    }
                                }
                            }
                        }
                        // The closed form ignores the re >= 0 feasibility
                        // cut only when strides are equal; accept either
                        // equal results or a closed-form alias at a
                        // negative element (never reachable in a valid
                        // spec, which the OutOfBounds check rejects).
                        if closed != brute {
                            let any_neg = rb.min(rb + rs * (n as i64 - 1)) < 0
                                || wb.min(wb + ws * (n as i64 - 1)) < 0;
                            assert!(
                                any_neg,
                                "closed {closed:?} vs brute {brute:?} for \
                                 rb={rb} rs={rs} wb={wb} ws={ws}"
                            );
                        }
                    }
                }
            }
        }
    }
}

//! Dynamic cross-check of the static verdicts: replay the reference
//! stream and look for observations that contradict the analysis.
//!
//! The replay walks iterations in program order with the interpreter's
//! body semantics — all reads of an iteration happen before its writes —
//! and checks three claims:
//!
//! * a `Packable` read never touches an element a *previous* iteration
//!   wrote (no flow dependence at all);
//! * a `HorizonSafe { lag }` read only touches elements whose latest
//!   prior write is at least `lag` iterations old (the claimed lag is a
//!   true lower bound);
//! * every access stays inside the footprint the report claims for its
//!   stream.
//!
//! An empty violation list over randomized specs (see the proptest in
//! `tests/oracle_props.rs`) is the evidence that the static analysis is
//! sound; any violation is an analyzer bug, reported with enough detail
//! to reproduce.

use std::collections::HashMap;

use cascade_trace::{ArrayId, Pattern, Workload};

use crate::{LoopReport, Verdict};

/// One observation that contradicts the static report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The loop the observation came from.
    pub loop_name: String,
    /// The operand whose claim was contradicted.
    pub ref_name: String,
    /// Iteration at which the contradiction was observed.
    pub iter: u64,
    /// Human-readable description of the contradiction.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} · {} @ iter {}: {}",
            self.loop_name, self.ref_name, self.iter, self.detail
        )
    }
}

/// Resolve the element a pattern touches at iteration `i`, or `None`
/// when it cannot be resolved (missing/short index contents, negative
/// affine index) — exactly the cases the analyzer flags separately.
fn elem(w: &Workload, p: &Pattern, i: u64) -> Option<u64> {
    match *p {
        Pattern::Affine { base, stride } => {
            let e = base + stride * i as i64;
            (e >= 0).then_some(e as u64)
        }
        Pattern::Indirect {
            index,
            ibase,
            istride,
        } => {
            let pos = ibase + istride * i as i64;
            let len = w.index.len_of(index)? as i64;
            (pos >= 0 && pos < len).then(|| w.index.get(index, pos as u64) as u64)
        }
    }
}

/// Byte address of element `e` of `array`, without the debug bounds
/// assertion of [`cascade_trace::AddressSpace::addr`] (the oracle also
/// replays specs the analyzer flagged as out of bounds).
fn raw_addr(w: &Workload, array: ArrayId, e: u64) -> u64 {
    let def = w.space.array(array);
    def.base + e * def.elem as u64
}

/// Replay loop `idx` of the workload against its report and collect
/// every contradiction. Unresolvable accesses are skipped (they carry
/// their own `Unsafe`/`OutOfBounds` findings, which the replay cannot
/// contradict).
pub fn check_loop(w: &Workload, report: &LoopReport, idx: usize) -> Vec<Violation> {
    let spec = &w.loops[idx];
    let mut violations = Vec::new();
    // elem -> latest write iteration, per array.
    let mut last_write: HashMap<(ArrayId, u64), u64> = HashMap::new();

    for i in 0..spec.iters {
        // Reads of iteration i (before its writes).
        for (r, rep) in spec.refs.iter().zip(&report.refs) {
            if !r.mode.is_read_only() {
                continue;
            }
            let Some(e) = elem(w, &r.pattern, i) else {
                continue;
            };
            match rep.verdict {
                Verdict::Packable => {
                    if let Some(&j) = last_write.get(&(r.array, e)) {
                        violations.push(Violation {
                            loop_name: spec.name.clone(),
                            ref_name: r.name.to_string(),
                            iter: i,
                            detail: format!(
                                "claimed packable, but element {e} was written at iteration {j}"
                            ),
                        });
                    }
                }
                Verdict::HorizonSafe { lag } => {
                    if let Some(&j) = last_write.get(&(r.array, e)) {
                        if i - j < lag {
                            violations.push(Violation {
                                loop_name: spec.name.clone(),
                                ref_name: r.name.to_string(),
                                iter: i,
                                detail: format!(
                                    "claimed lag {lag}, but element {e} was written at \
                                     iteration {j} (gap {})",
                                    i - j
                                ),
                            });
                        }
                    }
                }
                Verdict::Prefetchable | Verdict::Unsafe { .. } => {}
            }
            if let Some(fp) = rep.footprint {
                let addr = raw_addr(w, r.array, e);
                if !fp.contains(addr, r.bytes) {
                    violations.push(Violation {
                        loop_name: spec.name.clone(),
                        ref_name: r.name.to_string(),
                        iter: i,
                        detail: format!(
                            "read of [{addr}, {addr}+{}) escapes the claimed footprint \
                             [{}, {})",
                            r.bytes, fp.lo, fp.hi
                        ),
                    });
                }
            }
        }
        // Writes of iteration i.
        for (r, rep) in spec.refs.iter().zip(&report.refs) {
            if !r.mode.writes() {
                continue;
            }
            let Some(e) = elem(w, &r.pattern, i) else {
                continue;
            };
            last_write.insert((r.array, e), i);
            if let Some(fp) = rep.footprint {
                let addr = raw_addr(w, r.array, e);
                if !fp.contains(addr, r.bytes) {
                    violations.push(Violation {
                        loop_name: spec.name.clone(),
                        ref_name: r.name.to_string(),
                        iter: i,
                        detail: format!(
                            "write of [{addr}, {addr}+{}) escapes the claimed footprint \
                             [{}, {})",
                            r.bytes, fp.lo, fp.hi
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Replay every loop of the workload against its report.
pub fn check_workload(w: &Workload, report: &crate::WorkloadReport) -> Vec<Violation> {
    report
        .loops
        .iter()
        .enumerate()
        .flat_map(|(i, l)| check_loop(w, l, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_workload, Footprint, RefReport};
    use cascade_trace::{AddressSpace, IndexStore, LoopSpec, Mode, StreamRef};

    fn recurrence() -> Workload {
        let mut s = AddressSpace::new();
        let y = s.alloc("y", 8, 65);
        Workload {
            space: s,
            index: IndexStore::new(),
            loops: vec![LoopSpec {
                name: "rec".into(),
                iters: 64,
                refs: vec![
                    StreamRef {
                        name: "y(i-1)",
                        array: y,
                        pattern: Pattern::Affine { base: 0, stride: 1 },
                        mode: Mode::Read,
                        bytes: 8,
                        hoistable: false,
                    },
                    StreamRef {
                        name: "y(i)",
                        array: y,
                        pattern: Pattern::Affine { base: 1, stride: 1 },
                        mode: Mode::Write,
                        bytes: 8,
                        hoistable: false,
                    },
                ],
                compute: 1.0,
                hoistable_compute: 0.0,
                hoist_result_bytes: 0,
            }],
        }
    }

    #[test]
    fn sound_report_has_no_violations() {
        let w = recurrence();
        let rep = analyze_workload(&w);
        assert!(check_workload(&w, &rep).is_empty());
    }

    #[test]
    fn inflated_lag_is_caught() {
        let w = recurrence();
        let mut rep = analyze_workload(&w);
        // Sabotage: claim lag 2 where the true lag is 1.
        rep.loops[0].refs[0].verdict = Verdict::HorizonSafe { lag: 2 };
        let v = check_workload(&w, &rep);
        assert!(!v.is_empty());
        assert!(v[0].detail.contains("claimed lag 2"), "{}", v[0]);
    }

    #[test]
    fn false_packable_is_caught() {
        let w = recurrence();
        let mut rep = analyze_workload(&w);
        rep.loops[0].refs[0].verdict = Verdict::Packable;
        let v = check_workload(&w, &rep);
        assert!(v.iter().any(|v| v.detail.contains("claimed packable")));
    }

    #[test]
    fn shrunken_footprint_is_caught() {
        let w = recurrence();
        let mut rep = analyze_workload(&w);
        let fp = rep.loops[0].refs[0].footprint.unwrap();
        rep.loops[0].refs[0] = RefReport {
            footprint: Some(Footprint {
                hi: fp.hi - 8,
                ..fp
            }),
            ..rep.loops[0].refs[0].clone()
        };
        let v = check_workload(&w, &rep);
        assert!(v.iter().any(|v| v.detail.contains("escapes")));
    }
}

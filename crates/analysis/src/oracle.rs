//! Dynamic cross-check of the static verdicts: replay the reference
//! stream and look for observations that contradict the analysis.
//!
//! The replay walks iterations in program order with the interpreter's
//! body semantics — all reads of an iteration happen before its writes —
//! and checks three claims:
//!
//! * a `Packable` read never touches an element a *previous* iteration
//!   wrote (no flow dependence at all);
//! * a `HorizonSafe { lag }` read only touches elements whose latest
//!   prior write is at least `lag` iterations old (the claimed lag is a
//!   true lower bound);
//! * every access stays inside the footprint the report claims for its
//!   stream.
//!
//! An empty violation list over randomized specs (see the proptest in
//! `tests/oracle_props.rs`) is the evidence that the static analysis is
//! sound; any violation is an analyzer bug, reported with enough detail
//! to reproduce.

use std::collections::HashMap;

use cascade_trace::{ArrayId, Pattern, Workload};

use crate::{LoopReport, Verdict};

/// One observation that contradicts the static report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The loop the observation came from.
    pub loop_name: String,
    /// The operand whose claim was contradicted.
    pub ref_name: String,
    /// Iteration at which the contradiction was observed.
    pub iter: u64,
    /// Human-readable description of the contradiction.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} · {} @ iter {}: {}",
            self.loop_name, self.ref_name, self.iter, self.detail
        )
    }
}

/// Resolve the element a pattern touches at iteration `i`, or `None`
/// when it cannot be resolved (missing/short index contents, negative
/// affine index) — exactly the cases the analyzer flags separately.
fn elem(w: &Workload, p: &Pattern, i: u64) -> Option<u64> {
    crate::plan::elem_at(w, p, i)
}

/// Byte address of element `e` of `array`, without the debug bounds
/// assertion of [`cascade_trace::AddressSpace::addr`] (the oracle also
/// replays specs the analyzer flagged as out of bounds).
fn raw_addr(w: &Workload, array: ArrayId, e: u64) -> u64 {
    let def = w.space.array(array);
    def.base + e * def.elem as u64
}

/// Replay loop `idx` of the workload against its report and collect
/// every contradiction. Unresolvable accesses are skipped (they carry
/// their own `Unsafe`/`OutOfBounds` findings, which the replay cannot
/// contradict).
pub fn check_loop(w: &Workload, report: &LoopReport, idx: usize) -> Vec<Violation> {
    let spec = &w.loops[idx];
    let mut violations = Vec::new();
    // elem -> latest write iteration, per array.
    let mut last_write: HashMap<(ArrayId, u64), u64> = HashMap::new();

    for i in 0..spec.iters {
        // Reads of iteration i (before its writes).
        for (r, rep) in spec.refs.iter().zip(&report.refs) {
            if !r.mode.is_read_only() {
                continue;
            }
            let Some(e) = elem(w, &r.pattern, i) else {
                continue;
            };
            match rep.verdict {
                Verdict::Packable => {
                    if let Some(&j) = last_write.get(&(r.array, e)) {
                        violations.push(Violation {
                            loop_name: spec.name.clone(),
                            ref_name: r.name.to_string(),
                            iter: i,
                            detail: format!(
                                "claimed packable, but element {e} was written at iteration {j}"
                            ),
                        });
                    }
                }
                Verdict::HorizonSafe { lag } => {
                    if let Some(&j) = last_write.get(&(r.array, e)) {
                        if i - j < lag {
                            violations.push(Violation {
                                loop_name: spec.name.clone(),
                                ref_name: r.name.to_string(),
                                iter: i,
                                detail: format!(
                                    "claimed lag {lag}, but element {e} was written at \
                                     iteration {j} (gap {})",
                                    i - j
                                ),
                            });
                        }
                    }
                }
                Verdict::Prefetchable | Verdict::Unsafe { .. } => {}
            }
            if let Some(fp) = rep.footprint {
                let addr = raw_addr(w, r.array, e);
                if !fp.contains(addr, r.bytes) {
                    violations.push(Violation {
                        loop_name: spec.name.clone(),
                        ref_name: r.name.to_string(),
                        iter: i,
                        detail: format!(
                            "read of [{addr}, {addr}+{}) escapes the claimed footprint \
                             [{}, {})",
                            r.bytes, fp.lo, fp.hi
                        ),
                    });
                }
            }
        }
        // Writes of iteration i.
        for (r, rep) in spec.refs.iter().zip(&report.refs) {
            if !r.mode.writes() {
                continue;
            }
            let Some(e) = elem(w, &r.pattern, i) else {
                continue;
            };
            last_write.insert((r.array, e), i);
            if let Some(fp) = rep.footprint {
                let addr = raw_addr(w, r.array, e);
                if !fp.contains(addr, r.bytes) {
                    violations.push(Violation {
                        loop_name: spec.name.clone(),
                        ref_name: r.name.to_string(),
                        iter: i,
                        detail: format!(
                            "write of [{addr}, {addr}+{}) escapes the claimed footprint \
                             [{}, {})",
                            r.bytes, fp.lo, fp.hi
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Replay every loop of the workload against its report.
pub fn check_workload(w: &Workload, report: &crate::WorkloadReport) -> Vec<Violation> {
    report
        .loops
        .iter()
        .enumerate()
        .flat_map(|(i, l)| check_loop(w, l, i))
        .collect()
}

// ---------------------------------------------------------------------------
// Transformation-plan validation: a value-level model of the interpreter.
//
// The real-thread interpreter computes, per iteration, an accumulator
// folded over every pure-read operand in operand order, then stores a
// function of it through each write-mode operand (`Modify` also reads
// its own old value at the write). The model below mirrors exactly that
// dependence structure over u64 values with a non-commutative mixer, so
// any reordering the plan claims legal must reproduce the sequential
// final state *exactly*, while an illegal reordering diverges with
// overwhelming probability. This is the replay half of the plan
// machinery in [`crate::plan`]: [`check_plan`] executes the fissioned
// order, the per-sub-loop schedules, and the whole-loop DOACROSS
// frontier orders, and reports any state mismatch as a [`Violation`].
// ---------------------------------------------------------------------------

use cascade_trace::LoopSpec;

use crate::plan::{elem_at, Schedule, TransformPlan};

/// Non-commutative 64-bit mixer (splitmix-style finalizer): `mix(a, b)`
/// differs from `mix(b, a)`, so read order, write order, and old-value
/// provenance all leave distinct fingerprints in the state.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(b)
        .wrapping_add(0x632be59bd9b4e019);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Sparse value state of the model: element values, defaulting to a
/// per-(array, element) pseudo-random initial value.
#[derive(Clone, PartialEq, Eq)]
struct ModelState(HashMap<(ArrayId, u64), u64>);

impl ModelState {
    fn new() -> Self {
        ModelState(HashMap::new())
    }

    fn get(&self, w: &Workload, array: ArrayId, e: u64) -> u64 {
        self.0
            .get(&(array, e))
            .copied()
            .unwrap_or_else(|| mix(w.space.array(array).base, e))
    }

    fn set(&mut self, array: ArrayId, e: u64, v: u64) {
        self.0.insert((array, e), v);
    }
}

/// Execute one iteration of the loop body restricted to the given
/// anchor operands (by ref index): fold every pure read in operand
/// order, then store through each selected write-mode operand in
/// operand order — the interpreter's read-before-write body shape.
fn model_iter(w: &Workload, spec: &LoopSpec, anchors: &[usize], st: &mut ModelState, i: u64) {
    let mut acc = 0x517cc1b727220a95u64;
    for r in spec.refs.iter().filter(|r| r.mode.is_read_only()) {
        if let Some(e) = elem_at(w, &r.pattern, i) {
            acc = mix(acc, st.get(w, r.array, e));
        }
    }
    for (k, r) in spec.refs.iter().enumerate() {
        if !r.mode.writes() || !anchors.contains(&k) {
            continue;
        }
        let Some(e) = elem_at(w, &r.pattern, i) else {
            continue;
        };
        let v = match r.mode {
            cascade_trace::Mode::Write => mix(acc, k as u64 + 1),
            cascade_trace::Mode::Modify => mix(mix(st.get(w, r.array, e), acc), k as u64 + 1),
            cascade_trace::Mode::Read => unreachable!(),
        };
        st.set(r.array, e, v);
    }
}

/// Deterministic xorshift64* stream for the randomized admissible
/// orders (no global RNG: plan validation must be reproducible).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

/// A random permutation of `0..n` (Fisher–Yates) — admissible for a
/// DOALL claim.
fn shuffled(n: u64, rng: &mut XorShift) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    for i in (1..v.len()).rev() {
        v.swap(i, (rng.next() % (i as u64 + 1)) as usize);
    }
    v
}

/// Iterations `0..n` with each consecutive block of `lag` reversed —
/// admissible under the committed-frontier DOACROSS rule: iteration `i`
/// in block `k` only needs `j ≤ i − lag ≤ k·lag − 1` done, and every
/// earlier block completes before block `k` starts.
fn block_reversed(n: u64, lag: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(n as usize);
    let mut start = 0;
    while start < n {
        let end = (start + lag).min(n);
        out.extend((start..end).rev());
        start = end;
    }
    out
}

/// A random order admissible under the committed-frontier rule for lag
/// `L`: iteration `i` may be picked once every `j ≤ i − L` is done.
fn admissible_order(n: u64, lag: u64, rng: &mut XorShift) -> Vec<u64> {
    let mut done = vec![false; n as usize];
    let mut frontier: i64 = -1; // all j <= frontier are done
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let hi = ((frontier + lag as i64).min(n as i64 - 1)) as u64;
        let ready: Vec<u64> = ((frontier + 1) as u64..=hi)
            .filter(|&i| !done[i as usize])
            .collect();
        let pick = ready[(rng.next() % ready.len() as u64) as usize];
        done[pick as usize] = true;
        out.push(pick);
        while ((frontier + 1) as u64) < n && done[(frontier + 1) as usize] {
            frontier += 1;
        }
    }
    out
}

/// The iteration orders that falsify a schedule claim if any real
/// dependence contradicts it.
fn schedule_orders(n: u64, s: Schedule, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = XorShift(seed | 1);
    match s {
        Schedule::Sequential => vec![(0..n).collect()],
        Schedule::Parallel => vec![(0..n).rev().collect(), shuffled(n, &mut rng)],
        Schedule::DoAcross { lag } => vec![
            block_reversed(n, lag),
            admissible_order(n, lag, &mut rng),
            admissible_order(n, lag, &mut rng),
        ],
    }
}

/// Run the partition in order; sub-loop `k` walks its iterations in the
/// order produced by `order_of(k)`.
fn run_partition(
    w: &Workload,
    spec: &LoopSpec,
    plan: &TransformPlan,
    mut order_of: impl FnMut(usize) -> Vec<u64>,
) -> ModelState {
    let mut st = ModelState::new();
    for (k, sub) in plan.partition.iter().enumerate() {
        let anchors: Vec<usize> = sub
            .statements
            .iter()
            .filter_map(|&s| plan.statements[s].anchor)
            .collect();
        for i in order_of(k) {
            model_iter(w, spec, &anchors, &mut st, i);
        }
    }
    st
}

/// Compare a candidate state to the sequential reference; `None` when
/// bitwise equal, else the first differing location (canonical order).
fn first_diff(w: &Workload, reference: &ModelState, got: &ModelState) -> Option<String> {
    let mut keys: Vec<(ArrayId, u64)> = reference.0.keys().chain(got.0.keys()).copied().collect();
    keys.sort_unstable_by_key(|&(a, e)| (a.0, e));
    keys.dedup();
    for (a, e) in keys {
        let want = reference.get(w, a, e);
        let have = got.get(w, a, e);
        if want != have {
            return Some(format!(
                "{}[{e}]: sequential {want:#x}, transformed {have:#x}",
                w.space.array(a).name
            ));
        }
    }
    None
}

/// Validate every claim of a [`TransformPlan`] against the value-level
/// replay model:
///
/// 1. **fission order** — executing the sub-loops one after another (each
///    sequentially) equals the sequential loop;
/// 2. **per-sub-loop schedules** — a `Parallel` sub-loop survives reversed
///    and shuffled iteration orders, a `DoAcross { lag }` sub-loop
///    survives block-reversed and randomized committed-frontier orders at
///    its lag;
/// 3. **whole-loop claims** — a `parallel` mode survives whole-loop
///    reversal/shuffle; a whole-loop `doacross_lag ≥ 2` survives frontier
///    orders at that lag.
///
/// An opaque plan claims nothing and is vacuously valid. `seed` drives
/// the randomized orders (deterministically).
pub fn check_plan(
    w: &Workload,
    spec: &LoopSpec,
    plan: &TransformPlan,
    seed: u64,
) -> Vec<Violation> {
    let n = spec.iters;
    let mut out = Vec::new();
    if n == 0 || spec.refs.is_empty() || plan.opaque {
        return out;
    }
    let mut violation = |claim: &str, diff: String| {
        out.push(Violation {
            loop_name: spec.name.clone(),
            ref_name: "<plan>".to_string(),
            iter: 0,
            detail: format!("{claim}: {diff}"),
        });
    };

    let all_anchors: Vec<usize> = (0..spec.refs.len())
        .filter(|&k| spec.refs[k].mode.writes())
        .collect();
    let mut reference = ModelState::new();
    for i in 0..n {
        model_iter(w, spec, &all_anchors, &mut reference, i);
    }

    // Claim 1: the fission order itself.
    let fissioned = run_partition(w, spec, plan, |_| (0..n).collect());
    if let Some(diff) = first_diff(w, &reference, &fissioned) {
        violation("fissioned sub-loop order diverges from sequential", diff);
    }

    // Claim 2: each sub-loop's schedule, every falsifying order.
    for (k, sub) in plan.partition.iter().enumerate() {
        for (pass, order) in schedule_orders(n, sub.schedule, seed ^ (k as u64) << 8)
            .into_iter()
            .enumerate()
        {
            let got = run_partition(w, spec, plan, |j| {
                if j == k {
                    order.clone()
                } else {
                    (0..n).collect()
                }
            });
            if let Some(diff) = first_diff(w, &reference, &got) {
                violation(
                    &format!(
                        "sub-loop {k} ({}) pass {pass} violates its {} schedule",
                        sub.statements
                            .iter()
                            .map(|&s| plan.statements[s].name)
                            .collect::<Vec<_>>()
                            .join(", "),
                        sub.schedule.as_str()
                    ),
                    diff,
                );
            }
        }
    }

    // Claim 3: the whole-loop mode matrix.
    let whole = if plan.modes.parallel {
        Some(Schedule::Parallel)
    } else {
        match plan.modes.doacross_lag {
            Some(lag) if lag >= 2 => Some(Schedule::DoAcross { lag }),
            _ => None,
        }
    };
    if let Some(s) = whole {
        for (pass, order) in schedule_orders(n, s, seed ^ 0xdead_beef)
            .into_iter()
            .enumerate()
        {
            let mut st = ModelState::new();
            for &i in &order {
                model_iter(w, spec, &all_anchors, &mut st, i);
            }
            if let Some(diff) = first_diff(w, &reference, &st) {
                violation(
                    &format!("whole-loop {} claim pass {pass} diverges", s.as_str()),
                    diff,
                );
            }
        }
    }
    out
}

/// Validate the plan of every loop of a workload (plans in workload
/// order, as produced by [`crate::plan::plan_workload`]).
pub fn check_workload_plans(w: &Workload, plans: &[TransformPlan], seed: u64) -> Vec<Violation> {
    w.loops
        .iter()
        .zip(plans)
        .flat_map(|(spec, plan)| check_plan(w, spec, plan, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_workload, Footprint, RefReport};
    use cascade_trace::{AddressSpace, IndexStore, LoopSpec, Mode, StreamRef};

    fn recurrence() -> Workload {
        let mut s = AddressSpace::new();
        let y = s.alloc("y", 8, 65);
        Workload {
            space: s,
            index: IndexStore::new(),
            loops: vec![LoopSpec {
                name: "rec".into(),
                iters: 64,
                refs: vec![
                    StreamRef {
                        name: "y(i-1)",
                        array: y,
                        pattern: Pattern::Affine { base: 0, stride: 1 },
                        mode: Mode::Read,
                        bytes: 8,
                        hoistable: false,
                    },
                    StreamRef {
                        name: "y(i)",
                        array: y,
                        pattern: Pattern::Affine { base: 1, stride: 1 },
                        mode: Mode::Write,
                        bytes: 8,
                        hoistable: false,
                    },
                ],
                compute: 1.0,
                hoistable_compute: 0.0,
                hoist_result_bytes: 0,
            }],
        }
    }

    #[test]
    fn sound_report_has_no_violations() {
        let w = recurrence();
        let rep = analyze_workload(&w);
        assert!(check_workload(&w, &rep).is_empty());
    }

    #[test]
    fn inflated_lag_is_caught() {
        let w = recurrence();
        let mut rep = analyze_workload(&w);
        // Sabotage: claim lag 2 where the true lag is 1.
        rep.loops[0].refs[0].verdict = Verdict::HorizonSafe { lag: 2 };
        let v = check_workload(&w, &rep);
        assert!(!v.is_empty());
        assert!(v[0].detail.contains("claimed lag 2"), "{}", v[0]);
    }

    #[test]
    fn false_packable_is_caught() {
        let w = recurrence();
        let mut rep = analyze_workload(&w);
        rep.loops[0].refs[0].verdict = Verdict::Packable;
        let v = check_workload(&w, &rep);
        assert!(v.iter().any(|v| v.detail.contains("claimed packable")));
    }

    fn fused() -> Workload {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 64);
        let b = s.alloc("b", 8, 65);
        let c = s.alloc("c", 8, 64);
        Workload {
            space: s,
            index: IndexStore::new(),
            loops: vec![LoopSpec {
                name: "fused".into(),
                iters: 64,
                refs: vec![
                    StreamRef {
                        name: "a(i)",
                        array: a,
                        pattern: Pattern::Affine { base: 0, stride: 1 },
                        mode: Mode::Read,
                        bytes: 8,
                        hoistable: false,
                    },
                    StreamRef {
                        name: "b(i)",
                        array: b,
                        pattern: Pattern::Affine { base: 0, stride: 1 },
                        mode: Mode::Read,
                        bytes: 8,
                        hoistable: false,
                    },
                    StreamRef {
                        name: "b(i+1)",
                        array: b,
                        pattern: Pattern::Affine { base: 1, stride: 1 },
                        mode: Mode::Write,
                        bytes: 8,
                        hoistable: false,
                    },
                    StreamRef {
                        name: "c(i)",
                        array: c,
                        pattern: Pattern::Affine { base: 0, stride: 1 },
                        mode: Mode::Write,
                        bytes: 8,
                        hoistable: false,
                    },
                ],
                compute: 1.0,
                hoistable_compute: 0.0,
                hoist_result_bytes: 0,
            }],
        }
    }

    #[test]
    fn emitted_plans_validate_bitwise() {
        for w in [recurrence(), fused()] {
            let plans = crate::plan::plan_workload(&w);
            let v = check_workload_plans(&w, &plans, 0xfeed);
            assert!(v.is_empty(), "{:?}", v);
        }
    }

    #[test]
    fn swapped_fission_order_is_caught_by_replay() {
        // Seeded bug: run the DOALL consumer sub-loop *before* the
        // recurrence that produces its input. check_partition rejects it
        // statically; the replay model catches it dynamically.
        let w = fused();
        let mut plan = crate::plan::plan_loop(&w, &w.loops[0]);
        assert_eq!(plan.partition.len(), 2);
        plan.partition.swap(0, 1);
        let groups: Vec<Vec<usize>> = plan
            .partition
            .iter()
            .map(|s| s.statements.clone())
            .collect();
        assert!(plan.check_partition(&groups).is_err());
        let v = check_plan(&w, &w.loops[0], &plan, 7);
        assert!(
            v.iter()
                .any(|v| v.detail.contains("fissioned sub-loop order")),
            "{:?}",
            v
        );
    }

    #[test]
    fn false_parallel_schedule_is_caught_by_replay() {
        // Seeded bug: claim the recurrence sub-loop is DOALL.
        let w = recurrence();
        let mut plan = crate::plan::plan_loop(&w, &w.loops[0]);
        assert_eq!(
            plan.partition[0].schedule,
            crate::plan::Schedule::Sequential
        );
        plan.partition[0].schedule = Schedule::Parallel;
        let v = check_plan(&w, &w.loops[0], &plan, 7);
        assert!(
            v.iter().any(|v| v.detail.contains("parallel schedule")),
            "{:?}",
            v
        );
    }

    #[test]
    fn inflated_doacross_lag_is_caught_by_replay() {
        // Seeded bug: claim lag 4 where the true carried lag is 1.
        let w = recurrence();
        let mut plan = crate::plan::plan_loop(&w, &w.loops[0]);
        plan.partition[0].schedule = Schedule::DoAcross { lag: 4 };
        let v = check_plan(&w, &w.loops[0], &plan, 7);
        assert!(
            v.iter().any(|v| v.detail.contains("doacross schedule")),
            "{:?}",
            v
        );
    }

    #[test]
    fn false_whole_loop_doacross_claim_is_caught() {
        let w = recurrence();
        let mut plan = crate::plan::plan_loop(&w, &w.loops[0]);
        assert_eq!(plan.modes.doacross_lag, Some(1));
        plan.modes.doacross_lag = Some(4);
        let v = check_plan(&w, &w.loops[0], &plan, 7);
        assert!(
            v.iter().any(|v| v.detail.contains("whole-loop doacross")),
            "{:?}",
            v
        );
    }

    #[test]
    fn legal_doacross_lag_survives_frontier_orders() {
        // y(i+8) = f(y(i)): true carried lag 8; the frontier orders at
        // lag 8 must reproduce sequential state bitwise.
        let mut s = AddressSpace::new();
        let y = s.alloc("y", 8, 72);
        let w = Workload {
            space: s,
            index: IndexStore::new(),
            loops: vec![LoopSpec {
                name: "wide".into(),
                iters: 64,
                refs: vec![
                    StreamRef {
                        name: "y(i)",
                        array: y,
                        pattern: Pattern::Affine { base: 0, stride: 1 },
                        mode: Mode::Read,
                        bytes: 8,
                        hoistable: false,
                    },
                    StreamRef {
                        name: "y(i+8)",
                        array: y,
                        pattern: Pattern::Affine { base: 8, stride: 1 },
                        mode: Mode::Write,
                        bytes: 8,
                        hoistable: false,
                    },
                ],
                compute: 1.0,
                hoistable_compute: 0.0,
                hoist_result_bytes: 0,
            }],
        };
        let plan = crate::plan::plan_loop(&w, &w.loops[0]);
        assert_eq!(plan.partition[0].schedule, Schedule::DoAcross { lag: 8 });
        let v = check_plan(&w, &w.loops[0], &plan, 99);
        assert!(v.is_empty(), "{:?}", v);
    }

    #[test]
    fn shrunken_footprint_is_caught() {
        let w = recurrence();
        let mut rep = analyze_workload(&w);
        let fp = rep.loops[0].refs[0].footprint.unwrap();
        rep.loops[0].refs[0] = RefReport {
            footprint: Some(Footprint {
                hi: fp.hi - 8,
                ..fp
            }),
            ..rep.loops[0].refs[0].clone()
        };
        let v = check_workload(&w, &rep);
        assert!(v.iter().any(|v| v.detail.contains("escapes")));
    }
}

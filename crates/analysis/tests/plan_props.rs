//! Transformation plans versus the dynamic replay oracle, over randomized
//! alias-heavy loops.
//!
//! The generator mirrors `tests/oracle_props.rs`: every ref draws from one
//! shared pool of 2–4 data arrays, so flow/anti/output dependences at
//! random distances (and random same-iteration aliasing) arise naturally.
//! For any generated `LoopSpec` the emitted `TransformPlan` must be
//! self-consistent (its own partition passes `check_partition`) and — the
//! tentpole property — bitwise-validated by the replay model: the
//! fissioned sub-loop order, every per-sub-loop schedule, and the
//! whole-loop DOALL/DOACROSS claims all reproduce the sequential final
//! state exactly. Conversely, reversing a partition that has a
//! cross-sub-loop dependence must be rejected with `AN013`.

use proptest::prelude::*;

use cascade_analyze::oracle::check_plan;
use cascade_analyze::plan::plan_loop;
use cascade_trace::{
    AddressSpace, DiagCode, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};

/// Element count of every generated array (small: the oracle replays all
/// iterations of every schedule order).
const LEN: u64 = 512;

#[derive(Debug, Clone)]
struct GenRef {
    array_pick: u8,
    mode_pick: u8,
    indirect: bool,
    base: i64,
    stride: i64,
}

fn gen_ref() -> impl Strategy<Value = GenRef> {
    (0u8..4, 0u8..4, any::<bool>(), 0i64..5, 1i64..4).prop_map(
        |(array_pick, mode_pick, indirect, base, stride)| GenRef {
            array_pick,
            mode_pick,
            indirect,
            base,
            stride,
        },
    )
}

/// Materialize a generated configuration (same scheme as
/// `oracle_props::build`, write-biased so multi-statement loops — the
/// interesting case for fission — are common).
fn build(iters: u64, gens: &[GenRef], narrays: usize, seed: u64) -> Workload {
    let mut space = AddressSpace::new();
    let pool: Vec<_> = (0..narrays)
        .map(|i| space.alloc(&format!("a{i}"), 8, LEN))
        .collect();
    let mut index = IndexStore::new();
    let mut refs = Vec::new();
    for (k, g) in gens.iter().enumerate() {
        let array = pool[(g.array_pick as usize) % pool.len()];
        let mode = match g.mode_pick {
            0 => Mode::Read,
            1 | 2 => Mode::Write,
            _ => Mode::Modify,
        };
        let pattern = if g.indirect {
            let idx = space.alloc(&format!("idx{k}"), 4, LEN);
            index.set(
                idx,
                (0..LEN)
                    .map(|i| {
                        ((i.wrapping_mul(2_654_435_761)
                            .wrapping_add(seed)
                            .wrapping_mul(k as u64 + 1))
                            % LEN) as u32
                    })
                    .collect(),
            );
            Pattern::Indirect {
                index: idx,
                ibase: g.base,
                istride: g.stride,
            }
        } else {
            Pattern::Affine {
                base: g.base,
                stride: g.stride,
            }
        };
        refs.push(StreamRef {
            name: Box::leak(format!("ref{k}").into_boxed_str()),
            array,
            pattern,
            mode,
            bytes: 8,
            hoistable: false,
        });
    }
    let spec = LoopSpec {
        name: format!("plan-gen iters={iters}"),
        iters,
        refs,
        compute: 4.0,
        hoistable_compute: 0.0,
        hoist_result_bytes: 0,
    };
    Workload {
        space,
        index,
        loops: vec![spec],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole acceptance property: every emitted plan validates
    /// bitwise against the replay model, and the plan's own partition
    /// passes its own legality check.
    #[test]
    fn emitted_plans_survive_dynamic_replay(
        iters in 16u64..128,
        gens in proptest::collection::vec(gen_ref(), 1..6),
        narrays in 2usize..5,
        seed in any::<u64>(),
    ) {
        let w = build(iters, &gens, narrays, seed);
        let spec = &w.loops[0];
        let plan = plan_loop(&w, spec);
        prop_assert!(
            plan.check_partition(&plan.partition.iter().map(|s| s.statements.clone()).collect::<Vec<_>>()).is_ok(),
            "plan's own partition failed its own legality check"
        );
        let violations = check_plan(&w, spec, &plan, seed);
        prop_assert!(
            violations.is_empty(),
            "replay contradicted the plan: {violations:?}\nplan: {plan:?}"
        );
    }

    /// Reversing the fission order is illegal exactly when a dependence
    /// crosses sub-loops: `check_partition` must reject the reversed
    /// partition with AN013 iff a cross-sub-loop edge exists, and accept
    /// it otherwise (independent sub-loops commute).
    #[test]
    fn reversed_partitions_are_rejected_iff_a_cross_edge_exists(
        iters in 16u64..96,
        gens in proptest::collection::vec(gen_ref(), 2..6),
        narrays in 2usize..4,
        seed in any::<u64>(),
    ) {
        let w = build(iters, &gens, narrays, seed);
        let spec = &w.loops[0];
        let plan = plan_loop(&w, spec);
        prop_assume!(!plan.opaque && plan.partition.len() >= 2);
        let mut group_of = vec![0usize; plan.statements.len()];
        for (g, sub) in plan.partition.iter().enumerate() {
            for &s in &sub.statements {
                group_of[s] = g;
            }
        }
        let cross_edge = plan
            .edges
            .iter()
            .any(|e| group_of[e.src] != group_of[e.dst]);
        let reversed: Vec<Vec<usize>> = plan
            .partition
            .iter()
            .rev()
            .map(|s| s.statements.clone())
            .collect();
        match plan.check_partition(&reversed) {
            Ok(()) => prop_assert!(
                !cross_edge,
                "reversed partition accepted despite a cross-sub-loop edge"
            ),
            Err(diags) => {
                prop_assert!(
                    cross_edge,
                    "independent sub-loops must commute, got {diags:?}"
                );
                prop_assert!(
                    diags.iter().all(|d| d.code == DiagCode::IllegalPartition),
                    "rejection must use AN013: {diags:?}"
                );
            }
        }
    }
}

//! The dynamic oracle versus the static analyzer, over randomized loops.
//!
//! For any generated `LoopSpec` the analyzer's verdicts must never be
//! contradicted by a replay of the reference stream: a `Packable` operand
//! never reads an element a prior iteration wrote, a `HorizonSafe { lag }`
//! operand never reads an element written fewer than `lag` iterations
//! earlier, and every access stays inside the reported footprint. Unlike
//! `tests/properties.rs` (which segregates read and write arrays so the
//! legacy validator accepted everything), this generator deliberately lets
//! reads and writes share arrays so carried dependences actually occur.

use proptest::prelude::*;

use cascade_analyze::{analyze_workload, oracle};
use cascade_trace::{AddressSpace, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload};

/// Element count of every generated array (small: the oracle replays all
/// iterations of every case).
const LEN: u64 = 512;

#[derive(Debug, Clone)]
struct GenRef {
    array_pick: u8,
    mode_pick: u8,
    indirect: bool,
    base: i64,
    stride: i64,
}

fn gen_ref() -> impl Strategy<Value = GenRef> {
    (0u8..4, 0u8..4, any::<bool>(), 0i64..5, 1i64..4).prop_map(
        |(array_pick, mode_pick, indirect, base, stride)| GenRef {
            array_pick,
            mode_pick,
            indirect,
            base,
            stride,
        },
    )
}

/// Materialize a generated configuration. All refs draw from one shared
/// pool of 2–4 data arrays, so read/write aliasing (and therefore flow,
/// anti, and output dependences at random distances) arises naturally.
fn build(iters: u64, gens: &[GenRef], narrays: usize, seed: u64) -> Workload {
    let mut space = AddressSpace::new();
    let pool: Vec<_> = (0..narrays)
        .map(|i| space.alloc(&format!("a{i}"), 8, LEN))
        .collect();
    let mut index = IndexStore::new();
    let mut refs = Vec::new();
    for (k, g) in gens.iter().enumerate() {
        let array = pool[(g.array_pick as usize) % pool.len()];
        // Read-biased so loops usually have both readers and writers.
        let mode = match g.mode_pick {
            0 | 1 => Mode::Read,
            2 => Mode::Write,
            _ => Mode::Modify,
        };
        let pattern = if g.indirect {
            let idx = space.alloc(&format!("idx{k}"), 4, LEN);
            // Deterministic pseudo-random in-range indices, distinct per
            // ref and per test case.
            index.set(
                idx,
                (0..LEN)
                    .map(|i| {
                        ((i.wrapping_mul(2_654_435_761)
                            .wrapping_add(seed)
                            .wrapping_mul(k as u64 + 1))
                            % LEN) as u32
                    })
                    .collect(),
            );
            Pattern::Indirect {
                index: idx,
                ibase: g.base,
                istride: g.stride,
            }
        } else {
            Pattern::Affine {
                base: g.base,
                stride: g.stride,
            }
        };
        refs.push(StreamRef {
            name: Box::leak(format!("ref{k}").into_boxed_str()),
            array,
            pattern,
            mode,
            bytes: 8,
            hoistable: false,
        });
    }
    let spec = LoopSpec {
        name: format!("oracle-gen iters={iters}"),
        iters,
        refs,
        compute: 4.0,
        hoistable_compute: 0.0,
        hoist_result_bytes: 0,
    };
    Workload {
        space,
        index,
        loops: vec![spec],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole acceptance property: the dynamic oracle never
    /// contradicts a `Packable` / `Prefetchable` / `HorizonSafe` verdict.
    #[test]
    fn static_verdicts_survive_dynamic_replay(
        iters in 16u64..128,
        gens in proptest::collection::vec(gen_ref(), 1..5),
        narrays in 2usize..5,
        seed in any::<u64>(),
    ) {
        let w = build(iters, &gens, narrays, seed);
        // Bases/strides stay in bounds by construction (4 + 3*128 < 512),
        // so every generated loop must be admitted...
        let report = analyze_workload(&w);
        prop_assert!(
            report.rt_ok(),
            "generated loop unexpectedly rejected: {:?}",
            report.errors()
        );
        // ...and the replay must agree with every verdict.
        let violations = oracle::check_workload(&w, &report);
        prop_assert!(
            violations.is_empty(),
            "oracle contradicted the analyzer: {violations:?}"
        );
    }

    /// Horizon lags are not just sound but minimal: replaying the loop
    /// must witness an actual flow dependence at exactly the reported lag.
    #[test]
    fn horizon_lags_are_witnessed(
        iters in 16u64..96,
        gens in proptest::collection::vec(gen_ref(), 1..5),
        seed in any::<u64>(),
    ) {
        let w = build(iters, &gens, 2, seed);
        let report = analyze_workload(&w);
        prop_assume!(report.rt_ok());
        let spec = &w.loops[0];
        for r in &report.loops[0].refs {
            if let Some(lag) = r.verdict.lag() {
                let sref = spec.refs.iter().find(|s| s.name == r.name).unwrap();
                let min_gap = observed_min_flow_gap(&w, spec, sref);
                prop_assert_eq!(
                    Some(lag), min_gap,
                    "{}: reported lag {} but observed min flow gap {:?}",
                    r.name, lag, min_gap
                );
            }
        }
    }
}

/// Replay the loop and return the smallest `i - j` over all (write at j,
/// read by `r` at i, j < i) element collisions — the ground-truth lag.
fn observed_min_flow_gap(w: &Workload, spec: &LoopSpec, r: &StreamRef) -> Option<u64> {
    let mut last_write: std::collections::HashMap<(cascade_trace::ArrayId, u64), u64> =
        std::collections::HashMap::new();
    let mut min_gap = None;
    for i in 0..spec.iters {
        if let Some(e) = elem_of(w, r, i) {
            if let Some(&j) = last_write.get(&(r.array, e)) {
                let gap = i - j;
                if min_gap.is_none_or(|g| gap < g) {
                    min_gap = Some(gap);
                }
            }
        }
        for s in &spec.refs {
            if s.mode.writes() {
                if let Some(e) = elem_of(w, s, i) {
                    last_write.insert((s.array, e), i);
                }
            }
        }
    }
    min_gap
}

fn elem_of(w: &Workload, r: &StreamRef, i: u64) -> Option<u64> {
    match r.pattern {
        Pattern::Affine { base, stride } => Some((base + stride * i as i64) as u64),
        Pattern::Indirect {
            index,
            ibase,
            istride,
        } => {
            let slot = (ibase + istride * i as i64) as u64;
            Some(w.index.get(index, slot) as u64)
        }
    }
}

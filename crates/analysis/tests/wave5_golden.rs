//! Golden analyzer verdicts for wave5's 15 PARMVR loops: every loop is
//! admitted, no loop has a carried read (the particle mover's streams are
//! all loop-independent), and each operand's lattice class is exactly
//! read→packable, write/modify→prefetchable. The transformation planner
//! additionally proves 13 of the 15 loops DOALL — only the two colliding
//! scatter-adds (L5 charge deposition, L11 gather-scatter) stay
//! sequential — and every plan validates bitwise against the replay
//! oracle.

use cascade_analyze::analyze_workload;
use cascade_analyze::oracle::check_plan;
use cascade_analyze::plan::{plan_workload, Schedule};
use cascade_trace::Mode;
use cascade_wave5::{Parmvr, ParmvrParams};

#[test]
fn wave5_loops_match_golden_verdicts() {
    let p = Parmvr::build(ParmvrParams {
        scale: 0.01,
        seed: 42,
    });
    let rep = analyze_workload(&p.workload);
    assert!(rep.rt_ok(), "wave5 must be admitted in full");
    assert_eq!(rep.loops.len(), 15);
    for l in &rep.loops {
        assert_eq!(
            l.helper_lag(),
            None,
            "{}: PARMVR has no carried reads, lag must be absent",
            l.loop_name
        );
        assert!(
            l.diagnostics.is_empty(),
            "{}: unexpected diagnostics {:?}",
            l.loop_name,
            l.diagnostics
        );
        for r in &l.refs {
            let want = match r.mode {
                Mode::Read => "packable",
                Mode::Write | Mode::Modify => "prefetchable",
            };
            assert_eq!(
                r.verdict.class(),
                want,
                "{}: {} drifted to {}",
                l.loop_name,
                r.name,
                r.verdict
            );
        }
    }
}

#[test]
fn wave5_plans_match_golden_and_validate() {
    let p = Parmvr::build(ParmvrParams {
        scale: 0.01,
        seed: 42,
    });
    let w = &p.workload;
    let plans = plan_workload(w);
    assert_eq!(plans.len(), 15);
    for (spec, plan) in w.loops.iter().zip(&plans) {
        assert!(!plan.opaque, "{}: plan must not be opaque", spec.name);
        // Each PARMVR loop has a single store statement: fission never
        // applies, but the schedule verdict is the interesting part.
        assert_eq!(
            plan.modes.sub_loops, 1,
            "{}: partition shape drifted",
            spec.name
        );
        let sequential = spec.name.starts_with("L5 ") || spec.name.starts_with("L11 ");
        let want = if sequential {
            // The colliding scatter-adds carry an output+flow chain at
            // distance 1 through rho.
            Schedule::Sequential
        } else {
            Schedule::Parallel
        };
        assert_eq!(
            plan.partition[0].schedule, want,
            "{}: schedule verdict drifted",
            spec.name
        );
        assert_eq!(
            plan.modes.parallel, !sequential,
            "{}: whole-loop DOALL verdict drifted",
            spec.name
        );
        let v = check_plan(w, spec, plan, 0x5eed);
        assert!(
            v.is_empty(),
            "{}: plan contradicted by replay: {v:?}",
            spec.name
        );
    }
}

#[test]
fn wave5_footprints_are_exact_for_affine_streams() {
    // Every affine stream's byte-interval footprint is exact; indirect
    // gathers fall back to index-store bounds (exact only when the index
    // contents cover the dense range).
    let p = Parmvr::build(ParmvrParams {
        scale: 0.01,
        seed: 42,
    });
    let rep = analyze_workload(&p.workload);
    for l in &rep.loops {
        for r in &l.refs {
            let fp = r
                .footprint
                .as_ref()
                .unwrap_or_else(|| panic!("{}: {} lost its footprint", l.loop_name, r.name));
            assert!(fp.lo < fp.hi, "{}: {} empty footprint", l.loop_name, r.name);
            if r.index_footprint.is_none() {
                assert!(
                    fp.exact,
                    "{}: affine stream {} must have an exact footprint",
                    l.loop_name, r.name
                );
            }
        }
    }
}

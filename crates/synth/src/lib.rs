//! # cascade-synth — the §3.4 synthetic loop
//!
//! The paper estimates the benefit of cascaded execution on *future*
//! machines (where memory access increasingly dominates) with one simple
//! loop whose memory-to-compute ratio is much higher than the benchmark's:
//!
//! ```fortran
//! do i = 1, n, k
//!    X(IJ(i)) = X(IJ(i)) + A(i) + B(i)
//! end do
//! ```
//!
//! All operands are integers and `IJ` is the identity vector `1..n`. With
//! step `k = 1` ("dense") the loop walks memory sequentially; with `k = 8`
//! ("sparse") each iteration touches a fresh L1 line on both machines (32B
//! lines, 4-byte integers), destroying all spatial locality and magnifying
//! the memory-access-to-execution ratio.
//!
//! ```
//! use cascade_synth::{Synth, Variant};
//!
//! let s = Synth::build(1 << 16, Variant::Sparse, 42);
//! assert_eq!(s.workload.loops.len(), 1);
//! assert_eq!(s.workload.loops[0].iters, (1 << 16) / 8);
//! ```

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cascade_trace::{
    AddressSpace, Arena, ArrayId, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};

/// Dense (`k = 1`) or sparse (`k = 8`) stepping of the synthetic loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Step 1: full spatial locality (8 integers per 32-byte line).
    Dense,
    /// Step 8: one integer per L1 line — "no spatial locality whatsoever".
    Sparse,
}

impl Variant {
    /// The loop step `k`.
    pub fn step(&self) -> u64 {
        match self {
            Variant::Dense => 1,
            Variant::Sparse => 8,
        }
    }

    /// Label used in reports ("dense" / "sparse").
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Dense => "dense",
            Variant::Sparse => "sparse",
        }
    }
}

/// Array handles of the synthetic loop.
#[derive(Debug, Clone, Copy)]
pub struct SynthArrays {
    /// The updated vector `X` (u32, length `n`).
    pub x: ArrayId,
    /// Operand `A` (u32, length `n`).
    pub a: ArrayId,
    /// Operand `B` (u32, length `n`).
    pub b: ArrayId,
    /// The identity index vector `IJ` (u32, length `n`).
    pub ij: ArrayId,
}

/// A built synthetic-loop instance.
#[derive(Debug, Clone)]
pub struct Synth {
    /// Simulator-facing description (one loop).
    pub workload: Workload,
    /// Real backing data for the runtime.
    pub arena: Arena,
    /// Array handles.
    pub arrays: SynthArrays,
    /// Which variant was built.
    pub variant: Variant,
    /// Vector length `n`.
    pub n: u64,
}

impl Synth {
    /// Build the synthetic loop over vectors of length `n` (deterministic
    /// in `seed`). `n` must be a multiple of 8 so dense and sparse variants
    /// cover the same arrays.
    pub fn build(n: u64, variant: Variant, seed: u64) -> Self {
        assert!(
            n >= 8 && n.is_multiple_of(8),
            "n must be a positive multiple of 8"
        );
        let k = variant.step() as i64;
        let mut space = AddressSpace::new();
        // Stagger the arrays so their base residues differ modulo every
        // modelled cache way size (96KB, 192KB, 288KB pads are distinct
        // mod 128KB and mod 1MB): the paper's synthetic loop measures
        // memory *latency*, not cache conflicts, so the four streams must
        // coexist in both machines' L2 caches.
        let staggered = |space: &mut AddressSpace, name, pad_kb: u64| {
            space.alloc(&format!("pad-{name}"), 1, pad_kb * 1024);
            space.alloc(name, 4, n)
        };
        let arrays = SynthArrays {
            x: space.alloc("X", 4, n),
            a: staggered(&mut space, "A", 96),
            b: staggered(&mut space, "B", 96),
            ij: staggered(&mut space, "IJ", 96),
        };
        let mut index = IndexStore::new();
        index.set(arrays.ij, (0..n as u32).collect());

        let spec = LoopSpec {
            name: format!("synthetic {} (k={})", variant.label(), k),
            iters: n / variant.step(),
            refs: vec![
                StreamRef {
                    name: "A(i)",
                    array: arrays.a,
                    pattern: Pattern::Affine { base: 0, stride: k },
                    mode: Mode::Read,
                    bytes: 4,
                    hoistable: true,
                },
                StreamRef {
                    name: "B(i)",
                    array: arrays.b,
                    pattern: Pattern::Affine { base: 0, stride: k },
                    mode: Mode::Read,
                    bytes: 4,
                    hoistable: true,
                },
                StreamRef {
                    name: "X(IJ(i))",
                    array: arrays.x,
                    pattern: Pattern::Indirect {
                        index: arrays.ij,
                        ibase: 0,
                        istride: k,
                    },
                    mode: Mode::Modify,
                    bytes: 4,
                    hoistable: false,
                },
            ],
            // A low compute demand is the point: the loop is built to have
            // a larger memory-access-to-instruction ratio than wave5.
            compute: 3.0,
            hoistable_compute: 1.0,
            hoist_result_bytes: 4,
        };
        spec.validate();

        let mut arena = Arena::new(&space);
        let mut rng = StdRng::seed_from_u64(seed);
        for id in [arrays.x, arrays.a, arrays.b] {
            for i in 0..n {
                arena.set_u32(&space, id, i, rng.gen_range(0..1_000_000));
            }
        }
        let workload = Workload {
            space,
            index,
            loops: vec![spec],
        };
        arena.install_indices(&workload.space, &workload.index);
        workload.validate();
        Synth {
            workload,
            arena,
            arrays,
            variant,
            n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_walks_every_element() {
        let s = Synth::build(1 << 12, Variant::Dense, 1);
        assert_eq!(s.workload.loops[0].iters, 1 << 12);
        assert!(s.workload.loops[0].has_indirection());
    }

    #[test]
    fn sparse_touches_one_int_per_line() {
        let s = Synth::build(1 << 12, Variant::Sparse, 1);
        let spec = &s.workload.loops[0];
        assert_eq!(spec.iters, (1 << 12) / 8);
        // 4-byte elements, stride 8 -> 32 bytes advanced per iteration =
        // exactly one L1 line on both Table-1 machines.
        match spec.refs[0].pattern {
            Pattern::Affine { stride, .. } => assert_eq!(stride * 4, 32),
            _ => panic!("A(i) must be affine"),
        }
    }

    #[test]
    fn ij_is_identity() {
        let s = Synth::build(64, Variant::Dense, 1);
        for i in 0..64 {
            assert_eq!(s.workload.index.get(s.arrays.ij, i), i as u32);
            assert_eq!(s.arena.get_u32(&s.workload.space, s.arrays.ij, i), i as u32);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Synth::build(1 << 10, Variant::Dense, 5);
        let b = Synth::build(1 << 10, Variant::Dense, 5);
        assert_eq!(a.arena.checksum(), b.arena.checksum());
        let c = Synth::build(1 << 10, Variant::Dense, 6);
        assert_ne!(a.arena.checksum(), c.arena.checksum());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_ragged_lengths() {
        Synth::build(100, Variant::Sparse, 1);
    }

    #[test]
    fn memory_to_compute_ratio_exceeds_wave5_loops() {
        // The defining property of §3.4's loop: touched bytes per compute
        // cycle is high. Dense: 16 bytes / 3 cycles; sparse touches the
        // same lines with 1/8 the iterations.
        let s = Synth::build(1 << 12, Variant::Dense, 1);
        let spec = &s.workload.loops[0];
        let ratio = spec.bytes_per_iter() as f64 / spec.compute;
        assert!(ratio > 4.0, "bytes per compute cycle {ratio}");
    }
}

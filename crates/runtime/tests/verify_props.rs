//! Property tests for online verified execution: randomized silent bit
//! flips inside and outside the analyzer-computed write footprints, under
//! randomized thread counts and tolerances.
//!
//! The properties pin the detection boundary exactly:
//! - an in-footprint flip on a replay-verified chunk is detected online,
//!   blamed on the worker that actually executed the chunk (never an
//!   innocent one), and either repaired bitwise or failed with an exact
//!   clean resume point;
//! - an out-of-footprint flip is bracketed by the arena scrubber when the
//!   policy is armed, with unassignable blame — and with verification off
//!   the same flip provably survives into the end state (that divergence
//!   is precisely what an armed policy buys);
//! - a single fault never quarantines anyone (quarantine needs repeat
//!   strikes), innocent or guilty.

use std::time::Duration;

use cascade_rt::{
    try_run_governed, FaultEvent, FaultKind, FaultPlan, FaultyKernel, RealKernel, RtPolicy,
    RunConfig, RunError, RunnerConfig, SpecProgram, Tolerance, VerifyPolicy,
};
use cascade_synth::{Synth, Variant};
use proptest::prelude::*;

const N: u64 = 1 << 12;
const CHUNK_ITERS: u64 = 64;
const WATCHDOG: Duration = Duration::from_millis(200);

fn sequential_checksum(variant: Variant) -> u64 {
    let s = Synth::build(N, variant, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    // SAFETY: single-threaded.
    unsafe { k.execute(0..k.iters()) };
    prog.checksum()
}

fn tolerance_for(case: u8) -> Tolerance {
    match case % 3 {
        0 => Tolerance {
            watchdog: Some(WATCHDOG),
            retry: None,
            salvage: false,
        },
        1 => Tolerance::retrying(WATCHDOG),
        _ => Tolerance::resilient(WATCHDOG),
    }
}

fn variant_for(dense: bool) -> Variant {
    if dense {
        Variant::Dense
    } else {
        Variant::Sparse
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An in-footprint flip on any chunk, under `EveryChunk`, any thread
    /// count and any tolerance: detected online, blamed on the chunk's
    /// actual executor, repaired bitwise (recovery armed) or failed with
    /// the exact committed prefix (fail-fast) — and never a quarantine,
    /// because one fault is one strike.
    #[test]
    fn in_footprint_flips_are_detected_blamed_and_recovered(
        dense in any::<bool>(),
        nthreads in 1..=4usize,
        chunk in 0..(N / CHUNK_ITERS),
        offset in any::<u64>(),
        bit in 0..8u32,
        tol_case in 0..3u8,
    ) {
        let variant = variant_for(dense);
        let expected = sequential_checksum(variant);
        let s = Synth::build(N, variant, 99);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let iters = prog.workload().loops[0].iters;
        prop_assume!(chunk < iters / CHUNK_ITERS); // full chunks only
        let plan = FaultPlan::new(CHUNK_ITERS).inject(
            chunk,
            FaultKind::SilentBitFlip {
                after_iters: CHUNK_ITERS,
                offset,
                xor: 1 << bit,
                in_footprint: true,
            },
        );
        let tolerance = tolerance_for(tol_case);
        let recovers = tolerance.retry.is_some() || tolerance.salvage;
        let cfgv = RunConfig {
            runner: RunnerConfig {
                nthreads,
                iters_per_chunk: CHUNK_ITERS,
                policy: RtPolicy::None,
                poll_batch: 8,
            },
            tolerance,
            verify: VerifyPolicy::EveryChunk,
            ..RunConfig::default()
        };
        // Single fault, no crashes: round-robin ownership holds, so the
        // only worker that may be blamed is the chunk's executor.
        let guilty = chunk % nthreads as u64;
        let faulty = FaultyKernel::new(prog.kernel(0), plan);
        let result = try_run_governed(&faulty, &cfgv);
        drop(faulty);
        let faults = match &result {
            Ok(stats) => stats.faults.clone(),
            Err(_) => Vec::new(),
        };
        for f in &faults {
            match f {
                FaultEvent::WorkerBlamed { thread, .. } => prop_assert_eq!(
                    *thread, guilty, "an innocent worker was blamed"
                ),
                FaultEvent::WorkerQuarantined { .. } => {
                    return Err(TestCaseError::fail(
                        "a single fault must never quarantine",
                    ));
                }
                _ => {}
            }
        }
        match result {
            Ok(stats) => {
                prop_assert!(recovers, "fail-fast must not absorb a detected flip");
                prop_assert!(
                    stats.faults.iter().any(|f| matches!(
                        f,
                        FaultEvent::CorruptionDetected { chunk: c, repaired: true, .. }
                            if *c == chunk
                    )),
                    "flip escaped online detection: {:?}",
                    stats.faults
                );
                prop_assert_eq!(prog.checksum(), expected, "repair diverged");
            }
            Err(RunError::Corrupted {
                thread,
                chunk: c,
                committed_iters,
            }) => {
                prop_assert!(!recovers, "a recovering run must repair, not fail");
                prop_assert_eq!(c, Some(chunk));
                prop_assert_eq!(thread, Some(guilty), "blame must name the executor");
                prop_assert_eq!(committed_iters, chunk * CHUNK_ITERS);
                {
                    let k = prog.kernel(0);
                    // SAFETY: every worker drained before the error returned.
                    unsafe { k.execute(committed_iters..k.iters()) };
                }
                prop_assert_eq!(prog.checksum(), expected, "resume diverged");
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected {other}"))),
        }
    }

    /// An out-of-footprint flip is invisible to chunk verification by
    /// construction, and it may land anywhere outside the write
    /// footprints — benign padding, or an *index array*, where the
    /// corrupted index either crashes execution (caught by the existing
    /// ladder, loudly) or redirects it while staying in bounds. The
    /// properties that must hold regardless:
    /// - armed, the run NEVER reports success — the scrubber brackets
    ///   whatever execution didn't trip over, with unassignable blame
    ///   and a fully committed prefix;
    /// - corruption outside every footprint never blames a worker;
    /// - off, a run that does report success provably carries the flip
    ///   into its end state (the divergence an armed policy prevents).
    #[test]
    fn out_of_footprint_flips_are_scrubbed_iff_armed(
        dense in any::<bool>(),
        nthreads in 1..=3usize,
        chunk in 0..(N / CHUNK_ITERS),
        offset in any::<u64>(),
        bit in 0..8u32,
        armed in any::<bool>(),
    ) {
        let variant = variant_for(dense);
        let expected = sequential_checksum(variant);
        let s = Synth::build(N, variant, 99);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let iters = prog.workload().loops[0].iters;
        prop_assume!(chunk < iters / CHUNK_ITERS);
        {
            // Only meaningful when the workload has bytes outside its
            // write footprints for the flip to land on.
            let k = prog.kernel(0);
            // SAFETY: single-threaded probe on a throwaway byte.
            prop_assume!(unsafe { k.corrupt_byte(0..k.iters(), 0, 0, false) });
        }
        let plan = FaultPlan::new(CHUNK_ITERS).inject(
            chunk,
            FaultKind::SilentBitFlip {
                after_iters: CHUNK_ITERS,
                offset,
                xor: 1 << bit,
                in_footprint: false,
            },
        );
        let cfgv = RunConfig {
            runner: RunnerConfig {
                nthreads,
                iters_per_chunk: CHUNK_ITERS,
                policy: RtPolicy::None,
                poll_batch: 8,
            },
            tolerance: Tolerance::retrying(WATCHDOG),
            verify: if armed {
                VerifyPolicy::EveryChunk
            } else {
                VerifyPolicy::Off
            },
            ..RunConfig::default()
        };
        let faulty = FaultyKernel::new(prog.kernel(0), plan);
        let result = try_run_governed(&faulty, &cfgv);
        drop(faulty);
        match result {
            Ok(_) if armed => {
                return Err(TestCaseError::fail(
                    "armed verification reported success over an out-of-footprint flip",
                ));
            }
            Ok(_) => prop_assert_ne!(
                prog.checksum(),
                expected,
                "an out-of-footprint flip is never overwritten — it must survive"
            ),
            Err(RunError::Corrupted { thread, chunk: c, committed_iters }) => {
                prop_assert!(armed, "nothing can report corruption with verification off");
                prop_assert_eq!(thread, None, "unassignable blame must stay unassigned");
                prop_assert_eq!(c, None);
                prop_assert_eq!(committed_iters, iters, "scrub runs post-join");
            }
            // A flip into an index array can crash execution outright;
            // the existing ladder reports it loudly either way.
            Err(RunError::WorkerPanicked { .. } | RunError::Stalled { .. }) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected outcome {other}")))
            }
        }
    }
}

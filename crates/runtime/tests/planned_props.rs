//! Property tests for plan-driven execution ([`try_run_planned`]).
//!
//! Randomized multi-writer loops — an optional carried recurrence
//! (lag 1 → sequential residue, lag ≥ 2 → DOACROSS pipeline), affine
//! DOALL writers, and colliding indirect scatters — are fissioned under
//! their real `cascade-analyze` transformation plans and executed on
//! 2–4 real threads. The oracle is always the same: the final arena
//! checksum must be **bitwise identical** to straight sequential
//! execution of the unfissioned loop. Fault-injection and cancellation
//! properties additionally pin the recovery contract: a salvaged run is
//! still bitwise, and a cancelled run reports a committed prefix of the
//! fissioned sequence that resumes bitwise.
//!
//! Two deterministic regressions ride along: the DOACROSS replay oracle
//! executed through the real interpreter proves that honoring the
//! planned lag is bitwise — and that waiting one dependence short of
//! the lag (`doacross_order` with `window = lag + 1`) really corrupts
//! the result.

use std::time::Duration;

use cascade_analyze::plan::{plan_loop, Schedule};
use cascade_rt::{
    doacross_order, fission_specs, try_run_planned, CancelToken, FaultKind, FaultPlan,
    FaultyKernel, RealKernel, RtPolicy, RunConfig, RunError, RunnerConfig, SpecProgram, Tolerance,
};
use cascade_trace::{
    AddressSpace, Arena, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};
use proptest::prelude::*;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// One randomized planned-execution scenario. Writers live on distinct
/// arrays so the planner fissions them into independent sub-loops; the
/// recurrence (if any) anchors a sequential or DOACROSS sub-loop that
/// every consumer transitively depends on through the shared read of
/// `a`.
#[derive(Debug, Clone)]
struct Scenario {
    iters: u64,
    /// Carried recurrence `a(i+lag) = f(a(i))`; `None` drops it.
    lag: Option<u64>,
    /// Independent affine writer `x(i)`.
    xw: bool,
    /// Independent affine read-modify-write `y(i)`.
    yw: bool,
    /// Colliding indirect scatter `sc(ij(i))` (order-sensitive RMW).
    scatter: Option<u64>,
    threads: usize,
    chunk: u64,
    salt: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        64u64..300,
        prop_oneof![
            Just(None),
            (1u64..=3).prop_map(Some), // lag 1 → Sequential, 2–3 → DoAcross
        ],
        any::<bool>(),
        any::<bool>(),
        prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        2usize..=4,
        8u64..=96,
        any::<u64>(),
    )
        .prop_map(
            |(iters, lag, xw, yw, scatter, threads, chunk, salt)| Scenario {
                iters,
                lag,
                xw,
                yw,
                scatter,
                threads,
                chunk,
                salt,
            },
        )
        .prop_filter("at least one writer", |s| {
            s.lag.is_some() || s.xw || s.yw || s.scatter.is_some()
        })
}

/// Materialize the scenario as a single-loop workload plus initialized
/// arena.
fn build(s: &Scenario) -> (Workload, Arena) {
    let n = s.iters;
    let mut space = AddressSpace::new();
    let src = space.alloc("src", 8, n);
    let a = space.alloc("a", 8, n + 4);
    let x = space.alloc("x", 8, n);
    let y = space.alloc("y", 8, n);
    let sc_elems = (n / 3).max(4);
    let sc = space.alloc("sc", 8, sc_elems);
    let mut index = IndexStore::new();

    let aff = |name: &'static str, array, base: i64, mode| StreamRef {
        name,
        array,
        pattern: Pattern::Affine { base, stride: 1 },
        mode,
        bytes: 8,
        hoistable: false,
    };
    let mut refs = vec![aff("src(i)", src, 0, Mode::Read)];
    if let Some(lag) = s.lag {
        refs.push(aff("a(i)", a, 0, Mode::Read));
        const A_NAMES: [&str; 3] = ["a(i+1)", "a(i+2)", "a(i+3)"];
        refs.push(aff(A_NAMES[lag as usize - 1], a, lag as i64, Mode::Write));
    }
    if s.xw {
        refs.push(aff("x(i)", x, 0, Mode::Write));
    }
    if s.yw {
        refs.push(aff("y(i)", y, 0, Mode::Modify));
    }
    if let Some(seed) = s.scatter {
        let ij = space.alloc("ij", 4, n);
        let bound = (sc_elems / 2).max(2);
        index.set(
            ij,
            (0..n)
                .map(|i| (splitmix64(seed ^ i) % bound) as u32)
                .collect(),
        );
        refs.push(StreamRef {
            name: "sc(ij(i))",
            array: sc,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Modify,
            bytes: 8,
            hoistable: false,
        });
    }
    let spec = LoopSpec {
        name: "planned-prop".into(),
        iters: n,
        refs,
        compute: 2.0,
        hoistable_compute: 0.0,
        hoist_result_bytes: 0,
    };
    let w = Workload {
        space,
        index,
        loops: vec![spec],
    };
    let mut arena = Arena::new(&w.space);
    for i in 0..n {
        arena.set_f64(&w.space, src, i, ((i ^ s.salt) % 31) as f64 * 0.375 + 0.5);
    }
    for i in 0..n + 4 {
        arena.set_f64(
            &w.space,
            a,
            i,
            ((i.wrapping_add(s.salt)) % 17) as f64 * 0.125 - 1.0,
        );
    }
    for i in 0..n {
        arena.set_f64(&w.space, y, i, (i % 7) as f64 * 0.25 + 0.125);
    }
    for i in 0..sc_elems {
        arena.set_f64(&w.space, sc, i, (i % 5) as f64 * 0.5 - 0.75);
    }
    arena.install_indices(&w.space, &w.index);
    (w, arena)
}

/// Checksum of the unfissioned sequential run.
fn sequential_checksum(w: &Workload, arena: Arena) -> u64 {
    let mut prog = SpecProgram::new(w.clone(), arena).expect("workload must be admitted");
    {
        let k = prog.kernel(0);
        // SAFETY: single-threaded.
        unsafe { k.execute(0..k.iters()) };
    }
    prog.checksum()
}

/// Fission `w.loops[0]` under its plan and return the ready program.
fn fissioned_program(
    w: &Workload,
    arena: Arena,
) -> (SpecProgram, cascade_analyze::plan::TransformPlan) {
    let plan = plan_loop(w, &w.loops[0]);
    assert!(
        !plan.partition.is_empty(),
        "generated loops are analyzable: {plan:?}"
    );
    let specs = fission_specs(&w.loops[0], &plan);
    let fw = Workload {
        space: w.space.clone(),
        index: w.index.clone(),
        loops: specs,
    };
    let prog = SpecProgram::new(fw, arena).expect("fissioned workload must be admitted");
    (prog, plan)
}

fn runner(s: &Scenario) -> RunnerConfig {
    RunnerConfig {
        nthreads: s.threads,
        iters_per_chunk: s.chunk,
        policy: RtPolicy::Restructure,
        poll_batch: 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plan-driven execution on 2–4 real threads — DOALL range splits,
    /// DOACROSS post/wait pipelines, cascaded sequential residues, in
    /// plan order — is bitwise identical to sequential execution.
    #[test]
    fn planned_execution_matches_sequential_bitwise(s in scenario()) {
        let (w, arena) = build(&s);
        let expected = sequential_checksum(&w, arena.clone());
        let (mut prog, plan) = fissioned_program(&w, arena);
        let stats = {
            let kernels: Vec<_> =
                (0..plan.partition.len()).map(|g| prog.kernel(g)).collect();
            let cfg = RunConfig { runner: runner(&s), ..RunConfig::default() };
            try_run_planned(&kernels, &plan, &cfg).expect("clean planned run must succeed")
        };
        prop_assert_eq!(stats.iters, plan.iters * plan.partition.len() as u64);
        prop_assert_eq!(
            prog.checksum(), expected,
            "planned execution diverged (plan: {:?})",
            plan.partition
        );
    }

    /// Fail-stop and mid-mutation panics injected into random sub-loop
    /// chunks: with all-affine (journalable) writers and a salvaging
    /// tolerance the planned run must still complete — degraded at
    /// worst — and remain bitwise.
    #[test]
    fn planned_execution_salvages_injected_faults_bitwise(
        s in scenario().prop_map(|mut s| { s.scatter = None; s }),
        pick in any::<u64>(),
        mid in any::<bool>(),
    ) {
        let (w, arena) = build(&s);
        let expected = sequential_checksum(&w, arena.clone());
        let (mut prog, plan) = fissioned_program(&w, arena);
        let groups = plan.partition.len();
        let num_chunks = s.iters.div_ceil(s.chunk).max(1);
        let target_g = (splitmix64(pick) % groups as u64) as usize;
        let target_chunk = splitmix64(pick ^ 1) % num_chunks;
        let kind = if mid {
            FaultKind::PanicMidMutation {
                after_iters: 1 + splitmix64(pick ^ 2) % s.chunk.max(2),
            }
        } else {
            FaultKind::Panic
        };
        let stats = {
            let kernels: Vec<_> = (0..groups)
                .map(|g| {
                    let mut fp = FaultPlan::new(s.chunk);
                    if g == target_g {
                        fp = fp.inject(target_chunk, kind);
                    }
                    FaultyKernel::new(prog.kernel(g), fp)
                })
                .collect();
            let cfg = RunConfig {
                runner: runner(&s),
                tolerance: Tolerance::resilient(Duration::from_millis(500)),
                ..RunConfig::default()
            };
            try_run_planned(&kernels, &plan, &cfg)
                .expect("journalable faults under a salvaging tolerance must recover")
        };
        prop_assert_eq!(
            prog.checksum(), expected,
            "salvaged planned run diverged (degraded: {}, faults: {:?})",
            stats.degraded, stats.faults
        );
    }

    /// Cancellation storms: a cancel token fired mid-run either loses
    /// the race (clean bitwise completion) or drains the run to a
    /// committed prefix of the *fissioned sequence* from which a
    /// sequential resume is bitwise identical to never cancelling.
    #[test]
    fn cancelled_planned_runs_resume_bitwise(
        s in scenario(),
        delay_us in 0u64..3000,
    ) {
        let (w, arena) = build(&s);
        let expected = sequential_checksum(&w, arena.clone());
        let (mut prog, plan) = fissioned_program(&w, arena);
        let groups = plan.partition.len();
        let token = CancelToken::new();
        let result = {
            let kernels: Vec<_> =
                (0..groups).map(|g| prog.kernel(g)).collect();
            let cfg = RunConfig {
                runner: runner(&s),
                cancel: token.clone(),
                ..RunConfig::default()
            };
            let canceller = {
                let token = token.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_micros(delay_us));
                    token.cancel("planned prop canceller");
                })
            };
            let result = try_run_planned(&kernels, &plan, &cfg);
            canceller.join().unwrap();
            result
        };
        match result {
            Ok(_) => {}
            Err(RunError::Cancelled { committed_iters, .. }) => {
                // Finish the remaining sub-loops sequentially, in plan
                // order, from the reported global prefix.
                let mut rem = committed_iters;
                for g in 0..groups {
                    let k = prog.kernel(g);
                    let done = rem.min(k.iters());
                    rem -= done;
                    if done < k.iters() {
                        // SAFETY: the run drained before returning.
                        unsafe { k.execute(done..k.iters()) };
                    }
                }
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
        prop_assert_eq!(
            prog.checksum(), expected,
            "cancelled planned run did not resume bitwise"
        );
    }
}

/// Build the canonical DOACROSS workload: `a(i+lag) = f(a(i))` over a
/// shared read stream, lag 2 → the planner must emit a `DoAcross { 2 }`
/// sub-loop.
fn lag2_scenario() -> Scenario {
    Scenario {
        iters: 1024,
        lag: Some(2),
        xw: true,
        yw: false,
        scatter: None,
        threads: 4,
        chunk: 32,
        salt: 0x5eed,
    }
}

#[test]
fn lag2_recurrence_plans_doacross_and_runs_bitwise() {
    let s = lag2_scenario();
    let (w, arena) = build(&s);
    let expected = sequential_checksum(&w, arena.clone());
    let (mut prog, plan) = fissioned_program(&w, arena);
    assert!(
        matches!(plan.partition[0].schedule, Schedule::DoAcross { lag: 2 }),
        "lag-2 recurrence must schedule as DOACROSS: {:?}",
        plan.partition
    );
    let stats = {
        let kernels: Vec<_> = (0..plan.partition.len()).map(|g| prog.kernel(g)).collect();
        let cfg = RunConfig {
            runner: runner(&s),
            ..RunConfig::default()
        };
        try_run_planned(&kernels, &plan, &cfg).expect("planned run must succeed")
    };
    // With 4 workers on 32-iteration chunks the pipeline must actually
    // gate on cross-worker posts, not degenerate to one thread.
    assert!(
        stats.post_waits() > 0,
        "DOACROSS pipeline never crossed a chunk boundary: {stats:?}"
    );
    assert_eq!(prog.checksum(), expected, "DOACROSS execution diverged");
}

/// Replay `doacross_order`'s adversarial greedy-max schedule through the
/// real interpreter. `window = lag` is the planned protocol and must be
/// bitwise; `window = lag + 1` models the classic off-by-one of waiting
/// for dependence `lag - 1` — the replay admits an iteration whose
/// lag-distance producer has not committed, and the result provably
/// diverges.
#[test]
fn doacross_lag_violation_provably_diverges() {
    let s = lag2_scenario();
    let lag = 2u64;
    let (w, arena) = build(&s);
    let expected = sequential_checksum(&w, arena.clone());
    let (_, plan) = fissioned_program(&w, arena.clone());
    assert!(matches!(
        plan.partition[0].schedule,
        Schedule::DoAcross { lag: 2 }
    ));

    let replay = |window: u64, arena: Arena| -> u64 {
        let (mut prog, plan) = fissioned_program(&w, arena);
        let order = doacross_order(s.iters, s.chunk, s.threads, window);
        {
            // Sub-loop 0 is the recurrence: execute it iteration by
            // iteration in the replayed interleaving...
            let k = prog.kernel(0);
            for &j in &order {
                // SAFETY: single-threaded replay.
                unsafe { k.execute(j..j + 1) };
            }
            // ...then the downstream sub-loops in plan order.
            for g in 1..plan.partition.len() {
                let k = prog.kernel(g);
                // SAFETY: single-threaded replay.
                unsafe { k.execute(0..k.iters()) };
            }
        }
        prog.checksum()
    };

    assert_eq!(
        replay(lag, arena.clone()),
        expected,
        "the legal window (= lag) must be bitwise"
    );
    assert_ne!(
        replay(lag + 1, arena),
        expected,
        "demanding one commit fewer than the lag must corrupt the recurrence"
    );
}

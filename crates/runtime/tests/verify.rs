//! Online verified execution under injected silent corruption: a
//! [`FaultKind::SilentBitFlip`] executes the chunk normally but XORs a
//! byte inside (or outside) its analyzer-computed write footprint, and
//! the run must detect it *online* — at the next checksummed handoff,
//! never after the run — blame the guilty worker, and either repair in
//! place (recovery armed) or fail with a typed error whose committed
//! prefix is bitwise clean.

use std::time::Duration;

use cascade_rt::{
    try_run_governed, try_run_governed_sequence, FaultEvent, FaultKind, FaultPlan, FaultyKernel,
    RealKernel, RtPolicy, RunConfig, RunError, RunnerConfig, SpecProgram, Tolerance, VerifyPolicy,
};
use cascade_synth::{Synth, Variant};
use cascade_wave5::{Parmvr, ParmvrParams};

const N: u64 = 1 << 12;
const CHUNK_ITERS: u64 = 64;
const WATCHDOG: Duration = Duration::from_millis(200);

fn sequential_checksum(variant: Variant) -> u64 {
    let s = Synth::build(N, variant, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    // SAFETY: single-threaded.
    unsafe { k.execute(0..k.iters()) };
    prog.checksum()
}

/// A flip that lands after every iteration of the chunk has run, so the
/// corruption survives to commit instead of being legitimately
/// overwritten by a later iteration of the same chunk.
fn flip_in_footprint() -> FaultKind {
    FaultKind::SilentBitFlip {
        after_iters: CHUNK_ITERS,
        offset: 17,
        xor: 0x40,
        in_footprint: true,
    }
}

fn cfg(nthreads: usize, tolerance: Tolerance, verify: VerifyPolicy) -> RunConfig {
    RunConfig {
        runner: RunnerConfig {
            nthreads,
            iters_per_chunk: CHUNK_ITERS,
            policy: RtPolicy::None,
            poll_batch: 8,
        },
        tolerance,
        verify,
        ..RunConfig::default()
    }
}

/// EveryChunk + a recovery path: the flip is detected at the very next
/// handoff, the guilty worker is blamed, the chunk is repaired in place
/// from the verified replay, and the run finishes bitwise
/// sequential-identical — not degraded.
#[test]
fn in_footprint_flip_is_detected_blamed_and_repaired_online() {
    let expected = sequential_checksum(Variant::Dense);
    let s = Synth::build(N, Variant::Dense, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let plan = FaultPlan::new(CHUNK_ITERS).inject(4, flip_in_footprint());
    let faulty = FaultyKernel::new(prog.kernel(0), plan);
    let stats = try_run_governed(
        &faulty,
        &cfg(3, Tolerance::retrying(WATCHDOG), VerifyPolicy::EveryChunk),
    )
    .expect("a repairable flip must not fail the run");
    drop(faulty);
    assert!(!stats.degraded, "repair is in-cascade, not salvage");
    assert!(
        stats.faults.iter().any(|f| matches!(
            f,
            FaultEvent::CorruptionDetected {
                chunk: 4,
                repaired: true,
                ..
            }
        )),
        "missing repaired CorruptionDetected: {:?}",
        stats.faults
    );
    // Round-robin ownership: chunk 4 of 3 workers ran on thread 1.
    assert!(
        stats.faults.iter().any(|f| matches!(
            f,
            FaultEvent::WorkerBlamed {
                thread: 1,
                chunk: 4,
                strikes: 1,
            }
        )),
        "missing WorkerBlamed: {:?}",
        stats.faults
    );
    let verified: u64 = stats.threads.iter().map(|t| t.verified_chunks).sum();
    assert!(verified > 0, "no chunk was actually replay-verified");
    assert!(stats.scrubs >= 2, "baseline + post-join arena scrubs");
    assert_eq!(prog.checksum(), expected, "repaired run diverged");
}

/// The final chunk has no downstream claimant: its packet is verified by
/// the supervisor after the join — still before the run returns.
#[test]
fn final_chunk_flip_is_verified_by_the_supervisor() {
    let expected = sequential_checksum(Variant::Dense);
    let s = Synth::build(N, Variant::Dense, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let last_chunk = prog.workload().loops[0].iters.div_ceil(CHUNK_ITERS) - 1;
    let plan = FaultPlan::new(CHUNK_ITERS).inject(last_chunk, flip_in_footprint());
    let faulty = FaultyKernel::new(prog.kernel(0), plan);
    let stats = try_run_governed(
        &faulty,
        &cfg(2, Tolerance::retrying(WATCHDOG), VerifyPolicy::EveryChunk),
    )
    .expect("the supervisor repairs the final chunk");
    drop(faulty);
    assert!(stats.faults.iter().any(|f| matches!(
        f,
        FaultEvent::CorruptionDetected { chunk, repaired: true, .. } if *chunk == last_chunk
    )));
    assert_eq!(prog.checksum(), expected);
}

/// Fail-fast tolerance (no retry, no salvage): detection rolls the
/// corrupted chunk back to its pre-image and poisons. The typed error
/// names the blamed worker and the chunk, and its committed prefix is
/// exact — re-executing sequentially from it converges bitwise.
#[test]
fn fail_fast_flip_poisons_with_an_exact_clean_resume_point() {
    let expected = sequential_checksum(Variant::Dense);
    let s = Synth::build(N, Variant::Dense, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let plan = FaultPlan::new(CHUNK_ITERS).inject(5, flip_in_footprint());
    let faulty = FaultyKernel::new(prog.kernel(0), plan);
    let committed = match try_run_governed(
        &faulty,
        &cfg(2, Tolerance::default(), VerifyPolicy::EveryChunk),
    ) {
        Err(RunError::Corrupted {
            thread: Some(t),
            chunk: Some(5),
            committed_iters,
        }) => {
            // chunk 5 of 2 workers ran on thread 1.
            assert_eq!(t, 1, "blame names the executor");
            committed_iters
        }
        other => panic!("expected Corrupted on chunk 5, got {other:?}"),
    };
    drop(faulty);
    // The corrupted chunk rolled back to its own first iteration.
    assert_eq!(committed, 5 * CHUNK_ITERS);
    let k = prog.kernel(0);
    // SAFETY: the run drained before returning; single-threaded resume.
    unsafe { k.execute(committed..k.iters()) };
    assert_eq!(prog.checksum(), expected, "resume from the prefix diverged");
}

/// A repeat offender: two flips on chunks owned by the same worker. The
/// first conviction is a strike; the second quarantines the worker via
/// the roster remap, and the survivors still finish bitwise.
#[test]
fn repeat_corruption_quarantines_the_guilty_worker() {
    let expected = sequential_checksum(Variant::Dense);
    let s = Synth::build(N, Variant::Dense, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    // Chunks 4 and 7 are both owned by thread 1 of 3 (round-robin).
    let plan = FaultPlan::new(CHUNK_ITERS)
        .inject(4, flip_in_footprint())
        .inject(7, flip_in_footprint());
    let faulty = FaultyKernel::new(prog.kernel(0), plan);
    let stats = try_run_governed(
        &faulty,
        &cfg(3, Tolerance::retrying(WATCHDOG), VerifyPolicy::EveryChunk),
    )
    .expect("survivors finish after the quarantine");
    drop(faulty);
    assert_eq!(stats.quarantined, 1, "faults: {:?}", stats.faults);
    assert!(stats.faults.iter().any(|f| matches!(
        f,
        FaultEvent::WorkerQuarantined {
            thread: 1,
            chunk: 7,
        }
    )));
    assert!(stats.faults.iter().any(|f| matches!(
        f,
        FaultEvent::WorkerBlamed {
            thread: 1,
            strikes: 2,
            ..
        }
    )));
    assert_eq!(prog.checksum(), expected);
}

/// Sampled(k) replays chunk indices divisible by k: a flip on a sampled
/// chunk is caught and repaired exactly like EveryChunk.
#[test]
fn sampled_policy_catches_flips_on_sampled_chunks() {
    let expected = sequential_checksum(Variant::Sparse);
    let s = Synth::build(N, Variant::Sparse, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let plan = FaultPlan::new(CHUNK_ITERS).inject(6, flip_in_footprint());
    let faulty = FaultyKernel::new(prog.kernel(0), plan);
    let stats = try_run_governed(
        &faulty,
        &cfg(2, Tolerance::retrying(WATCHDOG), VerifyPolicy::Sampled(3)),
    )
    .expect("chunk 6 is sampled under Sampled(3)");
    drop(faulty);
    assert!(stats.faults.iter().any(|f| matches!(
        f,
        FaultEvent::CorruptionDetected {
            chunk: 6,
            repaired: true,
            ..
        }
    )));
    assert_eq!(prog.checksum(), expected);
}

/// A flip *outside* every write footprint of the loop is invisible to
/// per-chunk verification by construction — the arena scrubber brackets
/// it: baseline digest before the spawn, drift detected after the join,
/// typed error with unassignable blame and a fully-committed prefix.
#[test]
fn out_of_footprint_flip_is_caught_by_the_arena_scrubber() {
    let s = Synth::build(N, Variant::Sparse, 99);
    let prog = SpecProgram::new(s.workload, s.arena).unwrap();
    {
        // The scenario only makes sense if this workload *has* bytes
        // outside its write footprints for the flip to land on.
        let k = prog.kernel(0);
        // SAFETY: single-threaded probe on a throwaway byte.
        assert!(
            unsafe { k.corrupt_byte(0..k.iters(), 0, 0, false) },
            "workload has no out-of-footprint bytes; pick another variant"
        );
    }
    let iters = prog.workload().loops[0].iters;
    let plan = FaultPlan::new(CHUNK_ITERS).inject(
        3,
        FaultKind::SilentBitFlip {
            after_iters: CHUNK_ITERS,
            offset: 12_345,
            xor: 0x01,
            in_footprint: false,
        },
    );
    let faulty = FaultyKernel::new(prog.kernel(0), plan);
    match try_run_governed(
        &faulty,
        &cfg(2, Tolerance::retrying(WATCHDOG), VerifyPolicy::EveryChunk),
    ) {
        Err(RunError::Corrupted {
            thread: None,
            chunk: None,
            committed_iters,
        }) => {
            // Every chunk committed clean; the drift lies outside them.
            assert_eq!(committed_iters, iters);
        }
        other => panic!("expected scrubber-detected Corrupted, got {other:?}"),
    }
}

/// The threat model, demonstrated: with `VerifyPolicy::Off` the same
/// flip sails through — the run reports success and the result silently
/// diverges. This is exactly what the armed policies exist to prevent.
#[test]
fn verify_off_misses_the_flip_and_silently_diverges() {
    let expected = sequential_checksum(Variant::Dense);
    let s = Synth::build(N, Variant::Dense, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let last_chunk = prog.workload().loops[0].iters.div_ceil(CHUNK_ITERS) - 1;
    // Last chunk: nothing downstream can legitimately overwrite the flip.
    let plan = FaultPlan::new(CHUNK_ITERS).inject(last_chunk, flip_in_footprint());
    let faulty = FaultyKernel::new(prog.kernel(0), plan);
    let stats = try_run_governed(&faulty, &cfg(2, Tolerance::default(), VerifyPolicy::Off))
        .expect("nothing detects the flip");
    drop(faulty);
    assert!(stats.faults.is_empty());
    assert_eq!(stats.scrubs, 0, "scrubber must be off when verify is Off");
    assert_ne!(
        prog.checksum(),
        expected,
        "the injected flip should have corrupted the result"
    );
}

/// Corruption mid-sequence: the faulted loop repairs in place and every
/// loop still converges bitwise; the per-loop stats pin the detection to
/// the right loop.
#[test]
fn sequence_repairs_corruption_and_stays_bitwise() {
    let build = || {
        let p = Parmvr::build(ParmvrParams {
            scale: 0.005,
            seed: 31,
        });
        SpecProgram::new(p.workload, p.arena).unwrap()
    };
    let expected = {
        let mut prog = build();
        for i in 0..prog.num_loops() {
            let k = prog.kernel(i);
            // SAFETY: single-threaded.
            unsafe { k.execute(0..k.iters()) };
        }
        prog.checksum()
    };
    let mut prog = build();
    let faulted_loop = 5;
    let kernels: Vec<_> = (0..prog.num_loops())
        .map(|i| {
            let mut plan = FaultPlan::new(CHUNK_ITERS);
            if i == faulted_loop {
                plan = plan.inject(2, flip_in_footprint());
            }
            FaultyKernel::new(prog.kernel(i), plan)
        })
        .collect();
    let stats = try_run_governed_sequence(
        &kernels,
        &cfg(3, Tolerance::retrying(WATCHDOG), VerifyPolicy::EveryChunk),
    )
    .expect("the sequence repairs and continues");
    drop(kernels);
    for (l, s) in stats.iter().enumerate() {
        assert!(!s.degraded, "loop {l} degraded");
        let detected = s
            .faults
            .iter()
            .any(|f| matches!(f, FaultEvent::CorruptionDetected { .. }));
        assert_eq!(
            detected,
            l == faulted_loop,
            "loop {l}: detection in the wrong loop: {:?}",
            s.faults
        );
        // The end-of-loop barrier leader scrubs between loops.
        assert!(s.scrubs > 0, "loop {l}: no arena scrub ran");
    }
    assert_eq!(prog.checksum(), expected, "sequence diverged after repair");
}

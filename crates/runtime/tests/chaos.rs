//! Randomized chaos tests of the fault-tolerant runtime: inject panics
//! (fail-stop and mid-mutation), stalls, and slowdowns at random
//! (thread, chunk) points across thread counts 1–4 and require that
//! every run terminates and either salvages a bitwise
//! sequential-identical result or returns a typed [`RunError`] — never a
//! hang, never a silently wrong answer. Mid-mutation panics leave
//! partial writes behind, so their recovery rests entirely on the
//! analyzer-bounded undo journal (the synth kernels are journalable).

use std::time::Duration;

use cascade_rt::{
    try_run_cascaded, try_run_cascaded_sequence, FaultEvent, FaultKind, FaultPlan, FaultyKernel,
    RealKernel, RtPolicy, RunError, RunnerConfig, SpecProgram, Tolerance,
};
use cascade_synth::{Synth, Variant};
use cascade_wave5::{Parmvr, ParmvrParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 1 << 12;
const CHUNK_ITERS: u64 = 64;
const WATCHDOG: Duration = Duration::from_millis(25);
const STALL: Duration = Duration::from_millis(80);

fn sequential_checksum(variant: Variant) -> u64 {
    let s = Synth::build(N, variant, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    // SAFETY: single-threaded.
    unsafe { k.execute(0..k.iters()) };
    prog.checksum()
}

fn random_plan(rng: &mut StdRng, num_chunks: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(CHUNK_ITERS);
    for _ in 0..rng.gen_range(1..=3usize) {
        let chunk = rng.gen_range(0..num_chunks);
        let kind = match rng.gen_range(0..4u32) {
            0 => FaultKind::Panic,
            1 => FaultKind::Stall(STALL),
            2 => FaultKind::Slowdown(Duration::from_millis(rng.gen_range(1..4u64))),
            // Partial writes land before the panic: recovery relies on
            // the journaled rollback.
            _ => FaultKind::PanicMidMutation {
                after_iters: rng.gen_range(1..CHUNK_ITERS),
            },
        };
        plan = plan.inject(chunk, kind);
    }
    plan
}

/// The acceptance matrix: ≥20 randomized plans mixing panic / stall /
/// slowdown over 1–4 threads. Every plan must terminate and either match
/// the sequential checksum bitwise (salvaged or clean) or produce a typed
/// error — and a typed error is only acceptable when salvage could not
/// legitimately run (it can here, so errors are confined to plans whose
/// salvage itself trips a not-yet-fired fault).
#[test]
fn randomized_fault_matrix_always_terminates_and_never_corrupts() {
    let mut rng = StdRng::seed_from_u64(0xFA117);
    let mut salvaged = 0u32;
    let mut clean = 0u32;
    let mut typed_errors = 0u32;
    for case in 0..24u64 {
        let variant = if case % 2 == 0 {
            Variant::Dense
        } else {
            Variant::Sparse
        };
        let expected = sequential_checksum(variant);
        let nthreads = rng.gen_range(1..=4usize);
        let policy = match rng.gen_range(0..3u32) {
            0 => RtPolicy::None,
            1 => RtPolicy::Prefetch,
            _ => RtPolicy::Restructure,
        };
        let s = Synth::build(N, variant, 99);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let num_chunks = prog.workload().loops[0].iters.div_ceil(CHUNK_ITERS);
        let plan = random_plan(&mut rng, num_chunks);
        let cfg = RunnerConfig {
            nthreads,
            iters_per_chunk: CHUNK_ITERS,
            policy,
            poll_batch: 8,
        };
        let faulty = FaultyKernel::new(prog.kernel(0), plan.clone());
        let result = try_run_cascaded(&faulty, &cfg, &Tolerance::resilient(WATCHDOG));
        drop(faulty);
        match result {
            Ok(stats) => {
                assert_eq!(
                    prog.checksum(),
                    expected,
                    "case {case}: threads {nthreads}, plan {plan:?} — \
                     run reported success but the result diverged"
                );
                if stats.degraded {
                    salvaged += 1;
                } else {
                    clean += 1;
                }
            }
            Err(RunError::WorkerPanicked { .. } | RunError::Stalled { .. }) => {
                // Typed, diagnosed failure — acceptable, never silent.
                typed_errors += 1;
            }
            Err(other) => panic!("case {case}: unexpected error {other}"),
        }
    }
    // The matrix must actually exercise the recovery machinery.
    assert!(salvaged >= 5, "only {salvaged} salvaged runs of 24");
    assert!(salvaged + clean + typed_errors == 24);
}

/// The retry-tolerance acceptance matrix: the same randomized plan shapes
/// under [`Tolerance::retrying`]. Every injected plan must either complete
/// bitwise-identical *without* `degraded = true` (recovered in-cascade) or
/// fall through to salvage with the fall-through recorded as a
/// [`FaultEvent::RetryAbandoned`] — zero silent corruptions, zero
/// unexplained degradations.
#[test]
fn randomized_retry_matrix_recovers_or_records_fallthrough() {
    let mut rng = StdRng::seed_from_u64(0x2E7121);
    let mut recovered = 0u32;
    let mut fell_through = 0u32;
    let mut clean = 0u32;
    let mut typed_errors = 0u32;
    for case in 0..24u64 {
        let variant = if case % 2 == 0 {
            Variant::Dense
        } else {
            Variant::Sparse
        };
        let expected = sequential_checksum(variant);
        let nthreads = rng.gen_range(1..=4usize);
        let policy = match rng.gen_range(0..3u32) {
            0 => RtPolicy::None,
            1 => RtPolicy::Prefetch,
            _ => RtPolicy::Restructure,
        };
        let s = Synth::build(N, variant, 99);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let num_chunks = prog.workload().loops[0].iters.div_ceil(CHUNK_ITERS);
        let plan = random_plan(&mut rng, num_chunks);
        let cfg = RunnerConfig {
            nthreads,
            iters_per_chunk: CHUNK_ITERS,
            policy,
            poll_batch: 8,
        };
        let faulty = FaultyKernel::new(prog.kernel(0), plan.clone());
        let result = try_run_cascaded(&faulty, &cfg, &Tolerance::retrying(WATCHDOG));
        drop(faulty);
        match result {
            Ok(stats) => {
                assert_eq!(
                    prog.checksum(),
                    expected,
                    "case {case}: threads {nthreads}, plan {plan:?} — \
                     run reported success but the result diverged"
                );
                if stats.degraded {
                    // Fall-through to salvage must be explained: the
                    // ladder records why the retry path gave up.
                    assert!(
                        stats
                            .faults
                            .iter()
                            .any(|f| matches!(f, FaultEvent::RetryAbandoned { .. })),
                        "case {case}: threads {nthreads}, plan {plan:?} — \
                         degraded without a RetryAbandoned event: {:?}",
                        stats.faults
                    );
                    fell_through += 1;
                } else if stats.retries > 0 {
                    recovered += 1;
                } else {
                    clean += 1;
                }
            }
            Err(RunError::WorkerPanicked { .. } | RunError::Stalled { .. }) => {
                typed_errors += 1;
            }
            Err(other) => panic!("case {case}: unexpected error {other}"),
        }
    }
    // The matrix must exercise both rungs: in-cascade recovery and the
    // recorded fall-through to salvage. (Exact counts race on stall
    // timing; the seed yields roughly 4 recovered / 5 fell-through.)
    assert!(
        recovered >= 2,
        "only {recovered} in-cascade recoveries of 24"
    );
    assert!(fell_through >= 2, "only {fell_through} fall-throughs of 24");
    assert_eq!(recovered + fell_through + clean + typed_errors, 24);
}

/// A panic-only plan under retry tolerance with ≥2 threads recovers fully
/// in-cascade: no degraded flag, the retry and quarantine are visible in
/// the stats, and the result is bitwise sequential-identical.
#[test]
fn panic_only_plans_recover_in_cascade_across_thread_counts() {
    for nthreads in 2..=4usize {
        let expected = sequential_checksum(Variant::Dense);
        let s = Synth::build(N, Variant::Dense, 99);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let num_chunks = prog.workload().loops[0].iters.div_ceil(CHUNK_ITERS);
        let plan = FaultPlan::new(CHUNK_ITERS).inject(num_chunks / 2, FaultKind::Panic);
        let cfg = RunnerConfig {
            nthreads,
            iters_per_chunk: CHUNK_ITERS,
            policy: RtPolicy::None,
            poll_batch: 8,
        };
        let faulty = FaultyKernel::new(prog.kernel(0), plan);
        let stats = try_run_cascaded(&faulty, &cfg, &Tolerance::retrying(WATCHDOG))
            .expect("retry tolerance must recover a fail-stop panic");
        drop(faulty);
        assert!(
            !stats.degraded,
            "threads {nthreads}: fell through to salvage"
        );
        assert_eq!(stats.retries, 1, "threads {nthreads}");
        assert_eq!(stats.quarantined, 1, "threads {nthreads}");
        assert!(stats
            .faults
            .iter()
            .any(|f| matches!(f, FaultEvent::ChunkRetried { .. })));
        assert_eq!(prog.checksum(), expected, "threads {nthreads}: diverged");
    }
}

/// Fault targeted at a specific (thread, chunk) point via round-robin
/// ownership: the reported error names that thread.
#[test]
fn typed_error_names_the_injected_thread_and_chunk() {
    let nthreads = 3u64;
    let target_chunk = FaultPlan::chunk_owned_by(2, 4, nthreads); // thread 2, 5th turn
    let s = Synth::build(N, Variant::Dense, 99);
    let prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let plan = FaultPlan::new(CHUNK_ITERS).inject(target_chunk, FaultKind::Panic);
    let faulty = FaultyKernel::new(prog.kernel(0), plan);
    let cfg = RunnerConfig {
        nthreads: nthreads as usize,
        iters_per_chunk: CHUNK_ITERS,
        policy: RtPolicy::None,
        poll_batch: 8,
    };
    match try_run_cascaded(&faulty, &cfg, &Tolerance::default()) {
        Err(RunError::WorkerPanicked { thread: 2, chunk }) => assert_eq!(chunk, target_chunk),
        other => panic!("expected WorkerPanicked on thread 2, got {other:?}"),
    }
}

/// A faulted loop mid-sequence: the persistent pool drains instead of
/// hanging, and salvage finishes the faulted loop plus every later loop
/// for a bitwise sequential-identical final state.
#[test]
fn sequence_salvages_across_loops_bitwise() {
    let build = || {
        let p = Parmvr::build(ParmvrParams {
            scale: 0.005,
            seed: 31,
        });
        SpecProgram::new(p.workload, p.arena).unwrap()
    };
    let expected = {
        let mut prog = build();
        for i in 0..prog.num_loops() {
            let k = prog.kernel(i);
            // SAFETY: single-threaded.
            unsafe { k.execute(0..k.iters()) };
        }
        prog.checksum()
    };
    let mut prog = build();
    let faulted_loop = 6;
    let kernels: Vec<_> = (0..prog.num_loops())
        .map(|i| {
            let mut plan = FaultPlan::new(CHUNK_ITERS);
            if i == faulted_loop {
                plan = plan.inject(3, FaultKind::Panic);
            }
            FaultyKernel::new(prog.kernel(i), plan)
        })
        .collect();
    let cfg = RunnerConfig {
        nthreads: 3,
        iters_per_chunk: CHUNK_ITERS,
        policy: RtPolicy::Restructure,
        poll_batch: 8,
    };
    let stats = try_run_cascaded_sequence(&kernels, &cfg, &Tolerance::resilient(WATCHDOG))
        .expect("sequence salvage must recover");
    drop(kernels);
    assert_eq!(stats.len(), 15);
    for (l, s) in stats.iter().enumerate() {
        assert_eq!(s.degraded, l >= faulted_loop, "loop {l}: degraded flag");
    }
    assert!(stats[faulted_loop]
        .faults
        .iter()
        .any(|f| matches!(f, cascade_rt::FaultEvent::WorkerPanicked { chunk: 3, .. })));
    assert_eq!(prog.checksum(), expected, "salvaged sequence diverged");
}

/// Stalls mid-sequence drain the pool via the watchdog and still converge
/// to the sequential result.
#[test]
fn sequence_stall_is_salvaged_bitwise() {
    let build = || {
        let p = Parmvr::build(ParmvrParams {
            scale: 0.005,
            seed: 47,
        });
        SpecProgram::new(p.workload, p.arena).unwrap()
    };
    let expected = {
        let mut prog = build();
        for i in 0..prog.num_loops() {
            let k = prog.kernel(i);
            // SAFETY: single-threaded.
            unsafe { k.execute(0..k.iters()) };
        }
        prog.checksum()
    };
    let mut prog = build();
    let kernels: Vec<_> = (0..prog.num_loops())
        .map(|i| {
            let mut plan = FaultPlan::new(CHUNK_ITERS);
            if i == 2 {
                plan = plan.inject(1, FaultKind::Stall(STALL));
            }
            FaultyKernel::new(prog.kernel(i), plan)
        })
        .collect();
    let cfg = RunnerConfig {
        nthreads: 2,
        iters_per_chunk: CHUNK_ITERS,
        policy: RtPolicy::None,
        poll_batch: 8,
    };
    let stats = try_run_cascaded_sequence(&kernels, &cfg, &Tolerance::resilient(WATCHDOG))
        .expect("stalled sequence must salvage");
    drop(kernels);
    assert!(stats[2].degraded);
    assert_eq!(prog.checksum(), expected);
}

//! Fission plans under the *real* interpreter: materialize a
//! [`TransformPlan`]'s partition as standalone [`LoopSpec`]s, execute the
//! sub-loops in plan order on the shared arena, and demand a
//! bitwise-identical checksum to the unfissioned sequential run. This
//! closes the loop from the static legality analysis (dependence edges,
//! SCC condensation) through the dynamic replay model down to actual
//! loads and stores — and proves the negative too: executing the
//! sub-loops in an order `check_partition` rejects really does corrupt
//! the result.

use cascade_analyze::plan::{plan_loop, Schedule};
use cascade_rt::{fission_specs, RealKernel, SpecProgram};
use cascade_trace::{
    AddressSpace, Arena, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};

/// Run the fissioned sub-loops sequentially in `order` on `arena` and
/// return the final checksum.
fn run_fissioned(w: &Workload, arena: Arena, specs: &[LoopSpec], order: &[usize]) -> u64 {
    let fw = Workload {
        space: w.space.clone(),
        index: w.index.clone(),
        loops: specs.to_vec(),
    };
    let mut prog = SpecProgram::new(fw, arena).expect("fission sub-loops must be admitted");
    for &g in order {
        let k = prog.kernel(g);
        // SAFETY: single-threaded.
        unsafe { k.execute(0..k.iters()) };
    }
    prog.checksum()
}

/// Checksum of the unfissioned sequential run.
fn sequential(w: &Workload, arena: Arena) -> u64 {
    let mut prog = SpecProgram::new(w.clone(), arena).unwrap();
    let k = prog.kernel(0);
    // SAFETY: single-threaded.
    unsafe { k.execute(0..k.iters()) };
    prog.checksum()
}

#[test]
fn fused_stream_fission_executes_bitwise() {
    let k = cascade_kernels::fused_stream(4096, 11);
    let w = &k.workload;
    let plan = plan_loop(w, &w.loops[0]);
    assert!(plan.modes.fissionable, "fused_stream must fission");
    assert_eq!(plan.partition.len(), 2);
    assert_eq!(plan.partition[0].schedule, Schedule::Sequential);
    assert_eq!(plan.partition[1].schedule, Schedule::Parallel);

    let specs = fission_specs(&w.loops[0], &plan);
    let expected = sequential(w, k.arena.clone());
    let got = run_fissioned(w, k.arena.clone(), &specs, &[0, 1]);
    assert_eq!(
        got, expected,
        "legal fission order diverged from sequential"
    );
}

#[test]
fn swapped_fission_order_corrupts_the_result() {
    // Running the consumer sub-loop before the recurrence reads stale b
    // values: the static check rejects the order, and the interpreter
    // confirms the rejection is not conservative.
    let k = cascade_kernels::fused_stream(4096, 11);
    let w = &k.workload;
    let plan = plan_loop(w, &w.loops[0]);
    let swapped = vec![
        plan.partition[1].statements.clone(),
        plan.partition[0].statements.clone(),
    ];
    assert!(
        plan.check_partition(&swapped).is_err(),
        "the swapped order must be statically rejected"
    );

    let specs = fission_specs(&w.loops[0], &plan);
    let expected = sequential(w, k.arena.clone());
    let got = run_fissioned(w, k.arena.clone(), &specs, &[1, 0]);
    assert_ne!(
        got, expected,
        "the statically rejected order must actually diverge"
    );
}

/// A synthetic three-writer loop: `a(i+1) = f(a(i))` (a carried
/// recurrence) plus two independent consumers `x(i)` and `y(i)` of the
/// shared read set. The plan fissions into three sub-loops —
/// [recurrence: Sequential, x: Parallel, y: Parallel].
fn three_writer_workload(n: u64) -> (Workload, Arena) {
    let mut space = AddressSpace::new();
    let a = space.alloc("a", 8, n + 1);
    let x = space.alloc("x", 8, n);
    let y = space.alloc("y", 8, n);
    let spec = LoopSpec {
        name: "three-writer".into(),
        iters: n,
        refs: vec![
            StreamRef {
                name: "a(i)",
                array: a,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: false,
            },
            StreamRef {
                name: "a(i+1)",
                array: a,
                pattern: Pattern::Affine { base: 1, stride: 1 },
                mode: Mode::Write,
                bytes: 8,
                hoistable: false,
            },
            StreamRef {
                name: "x(i)",
                array: x,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Write,
                bytes: 8,
                hoistable: false,
            },
            StreamRef {
                name: "y(i)",
                array: y,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Modify,
                bytes: 8,
                hoistable: false,
            },
        ],
        compute: 4.0,
        hoistable_compute: 0.0,
        hoist_result_bytes: 0,
    };
    let w = Workload {
        space,
        index: IndexStore::new(),
        loops: vec![spec],
    };
    let mut arena = Arena::new(&w.space);
    for i in 0..=n {
        arena.set_f64(&w.space, a, i, (i % 17) as f64 * 0.375 + 0.5);
    }
    for i in 0..n {
        arena.set_f64(&w.space, y, i, (i % 5) as f64 - 1.75);
    }
    (w, arena)
}

#[test]
fn synthetic_three_way_fission_executes_bitwise() {
    let (w, arena) = three_writer_workload(2048);
    let plan = plan_loop(&w, &w.loops[0]);
    assert_eq!(plan.partition.len(), 3, "plan: {plan:?}");
    assert_eq!(plan.partition[0].schedule, Schedule::Sequential);
    assert_eq!(plan.partition[1].schedule, Schedule::Parallel);
    assert_eq!(plan.partition[2].schedule, Schedule::Parallel);

    let specs = fission_specs(&w.loops[0], &plan);
    let expected = sequential(&w, arena.clone());
    // Plan order is bitwise; so is swapping the two *independent*
    // consumers (no cross edge between them)...
    for order in [[0, 1, 2], [0, 2, 1]] {
        let got = run_fissioned(&w, arena.clone(), &specs, &order);
        assert_eq!(got, expected, "legal order {order:?} diverged");
    }
    assert!(plan
        .check_partition(&[
            plan.partition[0].statements.clone(),
            plan.partition[2].statements.clone(),
            plan.partition[1].statements.clone(),
        ])
        .is_ok());
    // ...but hoisting a consumer above the recurrence is rejected and
    // really diverges.
    for order in [[1, 0, 2], [2, 1, 0]] {
        let got = run_fissioned(&w, arena.clone(), &specs, &order);
        assert_ne!(got, expected, "illegal order {order:?} failed to diverge");
    }
}

#[test]
fn disjoint_writers_commute() {
    // Strip the recurrence: two writers into disjoint arrays plus a
    // loop-invariant read set form two Parallel sub-loops with no cross
    // edge — every execution order is bitwise-identical.
    let (mut w, _) = three_writer_workload(1024);
    w.loops[0].refs.remove(1); // drop the a(i+1) recurrence writer
    let arena = {
        let mut a = Arena::new(&w.space);
        a.install_indices(&w.space, &w.index);
        a
    };
    let plan = plan_loop(&w, &w.loops[0]);
    assert_eq!(plan.partition.len(), 2, "plan: {plan:?}");
    assert!(plan.modes.parallel, "no carried edge: whole loop is DOALL");

    let specs = fission_specs(&w.loops[0], &plan);
    let expected = sequential(&w, arena.clone());
    for order in [[0, 1], [1, 0]] {
        let got = run_fissioned(&w, arena.clone(), &specs, &order);
        assert_eq!(got, expected, "independent sub-loops must commute");
    }
    assert!(plan
        .check_partition(&[
            plan.partition[1].statements.clone(),
            plan.partition[0].statements.clone(),
        ])
        .is_ok());
}

//! Governance soak: a timed storm of concurrent cancellation, deadlines,
//! memory budgets, and injected faults against the fault-tolerant
//! runtime. Each iteration races a canceller thread (or an armed
//! deadline, or a tight memory budget) against a randomized fault plan
//! across all three tolerances, and requires the clean-state guarantee
//! to hold every time: a successful run is bitwise sequential-identical,
//! a governed abort reports the exact committed prefix and resuming
//! sequentially from it is bitwise identical, and every other outcome is
//! a typed error — never a hang, never silent corruption.
//!
//! The storm runs for `CASCADE_SOAK_SECS` seconds (default 2 — a smoke
//! run; CI's soak-smoke job raises it) with a hard per-iteration shape
//! that keeps a single pass well under a second.

use std::time::{Duration, Instant};

use cascade_rt::{
    try_run_governed, CancelToken, FaultKind, FaultPlan, FaultyKernel, MemBudget, RealKernel,
    RtPolicy, RunConfig, RunError, RunnerConfig, SpecProgram, Tolerance,
};
use cascade_synth::{Synth, Variant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 1 << 12;
const CHUNK_ITERS: u64 = 64;
const WATCHDOG: Duration = Duration::from_millis(25);
const STALL: Duration = Duration::from_millis(40);

fn sequential_checksum(variant: Variant) -> u64 {
    let s = Synth::build(N, variant, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    // SAFETY: single-threaded.
    unsafe { k.execute(0..k.iters()) };
    prog.checksum()
}

fn random_plan(rng: &mut StdRng, num_chunks: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(CHUNK_ITERS);
    // Roughly half the iterations run fault-free so the storm also
    // samples pure-governance schedules.
    for _ in 0..rng.gen_range(0..=2usize) {
        let chunk = rng.gen_range(0..num_chunks);
        let kind = match rng.gen_range(0..4u32) {
            0 => FaultKind::Panic,
            1 => FaultKind::Stall(STALL),
            2 => FaultKind::Slowdown(Duration::from_millis(rng.gen_range(1..3u64))),
            _ => FaultKind::PanicMidMutation {
                after_iters: rng.gen_range(1..CHUNK_ITERS),
            },
        };
        plan = plan.inject(chunk, kind);
    }
    plan
}

fn tolerance_for(case: u64) -> Tolerance {
    match case % 3 {
        0 => Tolerance {
            watchdog: Some(WATCHDOG),
            retry: None,
            salvage: false,
        },
        1 => Tolerance::retrying(WATCHDOG),
        _ => Tolerance::resilient(WATCHDOG),
    }
}

/// The storm loop. Iterations are bounded by wall clock, not count, so
/// the harness scales from a 2 s smoke run to a CI soak without edits.
#[test]
fn governance_storm_never_corrupts_and_always_resumes() {
    let secs: u64 = std::env::var("CASCADE_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut rng = StdRng::seed_from_u64(0x50AC);
    let mut iterations = 0u64;
    let mut governed_aborts = 0u64;
    let mut completions = 0u64;
    let mut typed = 0u64;
    while Instant::now() < deadline {
        let case = iterations;
        let variant = if case.is_multiple_of(2) {
            Variant::Dense
        } else {
            Variant::Sparse
        };
        let expected = sequential_checksum(variant);
        let nthreads = rng.gen_range(1..=4usize);
        let policy = match rng.gen_range(0..3u32) {
            0 => RtPolicy::None,
            1 => RtPolicy::Prefetch,
            _ => RtPolicy::Restructure,
        };
        let s = Synth::build(N, variant, 99);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let num_chunks = prog.workload().loops[0].iters.div_ceil(CHUNK_ITERS);
        let plan = random_plan(&mut rng, num_chunks);
        let cfg = RunnerConfig {
            nthreads,
            iters_per_chunk: CHUNK_ITERS,
            policy,
            poll_batch: 8,
        };
        let token = CancelToken::new();
        // Rotate the governance pressure: external canceller thread,
        // armed deadline, or a tight memory budget.
        let (run_deadline, budget, canceller) = match case % 3 {
            0 => {
                let token = token.clone();
                let delay = Duration::from_micros(rng.gen_range(0..5_000u64));
                let h = std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    token.cancel("soak canceller");
                });
                (None, MemBudget::unlimited(), Some(h))
            }
            1 => {
                let d = Duration::from_micros(rng.gen_range(200..4_000u64));
                (Some(d), MemBudget::unlimited(), None)
            }
            _ => {
                let limit = rng.gen_range(256..32_768u64);
                (None, MemBudget::limited(limit), None)
            }
        };
        let mut tolerance = tolerance_for(case);
        if let (Some(d), Some(w)) = (run_deadline, tolerance.watchdog) {
            // A watchdog longer than the deadline is a config error.
            tolerance.watchdog = Some(w.min(d));
        }
        let run_cfg = RunConfig {
            runner: cfg,
            tolerance,
            deadline: run_deadline,
            budget,
            cancel: token,
            ..RunConfig::default()
        };
        let faulty = FaultyKernel::new(prog.kernel(0), plan.clone());
        let result = try_run_governed(&faulty, &run_cfg);
        drop(faulty);
        if let Some(h) = canceller {
            let _ = h.join();
        }
        match result {
            Ok(_) => {
                assert_eq!(
                    prog.checksum(),
                    expected,
                    "case {case}: threads {nthreads}, plan {plan:?} — \
                     run reported success but the result diverged"
                );
                completions += 1;
            }
            Err(
                RunError::Cancelled {
                    committed_iters, ..
                }
                | RunError::DeadlineExceeded {
                    committed_iters, ..
                }
                | RunError::BudgetExceeded {
                    committed_iters, ..
                },
            ) => {
                // The clean-state guarantee: finish sequentially from the
                // reported prefix, bitwise.
                {
                    let k = prog.kernel(0);
                    // SAFETY: every worker drained before the error returned.
                    unsafe { k.execute(committed_iters..k.iters()) };
                }
                assert_eq!(
                    prog.checksum(),
                    expected,
                    "case {case}: threads {nthreads}, plan {plan:?} — \
                     resume from iter {committed_iters} diverged"
                );
                governed_aborts += 1;
            }
            Err(RunError::WorkerPanicked { .. } | RunError::Stalled { .. }) => {
                typed += 1;
            }
            Err(other) => panic!("case {case}: unexpected error {other}"),
        }
        iterations += 1;
    }
    assert!(iterations > 0, "the storm never ran");
    // Sanity on coverage, not exact counts (timing-dependent): the storm
    // must see at least one of each broad outcome class over a full run.
    eprintln!(
        "soak: {iterations} iterations — {completions} completed, \
         {governed_aborts} governed aborts, {typed} typed errors"
    );
}

//! Governance soak: a timed storm of concurrent cancellation, deadlines,
//! memory budgets, and injected faults against the fault-tolerant
//! runtime. Each iteration races a canceller thread (or an armed
//! deadline, or a tight memory budget) against a randomized fault plan
//! across all three tolerances, and requires the clean-state guarantee
//! to hold every time: a successful run is bitwise sequential-identical,
//! a governed abort reports the exact committed prefix and resuming
//! sequentially from it is bitwise identical, and every other outcome is
//! a typed error — never a hang, never silent corruption.
//!
//! The storm runs for `CASCADE_SOAK_SECS` seconds (default 2 — a smoke
//! run; CI's soak-smoke job raises it) with a hard per-iteration shape
//! that keeps a single pass well under a second.

use std::time::{Duration, Instant};

use cascade_rt::{
    ckpt, try_run_governed, CancelToken, CkptMeta, CkptPolicy, CkptSink, CkptWriter, FaultEvent,
    FaultKind, FaultPlan, FaultyKernel, MemBudget, RealKernel, RtPolicy, RunConfig, RunError,
    RunnerConfig, SpecProgram, Tolerance, VerifyPolicy,
};
use cascade_synth::{Synth, Variant};
use cascade_trace::to_text;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 1 << 12;
const CHUNK_ITERS: u64 = 64;
const WATCHDOG: Duration = Duration::from_millis(25);
const STALL: Duration = Duration::from_millis(40);

fn sequential_checksum(variant: Variant) -> u64 {
    let s = Synth::build(N, variant, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    // SAFETY: single-threaded.
    unsafe { k.execute(0..k.iters()) };
    prog.checksum()
}

fn random_plan(rng: &mut StdRng, num_chunks: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(CHUNK_ITERS);
    // Roughly half the iterations run fault-free so the storm also
    // samples pure-governance schedules.
    for _ in 0..rng.gen_range(0..=2usize) {
        let chunk = rng.gen_range(0..num_chunks);
        let kind = match rng.gen_range(0..4u32) {
            0 => FaultKind::Panic,
            1 => FaultKind::Stall(STALL),
            2 => FaultKind::Slowdown(Duration::from_millis(rng.gen_range(1..3u64))),
            _ => FaultKind::PanicMidMutation {
                after_iters: rng.gen_range(1..CHUNK_ITERS),
            },
        };
        plan = plan.inject(chunk, kind);
    }
    plan
}

fn tolerance_for(case: u64) -> Tolerance {
    match case % 3 {
        0 => Tolerance {
            watchdog: Some(WATCHDOG),
            retry: None,
            salvage: false,
        },
        1 => Tolerance::retrying(WATCHDOG),
        _ => Tolerance::resilient(WATCHDOG),
    }
}

/// The storm loop. Iterations are bounded by wall clock, not count, so
/// the harness scales from a 2 s smoke run to a CI soak without edits.
#[test]
fn governance_storm_never_corrupts_and_always_resumes() {
    let secs: u64 = std::env::var("CASCADE_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut rng = StdRng::seed_from_u64(0x50AC);
    let mut iterations = 0u64;
    let mut governed_aborts = 0u64;
    let mut completions = 0u64;
    let mut typed = 0u64;
    while Instant::now() < deadline {
        let case = iterations;
        let variant = if case.is_multiple_of(2) {
            Variant::Dense
        } else {
            Variant::Sparse
        };
        let expected = sequential_checksum(variant);
        let nthreads = rng.gen_range(1..=4usize);
        let policy = match rng.gen_range(0..3u32) {
            0 => RtPolicy::None,
            1 => RtPolicy::Prefetch,
            _ => RtPolicy::Restructure,
        };
        let s = Synth::build(N, variant, 99);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let num_chunks = prog.workload().loops[0].iters.div_ceil(CHUNK_ITERS);
        let plan = random_plan(&mut rng, num_chunks);
        let cfg = RunnerConfig {
            nthreads,
            iters_per_chunk: CHUNK_ITERS,
            policy,
            poll_batch: 8,
        };
        let token = CancelToken::new();
        // Rotate the governance pressure: external canceller thread,
        // armed deadline, or a tight memory budget.
        let (run_deadline, budget, canceller) = match case % 3 {
            0 => {
                let token = token.clone();
                let delay = Duration::from_micros(rng.gen_range(0..5_000u64));
                let h = std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    token.cancel("soak canceller");
                });
                (None, MemBudget::unlimited(), Some(h))
            }
            1 => {
                let d = Duration::from_micros(rng.gen_range(200..4_000u64));
                (Some(d), MemBudget::unlimited(), None)
            }
            _ => {
                let limit = rng.gen_range(256..32_768u64);
                (None, MemBudget::limited(limit), None)
            }
        };
        let mut tolerance = tolerance_for(case);
        if let (Some(d), Some(w)) = (run_deadline, tolerance.watchdog) {
            // A watchdog longer than the deadline is a config error.
            tolerance.watchdog = Some(w.min(d));
        }
        let run_cfg = RunConfig {
            runner: cfg,
            tolerance,
            deadline: run_deadline,
            budget,
            cancel: token,
            ..RunConfig::default()
        };
        let faulty = FaultyKernel::new(prog.kernel(0), plan.clone());
        let result = try_run_governed(&faulty, &run_cfg);
        drop(faulty);
        if let Some(h) = canceller {
            let _ = h.join();
        }
        match result {
            Ok(_) => {
                assert_eq!(
                    prog.checksum(),
                    expected,
                    "case {case}: threads {nthreads}, plan {plan:?} — \
                     run reported success but the result diverged"
                );
                completions += 1;
            }
            Err(
                RunError::Cancelled {
                    committed_iters, ..
                }
                | RunError::DeadlineExceeded {
                    committed_iters, ..
                }
                | RunError::BudgetExceeded {
                    committed_iters, ..
                },
            ) => {
                // The clean-state guarantee: finish sequentially from the
                // reported prefix, bitwise.
                {
                    let k = prog.kernel(0);
                    // SAFETY: every worker drained before the error returned.
                    unsafe { k.execute(committed_iters..k.iters()) };
                }
                assert_eq!(
                    prog.checksum(),
                    expected,
                    "case {case}: threads {nthreads}, plan {plan:?} — \
                     resume from iter {committed_iters} diverged"
                );
                governed_aborts += 1;
            }
            Err(RunError::WorkerPanicked { .. } | RunError::Stalled { .. }) => {
                typed += 1;
            }
            Err(other) => panic!("case {case}: unexpected error {other}"),
        }
        iterations += 1;
    }
    assert!(iterations > 0, "the storm never ran");
    // Sanity on coverage, not exact counts (timing-dependent): the storm
    // must see at least one of each broad outcome class over a full run.
    eprintln!(
        "soak: {iterations} iterations — {completions} completed, \
         {governed_aborts} governed aborts, {typed} typed errors"
    );
}

/// The corruption storm: every (tolerance × verify policy) cell of the
/// matrix takes randomized in-footprint bit flips. Replaying policies
/// (`EveryChunk`, `Sampled` on a sampled chunk) must detect every flip
/// online and either repair bitwise or fail with an exact clean resume
/// point; non-replaying policies (`Off`, `Checksum` — the executor
/// digests its own corrupted bytes) must still finish without hangs or
/// spurious errors, documenting exactly where the detection boundary is.
#[test]
fn corruption_storm_detects_iff_the_policy_replays() {
    const SAMPLE_K: u64 = 3;
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let policies = [
        VerifyPolicy::Off,
        VerifyPolicy::Checksum,
        VerifyPolicy::EveryChunk,
        VerifyPolicy::Sampled(SAMPLE_K),
    ];
    for tol_case in 0..3u64 {
        for verify in policies {
            for round in 0..2u64 {
                let case = tol_case * 8 + round;
                let variant = if case.is_multiple_of(2) {
                    Variant::Dense
                } else {
                    Variant::Sparse
                };
                let expected = sequential_checksum(variant);
                let s = Synth::build(N, variant, 99);
                let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
                let iters = prog.workload().loops[0].iters;
                let num_chunks = iters.div_ceil(CHUNK_ITERS);
                // Land the flip on a chunk the policy replays, and on a
                // full chunk so `after_iters` always fires.
                let full_chunks = iters / CHUNK_ITERS;
                let chunk = match verify {
                    VerifyPolicy::Sampled(k) => (rng.gen_range(0..full_chunks.div_ceil(k))) * k,
                    _ => rng.gen_range(0..full_chunks),
                };
                let plan = FaultPlan::new(CHUNK_ITERS).inject(
                    chunk,
                    FaultKind::SilentBitFlip {
                        after_iters: CHUNK_ITERS,
                        offset: rng.gen_range(0..u64::MAX),
                        xor: 1 << rng.gen_range(0..8u32),
                        in_footprint: true,
                    },
                );
                let tolerance = tolerance_for(tol_case);
                let recovers = tolerance.retry.is_some() || tolerance.salvage;
                let nthreads = rng.gen_range(1..=4usize);
                let run_cfg = RunConfig {
                    runner: RunnerConfig {
                        nthreads,
                        iters_per_chunk: CHUNK_ITERS,
                        policy: RtPolicy::None,
                        poll_batch: 8,
                    },
                    tolerance,
                    verify,
                    ..RunConfig::default()
                };
                let ctx = format!(
                    "tol {tol_case}, verify {verify:?}, chunk {chunk}, \
                     threads {nthreads}, {variant:?}"
                );
                let faulty = FaultyKernel::new(prog.kernel(0), plan);
                let result = try_run_governed(&faulty, &run_cfg);
                drop(faulty);
                let replays = matches!(verify, VerifyPolicy::EveryChunk)
                    || matches!(verify, VerifyPolicy::Sampled(k) if chunk.is_multiple_of(k));
                match result {
                    Ok(stats) if replays => {
                        assert!(recovers, "{ctx}: fail-fast must not absorb a flip");
                        assert!(
                            stats.faults.iter().any(|f| matches!(
                                f,
                                FaultEvent::CorruptionDetected { chunk: c, repaired: true, .. }
                                    if *c == chunk
                            )),
                            "{ctx}: flip escaped online detection: {:?}",
                            stats.faults
                        );
                        assert_eq!(prog.checksum(), expected, "{ctx}: repair diverged");
                    }
                    Ok(_) => {
                        // Off / Checksum / unsampled chunk: the flip is
                        // invisible by design; the run must simply finish.
                        // (The end state may legitimately diverge — that
                        // is exactly what armed replaying policies buy.)
                    }
                    Err(RunError::Corrupted {
                        thread,
                        chunk: Some(c),
                        committed_iters,
                    }) if replays && !recovers => {
                        assert_eq!(c, chunk, "{ctx}: blamed the wrong chunk");
                        assert!(thread.is_some(), "{ctx}: in-footprint flip has an executor");
                        assert_eq!(committed_iters, chunk * CHUNK_ITERS, "{ctx}");
                        assert!(c < num_chunks, "{ctx}");
                        {
                            let k = prog.kernel(0);
                            // SAFETY: every worker drained before the
                            // error returned.
                            unsafe { k.execute(committed_iters..k.iters()) };
                        }
                        assert_eq!(prog.checksum(), expected, "{ctx}: resume diverged");
                    }
                    Err(other) => panic!("{ctx}: unexpected outcome {other}"),
                }
            }
        }
    }
}

/// Kill-during-verify, modeled at the durability layer: with an armed
/// `VerifyPolicy`, checkpoint publication is deferred until the chunk's
/// handoff has been verified — so no matter where a kill lands (here: a
/// fail-fast corruption poisons the run between commit and the next
/// handoff), the checkpoint on disk never contains an unverified chunk,
/// and resuming from it converges bitwise.
#[test]
fn kill_during_verify_never_persists_an_unverified_chunk() {
    let expected = sequential_checksum(Variant::Dense);
    let flip = FaultKind::SilentBitFlip {
        after_iters: CHUNK_ITERS,
        offset: 17,
        xor: 0x40,
        in_footprint: true,
    };
    let dir = std::env::temp_dir().join(format!("cascade-soak-verify-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let s = Synth::build(N, Variant::Dense, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let text = to_text(prog.workload());
    let base = prog.arena_mut().bytes().to_vec();
    let iters = prog.workload().loops[0].iters;
    let writer = CkptWriter::create(
        &dir,
        &text,
        CkptMeta {
            loop_index: 0,
            iters,
            iters_per_chunk: CHUNK_ITERS,
        },
        &base,
    )
    .expect("writer creation");
    let sink = CkptSink::new(writer);
    let run_cfg = RunConfig {
        runner: RunnerConfig {
            nthreads: 3,
            iters_per_chunk: CHUNK_ITERS,
            policy: RtPolicy::None,
            poll_batch: 8,
        },
        // Fail-fast: detection poisons the run on the spot — the closest
        // in-process stand-in for dying mid-verification.
        tolerance: Tolerance {
            watchdog: Some(Duration::from_millis(200)),
            retry: None,
            salvage: false,
        },
        verify: VerifyPolicy::EveryChunk,
        ckpt: CkptPolicy::EveryChunks(1),
        ckpt_sink: Some(sink.clone()),
        ..RunConfig::default()
    };
    let plan = FaultPlan::new(CHUNK_ITERS).inject(5, flip);
    let faulty = FaultyKernel::new(prog.kernel(0), plan);
    let committed = match try_run_governed(&faulty, &run_cfg) {
        Err(RunError::Corrupted {
            chunk: Some(5),
            committed_iters,
            ..
        }) => committed_iters,
        other => panic!("expected online corruption detection, got {other:?}"),
    };
    drop(faulty);
    assert_eq!(committed, 5 * CHUNK_ITERS);
    assert_eq!(sink.error(), None, "the sink must not have tripped");

    // The checkpoint on disk stops exactly at the verified prefix: the
    // corrupted chunk was committed and journaled but never published.
    let ck = ckpt::load(&dir).expect("checkpoint must load");
    assert_eq!(
        ck.committed_iters(),
        committed,
        "an unverified chunk leaked into the durable checkpoint"
    );
    let (mut restored, at) = ck.into_program().expect("restore");
    assert_eq!(at, committed);
    {
        let k = restored.kernel(0);
        // SAFETY: single-threaded — the documented sequential resume.
        unsafe { k.execute(at..k.iters()) };
    }
    assert_eq!(
        restored.arena_mut().bytes(),
        {
            let s = Synth::build(N, Variant::Dense, 99);
            let mut reference = SpecProgram::new(s.workload, s.arena).unwrap();
            {
                let k = reference.kernel(0);
                // SAFETY: single-threaded.
                unsafe { k.execute(0..k.iters()) };
            }
            assert_eq!(reference.checksum(), expected);
            reference.arena_mut().bytes().to_vec()
        }
        .as_slice(),
        "resume from the verified checkpoint prefix diverged"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The repaired counterpart: with retry armed the same flip is repaired
/// in place and the run completes; the final (supervisor-published)
/// checkpoint then covers the whole verified run and restores bitwise.
#[test]
fn repaired_run_checkpoints_the_whole_verified_prefix() {
    let expected = sequential_checksum(Variant::Dense);
    let dir =
        std::env::temp_dir().join(format!("cascade-soak-verify-repair-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let s = Synth::build(N, Variant::Dense, 99);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let text = to_text(prog.workload());
    let base = prog.arena_mut().bytes().to_vec();
    let iters = prog.workload().loops[0].iters;
    let writer = CkptWriter::create(
        &dir,
        &text,
        CkptMeta {
            loop_index: 0,
            iters,
            iters_per_chunk: CHUNK_ITERS,
        },
        &base,
    )
    .expect("writer creation");
    let sink = CkptSink::new(writer);
    let run_cfg = RunConfig {
        runner: RunnerConfig {
            nthreads: 3,
            iters_per_chunk: CHUNK_ITERS,
            policy: RtPolicy::None,
            poll_batch: 8,
        },
        tolerance: Tolerance::retrying(Duration::from_millis(200)),
        verify: VerifyPolicy::EveryChunk,
        ckpt: CkptPolicy::EveryChunks(1),
        ckpt_sink: Some(sink.clone()),
        ..RunConfig::default()
    };
    let plan = FaultPlan::new(CHUNK_ITERS).inject(
        5,
        FaultKind::SilentBitFlip {
            after_iters: CHUNK_ITERS,
            offset: 17,
            xor: 0x40,
            in_footprint: true,
        },
    );
    let faulty = FaultyKernel::new(prog.kernel(0), plan);
    let stats = try_run_governed(&faulty, &run_cfg).expect("repairable flip");
    drop(faulty);
    assert!(stats.faults.iter().any(|f| matches!(
        f,
        FaultEvent::CorruptionDetected {
            chunk: 5,
            repaired: true,
            ..
        }
    )));
    assert_eq!(sink.error(), None);
    assert_eq!(sink.committed().1, iters, "final installment missing");
    assert_eq!(prog.checksum(), expected);

    let ck = ckpt::load(&dir).expect("load");
    assert_eq!(ck.committed_iters(), iters);
    let (mut restored, at) = ck.into_program().expect("restore");
    assert_eq!(at, iters);
    assert_eq!(
        restored.arena_mut().bytes(),
        prog.arena_mut().bytes(),
        "checkpointed repaired run diverged from the live repaired run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! Property tests of the token protocol's CAS transitions: arbitrary
//! poison/grant races must never admit two executors for one chunk, never
//! lose a grant, and never let a completed-late worker resurrect a
//! poisoned token. These pin the same invariants the exhaustive model
//! checker (`cascade_rt::check`) proves on the modeled state machine, but
//! against the *real* `Token` under randomized operation sequences and
//! real-thread races.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cascade_rt::{PoisonCause, Token, TokenView, WaitOutcome};
use proptest::prelude::*;

/// One operation of a randomized single-threaded protocol drive. The
/// reference model ([`Model`]) predicts whether each CAS must succeed;
/// divergence between prediction and the real `Token` is a protocol bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// `try_claim(current + delta)` — only `delta == 0` may win.
    Claim { delta: u64 },
    /// `try_advance(current)` — wins iff the current chunk is claimed.
    Advance,
    /// `try_unclaim(current)` — wins iff the current chunk is claimed.
    Unclaim,
    /// `try_release(current + delta, current + delta + 1)` — the legacy
    /// CAS hand-off; only an exact `held` match (`delta == 0` on a
    /// granted token) may win.
    Release { delta: u64 },
    /// `poison_with(..)` — always final.
    Poison,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..3).prop_map(|delta| Op::Claim { delta }),
        Just(Op::Advance),
        Just(Op::Unclaim),
        (0u64..3).prop_map(|delta| Op::Release { delta }),
        Just(Op::Poison),
    ]
}

/// Reference model of the token: what the counter must decode to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Model {
    Granted(u64),
    Claimed(u64),
    Poisoned,
}

impl Model {
    fn view(self) -> TokenView {
        match self {
            Model::Granted(j) => TokenView::Granted(j),
            Model::Claimed(j) => TokenView::Claimed(j),
            Model::Poisoned => TokenView::Poisoned,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Model-based drive: for any operation sequence, every CAS outcome
    /// matches the reference model's prediction and the token never
    /// reaches a state outside {granted, claimed, poisoned} — no grant is
    /// ever lost, no claim duplicated, no poison overwritten.
    #[test]
    fn cas_transitions_match_reference_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let t = Token::new();
        let mut model = Model::Granted(0);
        for (i, op) in ops.iter().enumerate() {
            let position = match model {
                Model::Granted(j) | Model::Claimed(j) => j,
                Model::Poisoned => 0, // arbitrary: every CAS must fail anyway
            };
            match *op {
                Op::Claim { delta } => {
                    let won = t.try_claim(position + delta);
                    let expect = delta == 0 && matches!(model, Model::Granted(_));
                    prop_assert_eq!(won, expect, "op {}: claim(+{})", i, delta);
                    if won {
                        model = Model::Claimed(position);
                    }
                }
                Op::Advance => {
                    let won = t.try_advance(position);
                    let expect = matches!(model, Model::Claimed(_));
                    prop_assert_eq!(won, expect, "op {}: advance", i);
                    if won {
                        model = Model::Granted(position + 1);
                    }
                }
                Op::Unclaim => {
                    let won = t.try_unclaim(position);
                    let expect = matches!(model, Model::Claimed(_));
                    prop_assert_eq!(won, expect, "op {}: unclaim", i);
                    if won {
                        model = Model::Granted(position);
                    }
                }
                Op::Release { delta } => {
                    let held = position + delta;
                    let won = t.try_release(held, held + 1);
                    let expect = delta == 0 && matches!(model, Model::Granted(_));
                    prop_assert_eq!(won, expect, "op {}: release(+{})", i, delta);
                    if won {
                        model = Model::Granted(held + 1);
                    }
                }
                Op::Poison => {
                    t.poison_with(PoisonCause::Panicked {
                        thread: 0,
                        chunk: position,
                        message: format!("injected at op {i}"),
                    });
                    model = Model::Poisoned;
                }
            }
            prop_assert_eq!(Token::decode(t.raw()), model.view(), "op {}: state diverged", i);
        }
    }

    /// First cause wins: whatever the op sequence, the diagnostic behind a
    /// poisoned token is the first one installed, and `try_release` /
    /// `try_advance` never resurrect it.
    #[test]
    fn poison_is_final_and_first_cause_wins(
        first_chunk in 0u64..100,
        later in prop::collection::vec(0u64..100, 0..8),
    ) {
        let t = Token::new();
        let installed = t.poison_with(PoisonCause::Stalled {
            chunk: first_chunk,
            waited: Duration::from_millis(1),
        });
        prop_assert!(installed, "the first poison call must install its cause");
        for &c in &later {
            let displaced = t.poison_with(PoisonCause::Panicked {
                thread: c,
                chunk: c,
                message: "late".into(),
            });
            prop_assert!(!displaced, "a later cause must not displace the first");
            prop_assert!(!t.try_release(c, c + 1));
            prop_assert!(!t.try_advance(c));
            prop_assert!(!t.try_claim(c));
            prop_assert!(!t.try_unclaim(c));
        }
        match t.poison_cause() {
            Some(PoisonCause::Stalled { chunk, .. }) => prop_assert_eq!(chunk, first_chunk),
            other => return Err(TestCaseError::fail(format!("first cause lost: {other:?}"))),
        }
    }

    /// Real-thread claim race with fail-stop retries: for any chunk count,
    /// thread count, and set of chunks whose first claimant relinquishes
    /// (modeling a fail-stop panic before mutation), every chunk is
    /// *executed* (advanced) exactly once and the final grant is exactly
    /// `chunks` — two executors and lost grants are both impossible.
    #[test]
    fn claim_race_admits_exactly_one_executor_per_chunk(
        chunks in 1u64..24,
        nthreads in 2usize..5,
        unclaim_mask in any::<u32>(),
    ) {
        let t = Token::new();
        let executed: Vec<AtomicU64> = (0..chunks).map(|_| AtomicU64::new(0)).collect();
        let relinquished: Vec<AtomicU64> = (0..chunks).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..nthreads {
                s.spawn(|| loop {
                    match Token::decode(t.raw()) {
                        TokenView::Poisoned => unreachable!("nobody poisons here"),
                        TokenView::Granted(j) if j >= chunks => break,
                        TokenView::Granted(j) => {
                            if t.try_claim(j) {
                                let fail_stop = unclaim_mask >> (j % 32) & 1 == 1;
                                if fail_stop
                                    && relinquished[j as usize].fetch_add(1, Ordering::Relaxed) == 0
                                {
                                    // First claimant "panics before
                                    // mutation": relinquish for a retry.
                                    assert!(t.try_unclaim(j));
                                } else {
                                    executed[j as usize].fetch_add(1, Ordering::Relaxed);
                                    assert!(t.try_advance(j));
                                }
                            }
                        }
                        TokenView::Claimed(_) => std::hint::spin_loop(),
                    }
                });
            }
        });
        for (j, e) in executed.iter().enumerate() {
            prop_assert_eq!(e.load(Ordering::Relaxed), 1, "chunk {} executor count", j);
        }
        prop_assert_eq!(t.current(), chunks, "final grant lost or duplicated");
    }

    /// `WaitOutcome` ordering under a grant/poison race: a releaser walks
    /// the token to `poison_at` then poisons it. A waiter for chunk `c`
    /// must observe `Granted` exactly when `c` precedes the poison point
    /// and `Poisoned` otherwise — never `TimedOut` (the deadline is far)
    /// and never a grant that the poison ordering forbids.
    #[test]
    fn wait_outcome_orders_grant_before_poison(
        poison_at in 0u64..30,
        target_delta in 0u64..10,
        release_last in any::<bool>(),
    ) {
        let t = Token::new();
        let target = if release_last { poison_at + target_delta } else { target_delta.min(poison_at) };
        let outcome = std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                t.wait_for_deadline(target, Some(Instant::now() + Duration::from_secs(20)))
            });
            s.spawn(|| {
                for j in 0..poison_at {
                    assert!(t.try_release(j, j + 1), "unpoisoned hand-off must win");
                }
                t.poison_with(PoisonCause::Stalled {
                    chunk: poison_at,
                    waited: Duration::ZERO,
                });
            });
            waiter.join().expect("waiter must not panic")
        });
        if target <= poison_at {
            // The grant precedes the poison in the release order (the
            // token holds `poison_at` momentarily before the poison
            // lands), but the waiter may legitimately observe either: it
            // can be descheduled past the grant and wake to the poison.
            prop_assert!(
                matches!(outcome, WaitOutcome::Granted { .. } | WaitOutcome::Poisoned(_)),
                "target {} <= poison {}: got {:?}", target, poison_at, outcome
            );
        } else {
            // The token never grants `target`: poison is the only legal
            // outcome — a grant here would be a resurrected token.
            prop_assert!(
                matches!(outcome, WaitOutcome::Poisoned(PoisonCause::Stalled { .. })),
                "target {} > poison {}: got {:?}", target, poison_at, outcome
            );
        }
    }
}

//! Stress and edge-case tests of the real-thread cascade runner: extreme
//! chunk/thread ratios, pathological poll batches, and repeated runs over
//! the same program — all must preserve bitwise equivalence with
//! sequential execution.

use cascade_rt::{run_cascaded, RealKernel, RtPolicy, RunnerConfig, SpecProgram};
use cascade_synth::{Synth, Variant};
use cascade_wave5::{Parmvr, ParmvrParams};

fn synth_checksum_sequential(n: u64, variant: Variant) -> u64 {
    let s = Synth::build(n, variant, 1234);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    // SAFETY: single-threaded.
    unsafe { k.execute(0..k.iters()) };
    prog.checksum()
}

fn synth_checksum_cascaded(n: u64, variant: Variant, cfg: &RunnerConfig) -> u64 {
    let s = Synth::build(n, variant, 1234);
    let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    run_cascaded(&k, cfg);
    prog.checksum()
}

#[test]
fn more_threads_than_chunks() {
    let n = 1u64 << 10;
    let expected = synth_checksum_sequential(n, Variant::Dense);
    let cfg = RunnerConfig {
        nthreads: 8,
        iters_per_chunk: n, // a single chunk; 7 threads never run
        policy: RtPolicy::Prefetch,
        poll_batch: 4,
    };
    assert_eq!(synth_checksum_cascaded(n, Variant::Dense, &cfg), expected);
}

#[test]
fn one_iteration_chunks() {
    let n = 256u64;
    let expected = synth_checksum_sequential(n, Variant::Dense);
    let cfg = RunnerConfig {
        nthreads: 3,
        iters_per_chunk: 1, // maximal token traffic
        policy: RtPolicy::Restructure,
        poll_batch: 1,
    };
    assert_eq!(synth_checksum_cascaded(n, Variant::Dense, &cfg), expected);
}

#[test]
fn giant_poll_batch_still_jumps_out() {
    let n = 1u64 << 12;
    let expected = synth_checksum_sequential(n, Variant::Sparse);
    let cfg = RunnerConfig {
        nthreads: 2,
        iters_per_chunk: 64,
        policy: RtPolicy::Restructure,
        poll_batch: u64::MAX / 2, // helper packs entire chunk per poll
    };
    assert_eq!(synth_checksum_cascaded(n, Variant::Sparse, &cfg), expected);
}

#[test]
fn repeated_runs_on_fresh_programs_are_stable() {
    let n = 1u64 << 12;
    let first = synth_checksum_cascaded(
        n,
        Variant::Dense,
        &RunnerConfig {
            nthreads: 4,
            iters_per_chunk: 97,
            policy: RtPolicy::Prefetch,
            poll_batch: 8,
        },
    );
    for _ in 0..3 {
        let again = synth_checksum_cascaded(
            n,
            Variant::Dense,
            &RunnerConfig {
                nthreads: 4,
                iters_per_chunk: 97,
                policy: RtPolicy::Prefetch,
                poll_batch: 8,
            },
        );
        assert_eq!(again, first);
    }
}

#[test]
fn sequencing_all_loops_twice_matches_two_sequential_calls() {
    // PARMVR is called repeatedly in wave5; run the 15-loop sequence twice
    // cascaded and compare with twice sequential.
    let build = || {
        let p = Parmvr::build(ParmvrParams {
            scale: 0.005,
            seed: 77,
        });
        SpecProgram::new(p.workload, p.arena).unwrap()
    };
    let expected = {
        let mut prog = build();
        for _ in 0..2 {
            for i in 0..prog.num_loops() {
                let k = prog.kernel(i);
                // SAFETY: single-threaded.
                unsafe { k.execute(0..k.iters()) };
            }
        }
        prog.checksum()
    };
    let mut prog = build();
    let cfg = RunnerConfig {
        nthreads: 3,
        iters_per_chunk: 173,
        policy: RtPolicy::Restructure,
        poll_batch: 13,
    };
    for _ in 0..2 {
        for i in 0..prog.num_loops() {
            let k = prog.kernel(i);
            run_cascaded(&k, &cfg);
        }
    }
    assert_eq!(prog.checksum(), expected);
}

#[test]
fn stats_account_every_iteration_under_contention() {
    let n = 1u64 << 13;
    let s = Synth::build(n, Variant::Dense, 5);
    let prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    let stats = run_cascaded(
        &k,
        &RunnerConfig {
            nthreads: 4,
            iters_per_chunk: 50,
            policy: RtPolicy::Restructure,
            poll_batch: 7,
        },
    );
    assert_eq!(stats.iters, n);
    assert_eq!(stats.chunks, n.div_ceil(50));
    let executed: u64 = stats.threads.iter().map(|t| t.chunks).sum();
    assert_eq!(executed, stats.chunks);
    assert!(stats.helper_coverage() <= 1.0);
}

#[test]
fn persistent_pool_sequence_matches_per_loop_runs() {
    use cascade_rt::run_cascaded_sequence;
    let build = || {
        let p = Parmvr::build(ParmvrParams {
            scale: 0.005,
            seed: 21,
        });
        SpecProgram::new(p.workload, p.arena).unwrap()
    };
    let cfg = RunnerConfig {
        nthreads: 3,
        iters_per_chunk: 211,
        policy: RtPolicy::Restructure,
        poll_batch: 9,
    };
    // Reference: one run_cascaded per loop (threads respawned each loop).
    let expected = {
        let mut prog = build();
        for i in 0..prog.num_loops() {
            let k = prog.kernel(i);
            run_cascaded(&k, &cfg);
        }
        prog.checksum()
    };
    // Persistent pool over the whole sequence.
    let mut prog = build();
    let kernels: Vec<_> = (0..prog.num_loops()).map(|i| prog.kernel(i)).collect();
    let stats = run_cascaded_sequence(&kernels, &cfg);
    drop(kernels);
    assert_eq!(stats.len(), 15);
    for (l, s) in stats.iter().enumerate() {
        let executed: u64 = s.threads.iter().map(|t| t.chunks).sum();
        assert_eq!(executed, s.chunks, "loop {l}: every chunk exactly once");
    }
    assert_eq!(prog.checksum(), expected, "sequence runner diverged");
}

/// A kernel that panics mid-loop on a specific chunk owner's turn.
struct PanickingKernel {
    panic_at: u64,
    n: u64,
}
impl cascade_rt::RealKernel for PanickingKernel {
    fn iters(&self) -> u64 {
        self.n
    }
    unsafe fn execute(&self, range: std::ops::Range<u64>) {
        if range.contains(&self.panic_at) {
            panic!("kernel exploded at iteration {}", self.panic_at);
        }
    }
}

#[test]
fn a_panicking_kernel_propagates_instead_of_deadlocking() {
    // Without token poisoning the other workers would spin forever and
    // this test would hang; with it, the panic propagates promptly.
    let k = PanickingKernel {
        panic_at: 500,
        n: 10_000,
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: 3,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 4,
            },
        )
    }));
    assert!(
        result.is_err(),
        "the kernel panic must propagate to the caller"
    );
}

#[test]
fn poisoned_token_panics_waiters() {
    use cascade_rt::Token;
    let t = Token::new();
    t.poison();
    assert!(t.is_poisoned());
    let r = std::panic::catch_unwind(|| t.wait_for(3));
    assert!(r.is_err(), "waiting on a poisoned token must panic");
}

/// A kernel panicking in loop `l` of a sequence must poison loops `l..`
/// and unblock every worker: the call returns a typed error promptly with
/// all three workers drained, instead of hanging at a barrier or token.
#[test]
fn sequence_panic_poisons_later_loops_and_unblocks_workers() {
    use cascade_rt::{try_run_cascaded_sequence, RunError, Tolerance};
    let kernels = [
        PanickingKernel {
            panic_at: u64::MAX,
            n: 4_000,
        }, // loop 0: healthy
        PanickingKernel {
            panic_at: 500,
            n: 4_000,
        }, // loop 1: dies on chunk 5
        PanickingKernel {
            panic_at: u64::MAX,
            n: 4_000,
        }, // loop 2: must never hang
    ];
    let cfg = RunnerConfig {
        nthreads: 3,
        iters_per_chunk: 100,
        policy: RtPolicy::None,
        poll_batch: 4,
    };
    match try_run_cascaded_sequence(&kernels, &cfg, &Tolerance::default()) {
        Err(RunError::WorkerPanicked { chunk: 5, .. }) => {}
        other => panic!("expected WorkerPanicked on chunk 5, got {other:?}"),
    }
    // The panicking shim keeps the legacy behavior: it panics.
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cascade_rt::run_cascaded_sequence(&kernels, &cfg)
    }));
    assert!(r.is_err(), "the sequence shim must propagate the failure");
}

/// Regression: `run_cascaded_sequence` used to skip the configuration
/// validation `run_cascaded` performs, so a zero `poll_batch` hung the
/// helpers and a zero `iters_per_chunk` div-by-zeroed the chunk plan.
#[test]
#[should_panic(expected = "poll batch must be positive")]
fn sequence_rejects_zero_poll_batch() {
    let kernels = [PanickingKernel {
        panic_at: u64::MAX,
        n: 1_000,
    }];
    cascade_rt::run_cascaded_sequence(
        &kernels,
        &RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 100,
            policy: RtPolicy::Restructure,
            poll_batch: 0,
        },
    );
}

#[test]
#[should_panic(expected = "chunks must be non-empty")]
fn sequence_rejects_zero_chunk_iters() {
    let kernels = [PanickingKernel {
        panic_at: u64::MAX,
        n: 1_000,
    }];
    cascade_rt::run_cascaded_sequence(
        &kernels,
        &RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 0,
            policy: RtPolicy::None,
            poll_batch: 4,
        },
    );
}

/// Fault-free overhead guard: the full recovery ladder
/// (`Tolerance::retrying` — watchdog, health registry, claim/advance CAS
/// hand-off) must cost nothing observable when no fault is injected.
/// Guards against accidentally putting a lock, an `Instant::now()` per
/// iteration, or a heartbeat per poll on the hot path; timing compares
/// the min of several trials with a generous factor so scheduler noise on
/// a shared box does not flake the suite.
#[test]
fn fault_free_retry_ladder_adds_no_measurable_overhead() {
    use cascade_rt::{try_run_cascaded, Tolerance};
    use std::time::Duration;

    let n = 1u64 << 14;
    let cfg = RunnerConfig {
        nthreads: 2,
        iters_per_chunk: 256,
        policy: RtPolicy::Restructure,
        poll_batch: 8,
    };
    let expected = synth_checksum_sequential(n, Variant::Dense);
    let run = |tol: &Tolerance| {
        let s = Synth::build(n, Variant::Dense, 1234);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let k = prog.kernel(0);
        let stats = try_run_cascaded(&k, &cfg, tol).expect("fault-free run must succeed");
        assert_eq!(prog.checksum(), expected, "fault-free run diverged");
        stats
    };

    let ladder = Tolerance::retrying(Duration::from_secs(5));
    let bare = Tolerance::fail_fast();
    // Warm-up (page faults, thread-pool first-spawn costs), then trials.
    run(&ladder);
    run(&bare);
    let trials = 5;
    let min_elapsed = |tol: &Tolerance| {
        (0..trials)
            .map(|_| {
                let stats = run(tol);
                // The ladder must be armed but silent: no retries, no
                // quarantines, no fault events, no degradation.
                assert!(!stats.degraded);
                assert_eq!(stats.retries, 0);
                assert_eq!(stats.quarantined, 0);
                assert!(
                    stats.faults.is_empty(),
                    "phantom faults: {:?}",
                    stats.faults
                );
                stats.elapsed
            })
            .min()
            .expect("at least one trial")
    };
    let with_ladder = min_elapsed(&ladder);
    let without = min_elapsed(&bare);
    // "No measurable cost": the best-case run with the whole ladder armed
    // stays within 3x + 10ms of the best-case fail-fast run. The absolute
    // slack absorbs millisecond-scale scheduler jitter on tiny runs; the
    // factor catches any per-iteration or per-poll regression, which
    // would show up as 10-100x on this chunk geometry.
    let budget = without * 3 + Duration::from_millis(10);
    assert!(
        with_ladder <= budget,
        "retry/health machinery slowed a fault-free run: {with_ladder:?} vs {without:?} (budget {budget:?})"
    );
}

/// Overhead guard for the verification machinery: with
/// `VerifyPolicy::Off` (the default) the entire verify apparatus — digest
/// publication, packet handoff, journal capture for replay, and the
/// supervisor's arena scrubber — must collapse to the single
/// `gov.verify.armed()` branch per chunk. Every verify-side counter must
/// read zero and the wall clock must match a governance-free run within
/// scheduler noise; timing compares the min of several trials like the
/// ladder guard above.
#[test]
fn verify_off_costs_one_branch() {
    use cascade_rt::{try_run_cascaded, try_run_governed, RunConfig, Tolerance, VerifyPolicy};
    use std::time::Duration;

    let n = 1u64 << 14;
    let runner = RunnerConfig {
        nthreads: 2,
        iters_per_chunk: 256,
        policy: RtPolicy::Restructure,
        poll_batch: 8,
    };
    let expected = synth_checksum_sequential(n, Variant::Dense);
    let governed = |verify: VerifyPolicy| {
        let s = Synth::build(n, Variant::Dense, 1234);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let k = prog.kernel(0);
        let cfg = RunConfig {
            runner: runner.clone(),
            tolerance: Tolerance::fail_fast(),
            verify,
            ..RunConfig::default()
        };
        let stats = try_run_governed(&k, &cfg).expect("fault-free run must succeed");
        assert_eq!(prog.checksum(), expected, "fault-free run diverged");
        stats
    };
    let bare = || {
        let s = Synth::build(n, Variant::Dense, 1234);
        let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let k = prog.kernel(0);
        let stats =
            try_run_cascaded(&k, &runner, &Tolerance::fail_fast()).expect("bare run must succeed");
        assert_eq!(prog.checksum(), expected, "bare run diverged");
        stats
    };
    // Warm-up, then trials.
    governed(VerifyPolicy::Off);
    bare();
    let trials = 5;
    let with_off = (0..trials)
        .map(|_| {
            let stats = governed(VerifyPolicy::Off);
            // Off must mean *off*: no chunk was verified, no digest or
            // journal time was charged to the verify counter, and the
            // supervisor never scrubbed the arena.
            assert_eq!(stats.scrubs, 0, "scrubber ran with verification off");
            for t in &stats.threads {
                assert_eq!(t.verified_chunks, 0, "chunk verified with verification off");
                assert_eq!(t.verify_ns, 0, "verify time charged with verification off");
            }
            assert!(
                stats.faults.is_empty(),
                "phantom faults: {:?}",
                stats.faults
            );
            stats.elapsed
        })
        .min()
        .expect("at least one trial");
    let without = (0..trials).map(|_| bare().elapsed).min().expect("trial");
    let budget = without * 3 + Duration::from_millis(10);
    assert!(
        with_off <= budget,
        "VerifyPolicy::Off slowed a fault-free run: {with_off:?} vs {without:?} (budget {budget:?})"
    );
}

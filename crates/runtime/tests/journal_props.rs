//! Property tests for analyzer-bounded undo journals.
//!
//! For randomized alias-heavy loops — overlapping affine writes plus
//! colliding indirect scatters, including several scatters aliasing the
//! same array — `journal_capture` + a (possibly partial) execution +
//! `journal_rollback` must restore the **entire** arena bitwise. The
//! oracle is a full byte-for-byte snapshot of the arena taken before the
//! capture, *not* the analyzer's own footprints, so an under-approximated
//! write-set cannot hide: any stray byte the journal failed to cover
//! fails the comparison.

use cascade_rt::{RealKernel, SpecProgram};
use cascade_trace::{
    AddressSpace, Arena, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// One randomized write stream, in raw (unclamped) form: an affine
/// write/modify, or an indirect scatter whose index contents are derived
/// from `seed` over a deliberately small element range (heavy collisions
/// → alias-heavy RMW chains).
#[derive(Debug, Clone)]
enum RawShape {
    Affine {
        base: u64,
        stride: u64,
        modify: bool,
    },
    Scatter {
        seed: u64,
    },
}

#[derive(Debug, Clone)]
struct Scenario {
    iters: u64,
    shapes: Vec<RawShape>,
    /// The journaled chunk (lo < hi <= iters).
    chunk: (u64, u64),
    /// How many iterations of the chunk land before the "interruption".
    prefix: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn raw_shape() -> impl Strategy<Value = RawShape> {
    prop_oneof![
        (any::<u64>(), 1..=3u64, any::<bool>()).prop_map(|(base, stride, modify)| {
            RawShape::Affine {
                base,
                stride,
                modify,
            }
        }),
        any::<u64>().prop_map(|seed| RawShape::Scatter { seed }),
    ]
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        64u64..200,
        vec(raw_shape(), 1..4),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(iters, shapes, a, b, c)| {
            let lo = a % (iters - 1);
            let hi = (lo + 1 + b % (iters - lo - 1).max(1)).min(iters);
            let prefix = c % (hi - lo + 1);
            Scenario {
                iters,
                shapes,
                chunk: (lo, hi),
                prefix,
            }
        })
}

/// Build a runnable program from the scenario. All scatters alias one
/// shared data array `sc`; affine writes share (and may overlap within)
/// `af`; a read stream makes the interpreter's accumulator depend on
/// real data.
fn build(s: &Scenario) -> SpecProgram {
    let n = s.iters;
    let sc_elems = (n / 2).max(4);
    let mut space = AddressSpace::new();
    let src = space.alloc("src", 8, n);
    let af = space.alloc("af", 8, 4 * n);
    let sc = space.alloc("sc", 8, sc_elems);
    let mut index = IndexStore::new();
    let mut refs = vec![StreamRef {
        name: "src(i)",
        array: src,
        pattern: Pattern::Affine { base: 0, stride: 1 },
        mode: Mode::Read,
        bytes: 8,
        hoistable: false,
    }];
    // StreamRef names are &'static str (reports only): one per slot.
    const IJ_NAMES: [&str; 3] = ["ij0", "ij1", "ij2"];
    const AF_NAMES: [&str; 3] = ["af(a0+s0*i)", "af(a1+s1*i)", "af(a2+s2*i)"];
    const SC_NAMES: [&str; 3] = ["sc(ij0(i))", "sc(ij1(i))", "sc(ij2(i))"];
    for (slot, w) in s.shapes.iter().enumerate() {
        match *w {
            // Bounds: `af` holds 4n elements, so base < n with stride <= 3
            // keeps base + stride * (n - 1) inside the array.
            RawShape::Affine {
                base,
                stride,
                modify,
            } => refs.push(StreamRef {
                name: AF_NAMES[slot],
                array: af,
                pattern: Pattern::Affine {
                    base: (base % n) as i64,
                    stride: stride as i64,
                },
                mode: if modify { Mode::Modify } else { Mode::Write },
                bytes: 8,
                hoistable: false,
            }),
            RawShape::Scatter { seed } => {
                let ij = space.alloc(IJ_NAMES[slot], 4, n);
                // Index values from the array's first quarter: with n
                // iterations over sc_elems / 4 targets, collisions are
                // guaranteed, so the scatter is an order-sensitive RMW
                // chain with aliasing both within and across refs.
                let bound = (sc_elems / 4).max(2) as u32;
                index.set(
                    ij,
                    (0..n)
                        .map(|i| (splitmix64(seed ^ i) % bound as u64) as u32)
                        .collect(),
                );
                refs.push(StreamRef {
                    name: SC_NAMES[slot],
                    array: sc,
                    pattern: Pattern::Indirect {
                        index: ij,
                        ibase: 0,
                        istride: 1,
                    },
                    mode: Mode::Modify,
                    bytes: 8,
                    hoistable: false,
                });
            }
        }
    }
    let spec = LoopSpec {
        name: "journal-prop".into(),
        iters: n,
        refs,
        compute: 2.0,
        hoistable_compute: 0.0,
        hoist_result_bytes: 0,
    };
    let w = Workload {
        space,
        index,
        loops: vec![spec],
    };
    let mut arena = Arena::new(&w.space);
    for i in 0..n {
        arena.set_f64(&w.space, src, i, (i % 31) as f64 * 0.375 + 0.5);
    }
    for i in 0..4 * n {
        arena.set_f64(&w.space, af, i, (i % 17) as f64 * 0.125 - 1.0);
    }
    for i in 0..sc_elems {
        arena.set_f64(&w.space, sc, i, (i % 7) as f64 * 0.25 + 0.125);
    }
    arena.install_indices(&w.space, &w.index);
    SpecProgram::new(w, arena).expect("generated workload must be runnable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Rollback after an *interrupted* chunk (only `prefix` iterations
    /// of it ran) restores the full arena bitwise.
    #[test]
    fn rollback_restores_interrupted_chunks_bitwise(s in scenario()) {
        let mut prog = build(&s);
        let (lo, hi) = s.chunk;
        let snapshot = prog.arena_mut().bytes().to_vec();
        let mut jbuf = Vec::new();
        {
            let k = prog.kernel(0);
            // SAFETY: single-threaded test, trivially exclusive.
            prop_assert!(unsafe { k.journal_capture(lo..hi, &mut jbuf) },
                "affine and index-store-bounded write-sets must be journalable");
            // SAFETY: as above.
            unsafe { k.execute(lo..lo + s.prefix) };
            // SAFETY: as above; `jbuf` is the unmodified capture.
            unsafe { k.journal_rollback(lo..hi, &jbuf) };
        }
        prop_assert_eq!(
            prog.arena_mut().bytes(), snapshot.as_slice(),
            "rollback left the arena different from the pre-chunk snapshot"
        );
    }

    /// Re-execution after a rollback produces exactly the bytes a single
    /// uninterrupted execution would have: the journal round-trip is
    /// invisible to the final result.
    #[test]
    fn reexecution_after_rollback_matches_straight_execution(s in scenario()) {
        let (lo, hi) = s.chunk;
        let mut straight = build(&s);
        {
            let k = straight.kernel(0);
            // SAFETY: single-threaded.
            unsafe { k.execute(lo..hi) };
        }
        let mut journaled = build(&s);
        {
            let k = journaled.kernel(0);
            let mut jbuf = Vec::new();
            // SAFETY: single-threaded.
            prop_assert!(
                unsafe { k.journal_capture(lo..hi, &mut jbuf) },
                "capture must succeed"
            );
            // SAFETY: as above.
            unsafe { k.execute(lo..lo + s.prefix) };
            // SAFETY: as above.
            unsafe { k.journal_rollback(lo..hi, &jbuf) };
            // SAFETY: as above — the retry.
            unsafe { k.execute(lo..hi) };
        }
        prop_assert_eq!(journaled.checksum(), straight.checksum());
    }
}

//! Property and integration tests for durable checkpoints.
//!
//! For randomized alias-heavy loops — overlapping affine writes plus
//! colliding indirect scatters, mirroring `journal_props.rs` — a
//! checkpoint (base snapshot + ordered write-set deltas) loaded back
//! from disk must restore the arena **bitwise** at every commit
//! boundary. The oracle is a byte-for-byte comparison against the live
//! arena, so an under-captured delta cannot hide. Corrupted, torn and
//! stale checkpoints must be refused with the matching typed error —
//! never partially restored.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cascade_rt::{
    ckpt, CkptError, CkptMeta, CkptPolicy, CkptSink, CkptWriter, RealKernel, RtPolicy, RunConfig,
    RunnerConfig, SpecProgram,
};
use cascade_trace::{
    to_text, AddressSpace, Arena, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// One randomized write stream (see `journal_props.rs` for the shape
/// rationale): an affine write/modify, or an indirect scatter whose
/// colliding index contents make order-sensitive RMW chains.
#[derive(Debug, Clone)]
enum RawShape {
    Affine {
        base: u64,
        stride: u64,
        modify: bool,
    },
    Scatter {
        seed: u64,
    },
}

#[derive(Debug, Clone)]
struct Scenario {
    iters: u64,
    shapes: Vec<RawShape>,
    /// Commit-boundary spacing: one delta per `chunk_iters` iterations.
    chunk_iters: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

// FNV-1a 64 — the checkpoint manifest's checksum; the shared
// `cascade-core` helper lets the stale-spec test forge an otherwise
// self-consistent manifest.
use cascade_core::fnv64;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "cascade-ckpt-props-{tag}-{}-{id}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

fn raw_shape() -> impl Strategy<Value = RawShape> {
    prop_oneof![
        (any::<u64>(), 1..=3u64, any::<bool>()).prop_map(|(base, stride, modify)| {
            RawShape::Affine {
                base,
                stride,
                modify,
            }
        }),
        any::<u64>().prop_map(|seed| RawShape::Scatter { seed }),
    ]
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (64u64..200, vec(raw_shape(), 1..4), 16u64..48).prop_map(|(iters, shapes, chunk_iters)| {
        Scenario {
            iters,
            shapes,
            chunk_iters,
        }
    })
}

/// Build a runnable program from the scenario (the `journal_props.rs`
/// construction): all scatters alias one shared array, affine writes may
/// overlap within another, and a read stream keeps the accumulator
/// data-dependent.
fn build(s: &Scenario) -> SpecProgram {
    let n = s.iters;
    let sc_elems = (n / 2).max(4);
    let mut space = AddressSpace::new();
    let src = space.alloc("src", 8, n);
    let af = space.alloc("af", 8, 4 * n);
    let sc = space.alloc("sc", 8, sc_elems);
    let mut index = IndexStore::new();
    let mut refs = vec![StreamRef {
        name: "src(i)",
        array: src,
        pattern: Pattern::Affine { base: 0, stride: 1 },
        mode: Mode::Read,
        bytes: 8,
        hoistable: false,
    }];
    const IJ_NAMES: [&str; 3] = ["ij0", "ij1", "ij2"];
    const AF_NAMES: [&str; 3] = ["af(a0+s0*i)", "af(a1+s1*i)", "af(a2+s2*i)"];
    const SC_NAMES: [&str; 3] = ["sc(ij0(i))", "sc(ij1(i))", "sc(ij2(i))"];
    for (slot, w) in s.shapes.iter().enumerate() {
        match *w {
            RawShape::Affine {
                base,
                stride,
                modify,
            } => refs.push(StreamRef {
                name: AF_NAMES[slot],
                array: af,
                pattern: Pattern::Affine {
                    base: (base % n) as i64,
                    stride: stride as i64,
                },
                mode: if modify { Mode::Modify } else { Mode::Write },
                bytes: 8,
                hoistable: false,
            }),
            RawShape::Scatter { seed } => {
                let ij = space.alloc(IJ_NAMES[slot], 4, n);
                let bound = (sc_elems / 4).max(2) as u32;
                index.set(
                    ij,
                    (0..n)
                        .map(|i| (splitmix64(seed ^ i) % bound as u64) as u32)
                        .collect(),
                );
                refs.push(StreamRef {
                    name: SC_NAMES[slot],
                    array: sc,
                    pattern: Pattern::Indirect {
                        index: ij,
                        ibase: 0,
                        istride: 1,
                    },
                    mode: Mode::Modify,
                    bytes: 8,
                    hoistable: false,
                });
            }
        }
    }
    let spec = LoopSpec {
        name: "ckpt-prop".into(),
        iters: n,
        refs,
        compute: 2.0,
        hoistable_compute: 0.0,
        hoist_result_bytes: 0,
    };
    let w = Workload {
        space,
        index,
        loops: vec![spec],
    };
    let mut arena = Arena::new(&w.space);
    for i in 0..n {
        arena.set_f64(&w.space, src, i, (i % 31) as f64 * 0.375 + 0.5);
    }
    for i in 0..4 * n {
        arena.set_f64(&w.space, af, i, (i % 17) as f64 * 0.125 - 1.0);
    }
    for i in 0..sc_elems {
        arena.set_f64(&w.space, sc, i, (i % 7) as f64 * 0.25 + 0.125);
    }
    arena.install_indices(&w.space, &w.index);
    SpecProgram::new(w, arena).expect("generated workload must be runnable")
}

/// Execute the scenario's loop to completion, chunk by chunk, publishing
/// a delta at every commit boundary — the leader's commit path, minus
/// the threads. Returns the checkpoint directory and the final arena.
fn write_checkpoint(tag: &str, s: &Scenario) -> (PathBuf, Vec<u8>) {
    let dir = tmpdir(tag);
    let mut live = build(s);
    let text = to_text(live.workload());
    let base = live.arena_mut().bytes().to_vec();
    let mut w = CkptWriter::create(
        &dir,
        &text,
        CkptMeta {
            loop_index: 0,
            iters: s.iters,
            iters_per_chunk: s.chunk_iters,
        },
        &base,
    )
    .expect("writer creation");
    let mut jbuf = Vec::new();
    let mut from = 0u64;
    let mut chunk = 0u64;
    while from < s.iters {
        let to = (from + s.chunk_iters).min(s.iters);
        {
            let k = live.kernel(0);
            // SAFETY: single-threaded test, trivially exclusive.
            unsafe { k.execute(from..to) };
            // SAFETY: as above; post-state capture over the chunk.
            assert!(unsafe { k.journal_capture(from..to, &mut jbuf) });
        }
        w.append_delta(chunk, chunk + 1, from, to, &jbuf)
            .expect("delta append");
        from = to;
        chunk += 1;
    }
    let bytes = live.arena_mut().bytes().to_vec();
    (dir, bytes)
}

fn fixed_scenario() -> Scenario {
    Scenario {
        iters: 160,
        shapes: vec![
            RawShape::Scatter { seed: 3 },
            RawShape::Affine {
                base: 5,
                stride: 2,
                modify: true,
            },
        ],
        chunk_iters: 32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Loading the checkpoint back from disk at EVERY commit boundary
    /// restores the live arena bitwise: base snapshot plus ordered
    /// deltas loses nothing, even with aliasing within and across
    /// chunks (later deltas re-cover earlier footprints).
    #[test]
    fn restore_is_bitwise_at_every_commit_boundary(s in scenario()) {
        let dir = tmpdir("boundary");
        let mut live = build(&s);
        let text = to_text(live.workload());
        let base = live.arena_mut().bytes().to_vec();
        let mut w = CkptWriter::create(
            &dir,
            &text,
            CkptMeta { loop_index: 0, iters: s.iters, iters_per_chunk: s.chunk_iters },
            &base,
        ).expect("writer creation");
        let mut jbuf = Vec::new();
        let mut from = 0u64;
        let mut chunk = 0u64;
        while from < s.iters {
            let to = (from + s.chunk_iters).min(s.iters);
            {
                let k = live.kernel(0);
                // SAFETY: single-threaded test, trivially exclusive.
                unsafe { k.execute(from..to) };
                // SAFETY: as above; post-state capture over the chunk.
                prop_assert!(unsafe { k.journal_capture(from..to, &mut jbuf) },
                    "affine and index-store-bounded write-sets must be journalable");
            }
            w.append_delta(chunk, chunk + 1, from, to, &jbuf).expect("delta append");

            let ck = ckpt::load(&dir).expect("published checkpoint must load");
            prop_assert_eq!(ck.committed_iters(), to);
            let (mut restored, at) = ck.into_program().expect("restore");
            prop_assert_eq!(at, to);
            prop_assert_eq!(
                restored.arena_mut().bytes(), live.arena_mut().bytes(),
                "restored arena diverged from the live arena at commit boundary {}", to
            );
            from = to;
            chunk += 1;
        }
        fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn governed_checkpointed_run_restores_bitwise_from_disk() {
    // The real commit path this time: a governed cascaded run with
    // checkpointing every chunk must leave a checkpoint that restores —
    // purely from disk — to exactly what straight sequential produces.
    let s = fixed_scenario();
    let mut reference = build(&s);
    {
        let k = reference.kernel(0);
        cascade_rt::run_sequential(&k);
    }
    let want = reference.arena_mut().bytes().to_vec();

    let mut prog = build(&s);
    let text = to_text(prog.workload());
    let base = prog.arena_mut().bytes().to_vec();
    let dir = tmpdir("governed");
    let writer = CkptWriter::create(
        &dir,
        &text,
        CkptMeta {
            loop_index: 0,
            iters: s.iters,
            iters_per_chunk: s.chunk_iters,
        },
        &base,
    )
    .expect("writer creation");
    let sink = CkptSink::new(writer);
    let cfg = RunConfig {
        runner: RunnerConfig {
            nthreads: 3,
            iters_per_chunk: s.chunk_iters,
            policy: RtPolicy::Restructure,
            poll_batch: 8,
        },
        ckpt: CkptPolicy::EveryChunks(1),
        ckpt_sink: Some(sink.clone()),
        ..RunConfig::default()
    };
    {
        let k = prog.kernel(0);
        cascade_rt::try_run_governed(&k, &cfg).expect("governed run");
    }
    assert_eq!(sink.error(), None);
    assert_eq!(sink.committed().1, s.iters);

    let ck = ckpt::load(&dir).expect("load");
    let (mut restored, at) = ck.into_program().expect("restore");
    assert_eq!(at, s.iters);
    assert_eq!(restored.arena_mut().bytes(), want.as_slice());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_millis_policy_resumes_bitwise_from_the_last_checkpoint() {
    // Time-based cadence: the run may publish anywhere from zero to all
    // deltas. Whatever survives, restoring and finishing the tail
    // sequentially must land on the straight-sequential bytes.
    let s = fixed_scenario();
    let mut reference = build(&s);
    {
        let k = reference.kernel(0);
        cascade_rt::run_sequential(&k);
    }
    let want = reference.arena_mut().bytes().to_vec();

    let mut prog = build(&s);
    let text = to_text(prog.workload());
    let base = prog.arena_mut().bytes().to_vec();
    let dir = tmpdir("millis");
    let writer = CkptWriter::create(
        &dir,
        &text,
        CkptMeta {
            loop_index: 0,
            iters: s.iters,
            iters_per_chunk: s.chunk_iters,
        },
        &base,
    )
    .expect("writer creation");
    let cfg = RunConfig {
        runner: RunnerConfig {
            nthreads: 2,
            iters_per_chunk: s.chunk_iters,
            policy: RtPolicy::Restructure,
            poll_batch: 8,
        },
        ckpt: CkptPolicy::EveryMillis(1),
        ckpt_sink: Some(CkptSink::new(writer)),
        ..RunConfig::default()
    };
    {
        let k = prog.kernel(0);
        cascade_rt::try_run_governed(&k, &cfg).expect("governed run");
    }

    let ck = ckpt::load(&dir).expect("load");
    let (mut restored, at) = ck.into_program().expect("restore");
    assert!(at <= s.iters);
    {
        let k = restored.kernel(0);
        // SAFETY: single-threaded — the documented sequential resume.
        unsafe { k.execute(at..k.iters()) };
    }
    assert_eq!(restored.arena_mut().bytes(), want.as_slice());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_delta_is_rejected() {
    let (dir, _) = write_checkpoint("flip", &fixed_scenario());
    let p = dir.join("delta-000001.bin");
    let mut b = fs::read(&p).expect("delta file");
    let mid = b.len() / 2;
    b[mid] ^= 0x40;
    fs::write(&p, &b).unwrap();
    match ckpt::load(&dir) {
        Err(CkptError::Corrupt(m)) => assert!(m.contains("delta-000001.bin"), "{m}"),
        other => panic!("bit-flipped delta must be Corrupt, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_base_snapshot_is_rejected() {
    let (dir, _) = write_checkpoint("trunc-base", &fixed_scenario());
    let p = dir.join("base.bin");
    let b = fs::read(&p).expect("base file");
    fs::write(&p, &b[..b.len() - 8]).unwrap();
    match ckpt::load(&dir) {
        Err(CkptError::Corrupt(m)) => assert!(m.contains("base.bin"), "{m}"),
        other => panic!("truncated base must be Corrupt, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_manifest_is_rejected() {
    // Simulate a torn write of the manifest itself (a crash the atomic
    // rename is designed to prevent, and the self-checksum to catch if
    // the filesystem lies): drop the tail.
    let (dir, _) = write_checkpoint("torn", &fixed_scenario());
    let p = dir.join("MANIFEST");
    let b = fs::read(&p).expect("manifest");
    fs::write(&p, &b[..b.len() - 10]).unwrap();
    match ckpt::load(&dir) {
        Err(CkptError::Corrupt(_)) => {}
        other => panic!("torn manifest must be Corrupt, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_spec_hash_is_rejected() {
    // Forge an otherwise self-consistent manifest — workload record and
    // trailing self-checksum recomputed over an edited workload file —
    // but keep the original spec_hash binding. The deltas were captured
    // under a different LoopSpec, so resume must refuse.
    let (dir, _) = write_checkpoint("stale", &fixed_scenario());
    let wpath = dir.join("workload.txt");
    let mut text = fs::read_to_string(&wpath).expect("workload text");
    text.push('\n');
    fs::write(&wpath, &text).unwrap();

    let manifest = fs::read_to_string(dir.join("MANIFEST")).expect("manifest");
    let mut lines: Vec<String> = manifest.lines().map(str::to_string).collect();
    assert!(lines.pop().is_some_and(|l| l.starts_with("checksum ")));
    for l in lines.iter_mut() {
        if l.starts_with("workload ") {
            *l = format!(
                "workload workload.txt {} {:016x}",
                text.len(),
                fnv64(text.as_bytes())
            );
        }
    }
    let mut m = lines.join("\n");
    m.push('\n');
    m.push_str(&format!("checksum {:016x}\n", fnv64(m.as_bytes())));
    fs::write(dir.join("MANIFEST"), m).unwrap();

    match ckpt::load(&dir) {
        Err(CkptError::SpecMismatch(_)) => {}
        other => panic!("stale spec hash must be SpecMismatch, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

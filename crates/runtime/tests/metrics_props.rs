//! Metrics-soundness properties: the observability layer must *account*
//! for the run, not approximate it.
//!
//! * per worker, the recorded phase durations partition wall time with no
//!   gaps and no overlaps — exactly, in integer nanoseconds;
//! * a fault-free cascade records exactly `chunks - 1` token handoffs
//!   (chunk 0's grant predates the run);
//! * `CascadeMetrics` aggregation is exact under proptest-generated
//!   schedules (pure counting / addition / comparison, no rounding);
//! * the recorder stays within the PR 2 fault-free overhead guard even
//!   with the event ring on.

use std::time::Duration;

use cascade_core::{CascadeMetrics, LatencyStats, MetricsSource, WorkerMetrics};
use cascade_rt::{
    try_run_cascaded, try_run_cascaded_observed, NsStats, Observe, RtPolicy, RunStats,
    RunnerConfig, SpecProgram, Tolerance,
};
use cascade_synth::{Synth, Variant};
use proptest::prelude::*;

fn run_observed(n: u64, policy: RtPolicy, nthreads: usize, obs: &Observe) -> RunStats {
    let s = Synth::build(n, Variant::Dense, 77);
    let prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    let cfg = RunnerConfig {
        nthreads,
        iters_per_chunk: 512,
        policy,
        poll_batch: 32,
    };
    try_run_cascaded_observed(&k, &cfg, &Tolerance::default(), obs)
        .expect("fault-free run must succeed")
}

#[test]
fn phase_durations_partition_wall_time_exactly() {
    for policy in [RtPolicy::None, RtPolicy::Prefetch, RtPolicy::Restructure] {
        let stats = run_observed(1 << 13, policy, 3, &Observe::with_events());
        assert!(!stats.threads.is_empty());
        for (t, s) in stats.threads.iter().enumerate() {
            let parts = s.helper_ns + s.spin_ns + s.exec_ns + s.retry_ns + s.other_ns;
            assert_eq!(
                parts, s.wall_ns,
                "worker {t} ({policy:?}): phases must tile wall time exactly"
            );
            // The event ring tiles the same interval: contiguous (each
            // interval starts where the previous ended), in order.
            for w in s.events.windows(2) {
                assert_eq!(
                    w[0].end_ns, w[1].start_ns,
                    "worker {t}: event ring has a gap or overlap"
                );
            }
            // ... and the ring's total span is the recorded wall time.
            if let (Some(first), Some(last)) = (s.events.first(), s.events.last()) {
                assert_eq!(
                    (last.end_ns - first.start_ns) as u128,
                    s.wall_ns,
                    "worker {t}: ring span must equal wall time"
                );
            }
        }
        // The derived cross-engine report passes its own invariants.
        stats.metrics().check();
    }
}

#[test]
fn fault_free_handoffs_number_chunks_minus_one() {
    for nthreads in [1usize, 2, 4] {
        let stats = run_observed(
            1 << 13,
            RtPolicy::Restructure,
            nthreads,
            &Observe::default(),
        );
        let m = stats.metrics();
        assert!(stats.chunks > 1, "need a multi-chunk run");
        assert_eq!(
            m.handoff.count,
            stats.chunks - 1,
            "{nthreads} threads: every chunk but the first is handed off exactly once"
        );
        let releases: u64 = stats.threads.iter().map(|t| t.handoffs).sum();
        assert_eq!(
            releases,
            stats.chunks - 1,
            "{nthreads} threads: release count must mirror the takeover count"
        );
        // Exactly one execution sample per chunk, across all workers.
        assert_eq!(m.chunk_exec.count, stats.chunks);
    }
}

#[test]
fn helper_byte_accounting_is_populated() {
    let packed = run_observed(1 << 13, RtPolicy::Restructure, 2, &Observe::default());
    assert!(
        packed.metrics().packed_bytes() > 0,
        "restructure helpers must report packed bytes"
    );
    let prefetched = run_observed(1 << 13, RtPolicy::Prefetch, 2, &Observe::default());
    assert!(
        prefetched.metrics().prefetched_bytes() > 0,
        "prefetch helpers must report covered bytes"
    );
}

#[test]
fn real_and_simulated_reports_share_the_schema() {
    use cascade_core::{run_cascaded, CascadeConfig, HelperPolicy};
    use cascade_mem::machines::pentium_pro;

    let rt = run_observed(1 << 12, RtPolicy::Restructure, 2, &Observe::with_events())
        .metrics()
        .to_json();

    let s = Synth::build(1 << 12, Variant::Dense, 77);
    let report = run_cascaded(
        &pentium_pro(),
        &s.workload,
        &CascadeConfig {
            nprocs: 2,
            chunk_bytes: 16 * 1024,
            policy: HelperPolicy::Restructure { hoist: true },
            jump_out: true,
            calls: 1,
            flush_between_calls: false,
        },
    );
    let sim = report.loops[0].timeline.metrics_with_events(true).to_json();

    // Same keys, same order — only the values and the declared source /
    // time unit differ. That is what makes the two engines diffable with
    // one tool.
    let top_keys = |doc: &str| -> Vec<String> {
        doc.lines()
            .filter(|l| l.starts_with("  \""))
            .filter_map(|l| {
                l.trim()
                    .strip_prefix('"')
                    .map(|r| r.split('"').next().unwrap().to_string())
            })
            .collect()
    };
    assert_eq!(
        top_keys(&rt),
        top_keys(&sim),
        "top-level JSON schema must be identical"
    );
    assert!(rt.contains("\"time_unit\": \"ns\""));
    assert!(sim.contains("\"time_unit\": \"cycles\""));
}

/// The recorder itself (counter core always on, plus the full event
/// ring) must stay within the same fault-free overhead budget PR 2 set
/// for the recovery ladder: min-of-trials, 3x + 10ms slack.
#[test]
fn recorder_overhead_stays_within_the_fault_free_guard() {
    let n = 1u64 << 14;
    let cfg = RunnerConfig {
        nthreads: 2,
        iters_per_chunk: 256,
        policy: RtPolicy::Restructure,
        poll_batch: 8,
    };
    let run = |obs: &Observe| {
        let s = Synth::build(n, Variant::Dense, 1234);
        let prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let k = prog.kernel(0);
        try_run_cascaded_observed(&k, &cfg, &Tolerance::default(), obs)
            .expect("fault-free run must succeed")
            .elapsed
    };
    let ring = Observe::with_events();
    let counters = Observe::default();
    run(&ring);
    run(&counters);
    let trials = 5;
    let min_elapsed = |obs: &Observe| (0..trials).map(|_| run(obs)).min().unwrap();
    let with_ring = min_elapsed(&ring);
    let without = min_elapsed(&counters);
    let budget = without * 3 + Duration::from_millis(10);
    assert!(
        with_ring <= budget,
        "event ring slowed a fault-free run: {with_ring:?} vs {without:?} (budget {budget:?})"
    );
}

/// Plain-call sanity: the always-on counter core populates the report
/// through the unchanged legacy entry points too.
#[test]
fn counters_are_on_by_default() {
    let s = Synth::build(1 << 12, Variant::Dense, 9);
    let prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    let cfg = RunnerConfig {
        nthreads: 2,
        iters_per_chunk: 256,
        policy: RtPolicy::Restructure,
        poll_batch: 16,
    };
    let stats = try_run_cascaded(&k, &cfg, &Tolerance::default()).unwrap();
    let m = stats.metrics();
    assert_eq!(m.source, Some(MetricsSource::Real));
    assert!(m.events.is_empty(), "ring must be opt-in");
    assert!(m.wall_time > 0.0);
    assert_eq!(m.handoff.count, stats.chunks - 1);
    m.check();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `NsStats` aggregation is exact: for any sample stream, count /
    /// sum / min / max match a reference computed in unbounded integers.
    #[test]
    fn ns_stats_aggregation_is_exact(samples in prop::collection::vec(0u64..(1 << 40), 1..64)) {
        let mut s = NsStats::default();
        for &v in &samples {
            s.record(v);
        }
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert_eq!(s.sum_ns, samples.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(s.min_ns, *samples.iter().min().unwrap());
        prop_assert_eq!(s.max_ns, *samples.iter().max().unwrap());
        // The f64 mirror is exact below 2^53.
        let l = s.to_latency();
        prop_assert_eq!(l.sum as u128, s.sum_ns);
    }

    /// `CascadeMetrics::aggregate` is exact for any proptest-generated
    /// schedule: run-level handoff / chunk-exec distributions equal the
    /// reference aggregation of the per-worker sample streams.
    #[test]
    fn cascade_metrics_aggregation_is_exact(
        schedule in prop::collection::vec(
            (
                prop::collection::vec(0u64..(1 << 40), 0..32), // takeover samples
                prop::collection::vec(0u64..(1 << 40), 0..32), // chunk exec samples
            ),
            1..6,
        )
    ) {
        let mut workers = Vec::new();
        let mut all_takeover: Vec<u64> = Vec::new();
        let mut all_exec: Vec<u64> = Vec::new();
        for (w, (takeovers, execs)) in schedule.iter().enumerate() {
            let mut takeover = NsStats::default();
            for &v in takeovers {
                takeover.record(v);
                all_takeover.push(v);
            }
            let mut chunk_exec = NsStats::default();
            for &v in execs {
                chunk_exec.record(v);
                all_exec.push(v);
            }
            workers.push(WorkerMetrics {
                worker: w as u64,
                chunks: execs.len() as u64,
                takeover: takeover.to_latency(),
                chunk_exec: chunk_exec.to_latency(),
                ..Default::default()
            });
        }
        let mut m = CascadeMetrics { workers, ..Default::default() };
        m.aggregate();

        let reference = |samples: &[u64]| -> LatencyStats {
            let mut r = LatencyStats::default();
            for &v in samples {
                r.record(v as f64);
            }
            r
        };
        prop_assert_eq!(m.handoff, reference(&all_takeover));
        prop_assert_eq!(m.chunk_exec, reference(&all_exec));
        // Exactness, not just f64 agreement: the sums are integers.
        prop_assert_eq!(
            m.handoff.sum as u128,
            all_takeover.iter().map(|&v| v as u128).sum::<u128>()
        );
    }
}

//! Crash-consistent checkpointing: durable runs that survive process death.
//!
//! PR 6's governance layer computes the exact `committed_iters` resume
//! point for every cancelled run — but that guarantee dies with the
//! process. This module persists it: a checkpoint directory holds the
//! workload (text format v1), a full **base** snapshot of the arena taken
//! at run start, and a sequence of incremental **deltas** captured at
//! chunk-commit boundaries from the analyzer's exact write sets (the PR 5
//! journaling machinery, [`RealKernel::journal_capture`], reused in the
//! forward direction: instead of pre-state for rollback, it captures
//! *post-state* for restore).
//!
//! # Crash consistency
//!
//! Every file is written with write-to-temp + `fsync` + atomic-rename +
//! directory `fsync`, and the `MANIFEST` — the only entry point — is
//! rewritten *after* the data files it references are durable. A crash at
//! any instant therefore leaves either the previous manifest (referencing
//! only fully-synced files) or the new one; a torn manifest write is
//! caught by its trailing self-checksum line and rejected with
//! [`CkptError::Corrupt`], never silently resumed. Orphaned data files
//! from a crash between the two renames are harmless: nothing references
//! them.
//!
//! # Restore
//!
//! [`load`] verifies the manifest self-checksum, every file's length and
//! FNV-1a 64 content checksum, and the workload hash (a checkpoint for a
//! different or edited workload is a [`CkptError::SpecMismatch`], not a
//! wrong answer). [`Checkpoint::into_program`] then rebuilds the program:
//! base bytes become the arena, and each delta is applied **in order** via
//! [`RealKernel::journal_rollback`] over the exact iteration range it was
//! captured from — the footprint layout is recomputed identically, and
//! ordered application makes the latest capture win on every overlapping
//! byte, reproducing the live arena at the last checkpoint bitwise. The
//! run then resumes from `committed_iters`.
//!
//! # Ordering invariant
//!
//! Checkpoint capture of chunk *k* happens-before the token handoff to
//! chunk *k+1* (the leader captures while still holding the claim), so no
//! checkpoint can ever observe an uncommitted write. The model checker
//! proves this — see `check.rs`, invariant 8.

use std::fmt;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cascade_trace::{from_text, Arena};

use crate::interp::SpecProgram;
use crate::kernel::RealKernel;
use crate::token::lock_recover;

/// File-format version tag, first line of every `MANIFEST`.
const MANIFEST_HEADER: &str = "cascade-ckpt v1";
/// Name of the manifest file inside a checkpoint directory.
const MANIFEST: &str = "MANIFEST";
/// Name of the persisted workload (text format v1).
const WORKLOAD: &str = "workload.txt";
/// Name of the full base arena snapshot.
const BASE: &str = "base.bin";

/// When (if ever) the leader captures a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CkptPolicy {
    /// No checkpointing (the default): zero durability overhead.
    #[default]
    Off,
    /// Checkpoint once every N committed chunks (N ≥ 1).
    EveryChunks(u64),
    /// Checkpoint when at least T milliseconds have elapsed since the
    /// last one and a new chunk has committed (T ≥ 1).
    EveryMillis(u64),
}

/// Why a checkpoint could not be written or loaded.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure (path and underlying error).
    Io(String),
    /// The manifest or a data file failed an integrity check: torn
    /// manifest, bad self-checksum, wrong length, flipped bits.
    Corrupt(String),
    /// The checkpoint belongs to a different workload (stale spec hash)
    /// or its geometry disagrees with the persisted workload.
    SpecMismatch(String),
    /// The persisted workload text failed to parse.
    Workload(String),
    /// The restored workload was rejected by the helper-safety analysis.
    Analysis(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(m) => write!(f, "checkpoint io error: {m}"),
            CkptError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CkptError::SpecMismatch(m) => write!(f, "checkpoint/spec mismatch: {m}"),
            CkptError::Workload(m) => write!(f, "checkpoint workload unreadable: {m}"),
            CkptError::Analysis(m) => write!(f, "checkpoint workload rejected by analysis: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}

use cascade_core::fnv64;

/// Hash of a workload's canonical text form — the identity a checkpoint
/// is bound to. Resuming against an edited workload is refused.
pub fn spec_hash(workload_text: &str) -> u64 {
    fnv64(workload_text.as_bytes())
}

fn io_err(path: &Path, e: std::io::Error) -> CkptError {
    CkptError::Io(format!("{}: {e}", path.display()))
}

/// Durably write `bytes` as `dir/name`: temp file + fsync + rename +
/// directory fsync. After this returns, a crash cannot tear the file.
fn write_file_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let dst = dir.join(name);
    let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
    f.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    fs::rename(&tmp, &dst).map_err(|e| io_err(&dst, e))?;
    sync_dir(dir)
}

/// Make a rename durable by fsyncing the directory (no-op best effort on
/// platforms where directories cannot be opened).
fn sync_dir(dir: &Path) -> Result<(), CkptError> {
    #[cfg(unix)]
    {
        let d = File::open(dir).map_err(|e| io_err(dir, e))?;
        d.sync_all().map_err(|e| io_err(dir, e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

fn read_file(dir: &Path, name: &str) -> Result<Vec<u8>, CkptError> {
    let path = dir.join(name);
    let mut f = File::open(&path).map_err(|e| io_err(&path, e))?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf).map_err(|e| io_err(&path, e))?;
    Ok(buf)
}

/// One referenced data file: name, length, FNV-1a 64 content checksum.
#[derive(Debug, Clone)]
struct FileRecord {
    name: String,
    len: u64,
    sum: u64,
}

impl FileRecord {
    fn of(name: &str, bytes: &[u8]) -> FileRecord {
        FileRecord {
            name: name.to_string(),
            len: bytes.len() as u64,
            sum: fnv64(bytes),
        }
    }

    /// Read the file and verify length and checksum.
    fn load(&self, dir: &Path) -> Result<Vec<u8>, CkptError> {
        let bytes = read_file(dir, &self.name)?;
        if bytes.len() as u64 != self.len {
            return Err(CkptError::Corrupt(format!(
                "{}: length {} != manifest length {}",
                self.name,
                bytes.len(),
                self.len
            )));
        }
        let sum = fnv64(&bytes);
        if sum != self.sum {
            return Err(CkptError::Corrupt(format!(
                "{}: checksum {sum:016x} != manifest checksum {:016x}",
                self.name, self.sum
            )));
        }
        Ok(bytes)
    }
}

/// One incremental delta: post-state write-set capture over an exact
/// chunk/iteration span.
#[derive(Debug, Clone)]
struct DeltaRecord {
    file: FileRecord,
    from_chunk: u64,
    to_chunk: u64,
    from_iter: u64,
    to_iter: u64,
}

/// Static geometry a checkpoint records about the run it snapshots.
#[derive(Debug, Clone, Copy)]
pub struct CkptMeta {
    /// Index of the loop being run within the workload.
    pub loop_index: usize,
    /// Total iteration count of that loop.
    pub iters: u64,
    /// Chunk size the run was configured with (informational).
    pub iters_per_chunk: u64,
}

/// Writer side: owns a checkpoint directory and appends deltas, keeping
/// the on-disk `MANIFEST` crash-consistent at every step.
#[derive(Debug)]
pub struct CkptWriter {
    dir: PathBuf,
    spec_hash: u64,
    meta: CkptMeta,
    workload: FileRecord,
    base: FileRecord,
    deltas: Vec<DeltaRecord>,
    committed_chunks: u64,
    committed_iters: u64,
}

impl CkptWriter {
    /// Create a checkpoint directory: persist the workload text and the
    /// full base arena snapshot, then publish the initial manifest
    /// (zero committed chunks). `dir` is created if missing; an existing
    /// manifest in it is overwritten.
    pub fn create(
        dir: &Path,
        workload_text: &str,
        meta: CkptMeta,
        base: &[u8],
    ) -> Result<CkptWriter, CkptError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        write_file_atomic(dir, WORKLOAD, workload_text.as_bytes())?;
        write_file_atomic(dir, BASE, base)?;
        let w = CkptWriter {
            dir: dir.to_path_buf(),
            spec_hash: spec_hash(workload_text),
            meta,
            workload: FileRecord::of(WORKLOAD, workload_text.as_bytes()),
            base: FileRecord::of(BASE, base),
            deltas: Vec::new(),
            committed_chunks: 0,
            committed_iters: 0,
        };
        w.publish_manifest()?;
        Ok(w)
    }

    /// Chunks covered by the published manifest.
    pub fn committed_chunks(&self) -> u64 {
        self.committed_chunks
    }

    /// Iterations covered by the published manifest.
    pub fn committed_iters(&self) -> u64 {
        self.committed_iters
    }

    /// The directory this writer publishes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append a delta covering chunks `from_chunk..to_chunk` (iterations
    /// `from_iter..to_iter`): the data file is made durable first, then
    /// the manifest atomically advances to reference it. `bytes` must be
    /// a post-state [`RealKernel::journal_capture`] over exactly
    /// `from_iter..to_iter`.
    pub fn append_delta(
        &mut self,
        from_chunk: u64,
        to_chunk: u64,
        from_iter: u64,
        to_iter: u64,
        bytes: &[u8],
    ) -> Result<(), CkptError> {
        debug_assert_eq!(from_chunk, self.committed_chunks, "deltas are contiguous");
        debug_assert_eq!(from_iter, self.committed_iters, "deltas are contiguous");
        let name = format!("delta-{:06}.bin", self.deltas.len());
        write_file_atomic(&self.dir, &name, bytes)?;
        self.deltas.push(DeltaRecord {
            file: FileRecord::of(&name, bytes),
            from_chunk,
            to_chunk,
            from_iter,
            to_iter,
        });
        self.committed_chunks = to_chunk;
        self.committed_iters = to_iter;
        self.publish_manifest()
    }

    fn publish_manifest(&self) -> Result<(), CkptError> {
        let mut m = String::new();
        m.push_str(MANIFEST_HEADER);
        m.push('\n');
        m.push_str(&format!(
            "workload {} {} {:016x}\n",
            self.workload.name, self.workload.len, self.workload.sum
        ));
        m.push_str(&format!("spec_hash {:016x}\n", self.spec_hash));
        m.push_str(&format!("loop {}\n", self.meta.loop_index));
        m.push_str(&format!("iters {}\n", self.meta.iters));
        m.push_str(&format!("iters_per_chunk {}\n", self.meta.iters_per_chunk));
        m.push_str(&format!("committed_chunks {}\n", self.committed_chunks));
        m.push_str(&format!("committed_iters {}\n", self.committed_iters));
        m.push_str(&format!(
            "base {} {} {:016x}\n",
            self.base.name, self.base.len, self.base.sum
        ));
        for d in &self.deltas {
            m.push_str(&format!(
                "delta {} {} {} {} {} {} {:016x}\n",
                d.file.name,
                d.from_chunk,
                d.to_chunk,
                d.from_iter,
                d.to_iter,
                d.file.len,
                d.file.sum
            ));
        }
        m.push_str(&format!("checksum {:016x}\n", fnv64(m.as_bytes())));
        write_file_atomic(&self.dir, MANIFEST, m.as_bytes())
    }
}

/// A loaded, integrity-verified checkpoint, ready to restore.
#[derive(Debug)]
pub struct Checkpoint {
    workload_text: String,
    meta: CkptMeta,
    committed_chunks: u64,
    committed_iters: u64,
    base: Vec<u8>,
    deltas: Vec<(Range<u64>, Vec<u8>)>,
}

impl Checkpoint {
    /// The run geometry the checkpoint was taken under.
    pub fn meta(&self) -> CkptMeta {
        self.meta
    }

    /// Chunks covered by the checkpoint.
    pub fn committed_chunks(&self) -> u64 {
        self.committed_chunks
    }

    /// Iterations covered by the checkpoint — resume from exactly here.
    pub fn committed_iters(&self) -> u64 {
        self.committed_iters
    }

    /// Number of deltas the restore will replay.
    pub fn num_deltas(&self) -> usize {
        self.deltas.len()
    }

    /// The persisted workload in text format v1.
    pub fn workload_text(&self) -> &str {
        &self.workload_text
    }

    /// The pristine base arena snapshot — the run-start state, before any
    /// delta. A verifier can replay the whole loop from here and compare
    /// bitwise against the restored-and-finished state.
    pub fn base_bytes(&self) -> &[u8] {
        &self.base
    }

    /// Rebuild the program at the checkpointed state: parse the persisted
    /// workload, adopt the base snapshot as the arena, and replay every
    /// delta in order over its exact iteration range. Returns the program
    /// plus `committed_iters`; the caller finishes `committed_iters..iters`
    /// (sequentially or cascaded). The restored arena is bitwise identical
    /// to the live arena at the instant the last delta was captured.
    pub fn into_program(self) -> Result<(SpecProgram, u64), CkptError> {
        let workload =
            from_text(&self.workload_text).map_err(|e| CkptError::Workload(e.to_string()))?;
        if self.meta.loop_index >= workload.loops.len() {
            return Err(CkptError::SpecMismatch(format!(
                "manifest loop index {} out of range ({} loops)",
                self.meta.loop_index,
                workload.loops.len()
            )));
        }
        let iters = workload.loops[self.meta.loop_index].iters;
        if iters != self.meta.iters {
            return Err(CkptError::SpecMismatch(format!(
                "manifest iters {} != workload loop iters {iters}",
                self.meta.iters
            )));
        }
        if self.committed_iters > iters {
            return Err(CkptError::Corrupt(format!(
                "committed_iters {} exceeds loop iters {iters}",
                self.committed_iters
            )));
        }
        let arena = Arena::try_from_bytes(&workload.space, self.base)
            .map_err(|e| CkptError::SpecMismatch(e.to_string()))?;
        let prog =
            SpecProgram::new(workload, arena).map_err(|e| CkptError::Analysis(e.to_string()))?;
        {
            let kernel = prog.kernel(self.meta.loop_index);
            let mut scratch = Vec::new();
            for (range, bytes) in &self.deltas {
                if range.start >= range.end || range.end > iters {
                    return Err(CkptError::Corrupt(format!(
                        "delta range {}..{} out of bounds (iters {iters})",
                        range.start, range.end
                    )));
                }
                // Recompute the capture layout over the same range: the
                // restore is only sound when the stored bytes match it
                // exactly, so a wrong-length delta (corruption the
                // checksum happened to miss, or a footprint drift) is a
                // typed rejection, not a partial restore.
                // SAFETY: single-threaded restore — trivially exclusive.
                if !unsafe { kernel.journal_capture(range.clone(), &mut scratch) } {
                    return Err(CkptError::SpecMismatch(format!(
                        "write set of iterations {}..{} is no longer journalable",
                        range.start, range.end
                    )));
                }
                if scratch.len() != bytes.len() {
                    return Err(CkptError::Corrupt(format!(
                        "delta over {}..{} holds {} bytes, footprint layout needs {}",
                        range.start,
                        range.end,
                        bytes.len(),
                        scratch.len()
                    )));
                }
                // SAFETY: exclusive access (no run in flight), and the
                // layout was just verified against a fresh capture over
                // the identical range.
                unsafe { kernel.journal_rollback(range.clone(), bytes) };
            }
        }
        Ok((prog, self.committed_iters))
    }
}

/// Load and integrity-check the checkpoint in `dir`. Every failure mode —
/// missing files, torn manifest, flipped bits, truncation, wrong
/// workload — is a typed [`CkptError`]; a checkpoint that loads is safe
/// to restore.
pub fn load(dir: &Path) -> Result<Checkpoint, CkptError> {
    let manifest = read_file(dir, MANIFEST)?;
    let text = String::from_utf8(manifest)
        .map_err(|_| CkptError::Corrupt("manifest is not valid UTF-8".into()))?;
    // Verify the trailing self-checksum before trusting anything else:
    // a torn manifest write fails here.
    let body_end = text
        .trim_end_matches('\n')
        .rfind('\n')
        .map(|i| i + 1)
        .ok_or_else(|| CkptError::Corrupt("manifest has no checksum line".into()))?;
    let (body, tail) = text.split_at(body_end);
    let tail = tail.trim_end();
    let declared = tail
        .strip_prefix("checksum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| CkptError::Corrupt(format!("bad manifest checksum line: {tail:?}")))?;
    let actual = fnv64(body.as_bytes());
    if actual != declared {
        return Err(CkptError::Corrupt(format!(
            "manifest self-checksum {actual:016x} != declared {declared:016x} (torn or edited)"
        )));
    }

    let mut lines = body.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(CkptError::Corrupt(format!(
            "manifest header is not {MANIFEST_HEADER:?}"
        )));
    }
    let mut workload_rec: Option<FileRecord> = None;
    let mut declared_hash: Option<u64> = None;
    let mut loop_index: Option<usize> = None;
    let mut iters: Option<u64> = None;
    let mut iters_per_chunk: Option<u64> = None;
    let mut committed_chunks: Option<u64> = None;
    let mut committed_iters: Option<u64> = None;
    let mut base_rec: Option<FileRecord> = None;
    let mut deltas: Vec<DeltaRecord> = Vec::new();
    let corrupt = |line: &str| CkptError::Corrupt(format!("bad manifest line: {line:?}"));
    for line in lines {
        let mut f = line.split_whitespace();
        match f.next() {
            Some("workload") => {
                let (name, len, sum) = (f.next(), f.next(), f.next());
                workload_rec = Some(FileRecord {
                    name: name.ok_or_else(|| corrupt(line))?.to_string(),
                    len: parse_u64(len).ok_or_else(|| corrupt(line))?,
                    sum: parse_hex(sum).ok_or_else(|| corrupt(line))?,
                });
            }
            Some("spec_hash") => {
                declared_hash = Some(parse_hex(f.next()).ok_or_else(|| corrupt(line))?)
            }
            Some("loop") => {
                loop_index = Some(parse_u64(f.next()).ok_or_else(|| corrupt(line))? as usize)
            }
            Some("iters") => iters = Some(parse_u64(f.next()).ok_or_else(|| corrupt(line))?),
            Some("iters_per_chunk") => {
                iters_per_chunk = Some(parse_u64(f.next()).ok_or_else(|| corrupt(line))?)
            }
            Some("committed_chunks") => {
                committed_chunks = Some(parse_u64(f.next()).ok_or_else(|| corrupt(line))?)
            }
            Some("committed_iters") => {
                committed_iters = Some(parse_u64(f.next()).ok_or_else(|| corrupt(line))?)
            }
            Some("base") => {
                let (name, len, sum) = (f.next(), f.next(), f.next());
                base_rec = Some(FileRecord {
                    name: name.ok_or_else(|| corrupt(line))?.to_string(),
                    len: parse_u64(len).ok_or_else(|| corrupt(line))?,
                    sum: parse_hex(sum).ok_or_else(|| corrupt(line))?,
                });
            }
            Some("delta") => {
                let name = f.next().ok_or_else(|| corrupt(line))?.to_string();
                let from_chunk = parse_u64(f.next()).ok_or_else(|| corrupt(line))?;
                let to_chunk = parse_u64(f.next()).ok_or_else(|| corrupt(line))?;
                let from_iter = parse_u64(f.next()).ok_or_else(|| corrupt(line))?;
                let to_iter = parse_u64(f.next()).ok_or_else(|| corrupt(line))?;
                let len = parse_u64(f.next()).ok_or_else(|| corrupt(line))?;
                let sum = parse_hex(f.next()).ok_or_else(|| corrupt(line))?;
                deltas.push(DeltaRecord {
                    file: FileRecord { name, len, sum },
                    from_chunk,
                    to_chunk,
                    from_iter,
                    to_iter,
                });
            }
            _ => return Err(corrupt(line)),
        }
    }
    let missing = |what: &str| CkptError::Corrupt(format!("manifest is missing {what}"));
    let workload_rec = workload_rec.ok_or_else(|| missing("the workload entry"))?;
    let declared_hash = declared_hash.ok_or_else(|| missing("spec_hash"))?;
    let meta = CkptMeta {
        loop_index: loop_index.ok_or_else(|| missing("loop"))?,
        iters: iters.ok_or_else(|| missing("iters"))?,
        iters_per_chunk: iters_per_chunk.ok_or_else(|| missing("iters_per_chunk"))?,
    };
    let committed_chunks = committed_chunks.ok_or_else(|| missing("committed_chunks"))?;
    let committed_iters = committed_iters.ok_or_else(|| missing("committed_iters"))?;
    let base_rec = base_rec.ok_or_else(|| missing("the base entry"))?;

    let workload_bytes = workload_rec.load(dir)?;
    let workload_text = String::from_utf8(workload_bytes)
        .map_err(|_| CkptError::Corrupt("workload text is not valid UTF-8".into()))?;
    let actual_hash = spec_hash(&workload_text);
    if actual_hash != declared_hash {
        return Err(CkptError::SpecMismatch(format!(
            "workload hash {actual_hash:016x} != manifest spec_hash {declared_hash:016x} \
             (checkpoint taken under a different workload)"
        )));
    }
    let base = base_rec.load(dir)?;
    let mut loaded = Vec::with_capacity(deltas.len());
    let (mut chunk_cursor, mut iter_cursor) = (0u64, 0u64);
    for d in &deltas {
        if d.from_chunk != chunk_cursor || d.from_iter != iter_cursor || d.from_iter >= d.to_iter {
            return Err(CkptError::Corrupt(format!(
                "delta {} is not contiguous (chunks {}..{}, iters {}..{})",
                d.file.name, d.from_chunk, d.to_chunk, d.from_iter, d.to_iter
            )));
        }
        chunk_cursor = d.to_chunk;
        iter_cursor = d.to_iter;
        loaded.push((d.from_iter..d.to_iter, d.file.load(dir)?));
    }
    if chunk_cursor != committed_chunks || iter_cursor != committed_iters {
        return Err(CkptError::Corrupt(format!(
            "deltas cover {chunk_cursor} chunks / {iter_cursor} iters but manifest commits \
             {committed_chunks} / {committed_iters}"
        )));
    }
    Ok(Checkpoint {
        workload_text,
        meta,
        committed_chunks,
        committed_iters,
        base,
        deltas: loaded,
    })
}

fn parse_u64(s: Option<&str>) -> Option<u64> {
    s?.parse().ok()
}

fn parse_hex(s: Option<&str>) -> Option<u64> {
    u64::from_str_radix(s?, 16).ok()
}

/// Shared handle the leader's commit path drives: decides when a
/// checkpoint is due, captures the delta, and appends it. The mutex is
/// uncontended in steady state — chunk commits are token-serialized, so
/// at most one worker is in [`CkptSink::on_commit`] at a time.
#[derive(Clone)]
pub struct CkptSink {
    state: Arc<Mutex<CkptState>>,
}

struct CkptState {
    writer: CkptWriter,
    last_write: Instant,
    scratch: Vec<u8>,
    /// First write/capture failure: checkpointing disables itself (the
    /// run continues un-checkpointed) and the reason is reported here.
    error: Option<String>,
}

impl fmt::Debug for CkptSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = lock_recover(&self.state);
        f.debug_struct("CkptSink")
            .field("dir", &s.writer.dir)
            .field("committed_chunks", &s.writer.committed_chunks)
            .field("committed_iters", &s.writer.committed_iters)
            .field("error", &s.error)
            .finish()
    }
}

impl CkptSink {
    /// Wrap a freshly created writer.
    pub fn new(writer: CkptWriter) -> CkptSink {
        CkptSink {
            state: Arc::new(Mutex::new(CkptState {
                writer,
                last_write: Instant::now(),
                scratch: Vec::new(),
                error: None,
            })),
        }
    }

    /// Leader commit hook. `committed_chunks`/`committed_iters` describe
    /// the run state *after* the just-committed chunk; `chunk_start`
    /// maps a chunk index to its first iteration; `capture` is the
    /// kernel's post-state write-set capture over an iteration range.
    /// Returns the delta bytes written when a checkpoint was taken,
    /// `None` when not due, disabled, or skipped. Never panics the run:
    /// an I/O or capture failure records itself and disables further
    /// checkpointing.
    pub fn on_commit(
        &self,
        policy: CkptPolicy,
        committed_chunks: u64,
        committed_iters: u64,
        chunk_start: impl FnOnce(u64) -> u64,
        capture: impl FnOnce(Range<u64>, &mut Vec<u8>) -> bool,
    ) -> Option<u64> {
        let mut s = lock_recover(&self.state);
        if s.error.is_some() || committed_chunks <= s.writer.committed_chunks {
            return None;
        }
        let due = match policy {
            CkptPolicy::Off => false,
            CkptPolicy::EveryChunks(n) => committed_chunks - s.writer.committed_chunks >= n,
            CkptPolicy::EveryMillis(t) => s.last_write.elapsed() >= Duration::from_millis(t),
        };
        if !due {
            return None;
        }
        let from_chunk = s.writer.committed_chunks;
        let from_iter = chunk_start(from_chunk);
        debug_assert_eq!(from_iter, s.writer.committed_iters, "contiguous capture");
        let mut scratch = std::mem::take(&mut s.scratch);
        if !capture(from_iter..committed_iters, &mut scratch) {
            s.error = Some(format!(
                "write set of iterations {from_iter}..{committed_iters} is unjournalable; \
                 checkpointing disabled"
            ));
            s.scratch = scratch;
            return None;
        }
        let result = s.writer.append_delta(
            from_chunk,
            committed_chunks,
            from_iter,
            committed_iters,
            &scratch,
        );
        let bytes = scratch.len() as u64;
        s.scratch = scratch;
        s.last_write = Instant::now();
        match result {
            Ok(()) => Some(bytes),
            Err(e) => {
                s.error = Some(format!("{e}; checkpointing disabled"));
                None
            }
        }
    }

    /// The first failure that disabled checkpointing, if any.
    pub fn error(&self) -> Option<String> {
        lock_recover(&self.state).error.clone()
    }

    /// Chunks and iterations covered by the published manifest.
    pub fn committed(&self) -> (u64, u64) {
        let s = lock_recover(&self.state);
        (s.writer.committed_chunks, s.writer.committed_iters)
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> PathBuf {
        lock_recover(&self.state).writer.dir.clone()
    }
}

/// The checkpointing half of a governed run: policy plus sink, carried
/// by `Govern` and consulted once per chunk commit (a single `Option`
/// check when checkpointing is off).
#[derive(Debug, Clone)]
pub struct CkptRun {
    /// When checkpoints are due.
    pub policy: CkptPolicy,
    /// Where they go.
    pub sink: CkptSink,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("cascade-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    const META: CkptMeta = CkptMeta {
        loop_index: 0,
        iters: 16,
        iters_per_chunk: 4,
    };

    #[test]
    fn manifest_roundtrip_with_deltas() {
        let dir = tmpdir("roundtrip");
        let mut w = CkptWriter::create(&dir, "fake workload", META, &[1, 2, 3, 4]).unwrap();
        w.append_delta(0, 1, 0, 4, &[9, 9]).unwrap();
        w.append_delta(1, 3, 4, 12, &[7; 5]).unwrap();
        // `load` verifies checksums but not the workload text format —
        // parsing happens in `into_program`, so a fake workload exercises
        // the manifest layer in isolation.
        let ck = load(&dir).unwrap();
        assert_eq!(ck.committed_chunks(), 3);
        assert_eq!(ck.committed_iters(), 12);
        assert_eq!(ck.num_deltas(), 2);
        assert_eq!(ck.workload_text(), "fake workload");
        assert_eq!(ck.base, vec![1, 2, 3, 4]);
        assert_eq!(ck.deltas[0], (0..4, vec![9, 9]));
        assert_eq!(ck.deltas[1], (4..12, vec![7; 5]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_is_rejected() {
        let dir = tmpdir("torn");
        let mut w = CkptWriter::create(&dir, "w", META, &[0; 8]).unwrap();
        w.append_delta(0, 1, 0, 4, &[1, 2, 3]).unwrap();
        let path = dir.join(MANIFEST);
        let text = fs::read_to_string(&path).unwrap();
        // Simulate a torn write: the tail (including the self-checksum
        // line) never hit the disk.
        fs::write(&path, &text[..text.len() - 10]).unwrap();
        match load(&dir) {
            Err(CkptError::Corrupt(_)) => {}
            other => panic!("torn manifest must be Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_in_data_file_is_rejected() {
        let dir = tmpdir("bitflip");
        let mut w = CkptWriter::create(&dir, "w", META, &[5; 32]).unwrap();
        w.append_delta(0, 1, 0, 4, &[1, 2, 3, 4]).unwrap();
        let path = dir.join("delta-000000.bin");
        let mut bytes = fs::read(&path).unwrap();
        bytes[2] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        match load(&dir) {
            Err(CkptError::Corrupt(m)) => assert!(m.contains("checksum"), "{m}"),
            other => panic!("bit flip must be Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_base_is_rejected() {
        let dir = tmpdir("trunc");
        let _w = CkptWriter::create(&dir, "w", META, &[5; 32]).unwrap();
        let path = dir.join(BASE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..16]).unwrap();
        match load(&dir) {
            Err(CkptError::Corrupt(m)) => assert!(m.contains("length"), "{m}"),
            other => panic!("truncation must be Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_spec_hash_is_rejected() {
        let dir = tmpdir("stale");
        let _w = CkptWriter::create(&dir, "original workload", META, &[0; 8]).unwrap();
        // The workload file changes after the checkpoint was taken (same
        // length, so only the hash binding catches it).
        fs::write(dir.join(WORKLOAD), "tampered workload").unwrap();
        match load(&dir) {
            Err(CkptError::SpecMismatch(m)) => assert!(m.contains("spec_hash"), "{m}"),
            Err(CkptError::Corrupt(_)) => {} // length drift also acceptable
            other => panic!("stale workload must be rejected, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_io() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        match load(&dir) {
            Err(CkptError::Io(_)) => {}
            other => panic!("missing manifest must be Io, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_honours_every_chunks_policy() {
        let dir = tmpdir("policy");
        let w = CkptWriter::create(&dir, "w", META, &[0; 8]).unwrap();
        let sink = CkptSink::new(w);
        let cap = |_r: Range<u64>, buf: &mut Vec<u8>| {
            buf.clear();
            buf.extend_from_slice(&[1, 2]);
            true
        };
        // Not due after one chunk under EveryChunks(2).
        assert_eq!(
            sink.on_commit(CkptPolicy::EveryChunks(2), 1, 4, |_| 0, cap),
            None
        );
        // Due after the second.
        assert_eq!(
            sink.on_commit(CkptPolicy::EveryChunks(2), 2, 8, |_| 0, cap),
            Some(2)
        );
        assert_eq!(sink.committed(), (2, 8));
        // Re-delivery of an already-covered commit is a no-op.
        assert_eq!(
            sink.on_commit(CkptPolicy::EveryChunks(1), 2, 8, |_| 8, cap),
            None
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_disables_itself_on_unjournalable_capture() {
        let dir = tmpdir("disable");
        let w = CkptWriter::create(&dir, "w", META, &[0; 8]).unwrap();
        let sink = CkptSink::new(w);
        assert_eq!(
            sink.on_commit(CkptPolicy::EveryChunks(1), 1, 4, |_| 0, |_, _| false),
            None
        );
        assert!(sink.error().unwrap().contains("unjournalable"));
        // Permanently disabled, even for a journalable later capture.
        assert_eq!(
            sink.on_commit(
                CkptPolicy::EveryChunks(1),
                2,
                8,
                |_| 0,
                |_r, b: &mut Vec<u8>| {
                    b.push(1);
                    true
                }
            ),
            None
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! The cascade runner: real threads rotating execution of one sequential
//! loop, exactly as in Figure 1(b) of the paper.
//!
//! Thread `t` owns chunks `t, t+T, t+2T, ...`. While waiting for the token
//! it runs its helper (prefetch or pack) for its next chunk, polling the
//! token every `poll_batch` iterations — the paper's jump-out-of-helper
//! modification at batch granularity. On token arrival it executes its
//! chunk (packed prefix first, original body for any unpacked remainder)
//! and releases the token to the next chunk.
//!
//! ## Fault tolerance
//!
//! The fallible entry points [`try_run_cascaded`] /
//! [`try_run_cascaded_sequence`] accept a [`Tolerance`] and return a typed
//! [`RunError`] instead of panicking (see `docs/ROBUSTNESS.md`):
//!
//! * every worker catches its own panics per chunk and poisons the token
//!   with a [`PoisonCause::Panicked`] diagnostic (thread, chunk, message);
//! * with a watchdog window set, waiters use bounded token waits and
//!   declare a stall — poisoning the token with [`PoisonCause::Stalled`] —
//!   when the token does not move for a whole window;
//! * token hand-off is a compare-and-swap ([`Token::try_release`]), so a
//!   worker the watchdog declared dead can finish late ([`
//!   FaultEvent::LateCompletion`]) but can never resurrect a poisoned
//!   token;
//! * with salvage enabled, after every worker has joined (join gives both
//!   exclusivity and the happens-before edge) the calling thread finishes
//!   the remaining iteration range sequentially, producing a bitwise
//!   sequential-identical result flagged [`RunStats::degraded`].
//!
//! The original panicking entry points remain as thin shims over the
//! fallible ones with a default (non-salvaging) [`Tolerance`].

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cascade_core::ChunkPlan;

use crate::barrier::{BarrierOutcome, FtBarrier};
use crate::kernel::RealKernel;
use crate::token::{PoisonCause, Token, WaitOutcome};

/// Helper policy of the real-thread runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtPolicy {
    /// Spin only (the rotation-overhead ablation).
    None,
    /// Prefetch upcoming operands while waiting.
    Prefetch,
    /// Pack read-only operands into a thread-local sequential buffer while
    /// waiting; falls back to the original body for unpacked iterations.
    Restructure,
}

impl RtPolicy {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RtPolicy::None => "none",
            RtPolicy::Prefetch => "prefetched",
            RtPolicy::Restructure => "restructured",
        }
    }
}

/// Runner parameters.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Number of worker threads (processors of the cascade).
    pub nthreads: usize,
    /// Iterations per chunk (the real-runtime analogue of the byte budget;
    /// callers with a [`cascade_trace::LoopSpec`] can derive it from
    /// `chunk_bytes / spec.bytes_per_iter()`).
    pub iters_per_chunk: u64,
    /// Helper policy.
    pub policy: RtPolicy,
    /// Helper iterations between token polls (jump-out granularity).
    pub poll_batch: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            nthreads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            iters_per_chunk: 4096,
            policy: RtPolicy::Restructure,
            poll_batch: 64,
        }
    }
}

/// Fault-tolerance policy of a run, separate from [`RunnerConfig`] so the
/// performance knobs stay orthogonal to the failure-handling ones.
#[derive(Debug, Clone, Default)]
pub struct Tolerance {
    /// Progress-watchdog window: when set, a waiter that sees no token
    /// movement at all for a whole window declares a stall and poisons the
    /// token. `None` (the default) waits unboundedly, like the original
    /// runtime. Note the watchdog is waiter-driven: a single-thread
    /// cascade has no waiters and therefore no stall detection (it cannot
    /// deadlock on the token either — it always holds it).
    pub watchdog: Option<Duration>,
    /// After a fault, finish the remaining iteration range sequentially on
    /// the calling thread (bitwise-identical result, `degraded` stats)
    /// instead of returning the error. Salvage is refused — the error is
    /// returned — when a chunk body was interrupted mid-flight and the
    /// kernel does not promise fail-stop panics
    /// ([`RealKernel::panics_before_mutation`]), because re-running a
    /// half-applied chunk could double-apply writes.
    pub salvage: bool,
}

impl Tolerance {
    /// Watchdog plus salvage: detect stalls within `window` and fall back
    /// to sequential execution on any fault.
    pub fn resilient(window: Duration) -> Self {
        Tolerance {
            watchdog: Some(window),
            salvage: true,
        }
    }
}

/// A typed failure of a cascaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configuration or kernel set is unusable (zero threads, empty
    /// chunks, zero poll batch, empty kernel...).
    InvalidConfig(String),
    /// A worker panicked; the diagnostic names the thread and chunk.
    WorkerPanicked {
        /// Worker thread index (0-based).
        thread: u64,
        /// Chunk the worker owned (or was about to own).
        chunk: u64,
    },
    /// The progress watchdog declared a stall: no token movement for a
    /// whole window.
    Stalled {
        /// The chunk the token was stuck on.
        chunk: u64,
        /// How long the waiter watched the token not move.
        waited: Duration,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidConfig(msg) => write!(f, "invalid cascade configuration: {msg}"),
            RunError::WorkerPanicked { thread, chunk } => {
                write!(f, "worker thread {thread} panicked on chunk {chunk}")
            }
            RunError::Stalled { chunk, waited } => {
                write!(
                    f,
                    "cascade stalled on chunk {chunk} ({waited:?} without progress)"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Something abnormal that happened during a run, in observation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A worker panicked (caught; the token was poisoned with the cause).
    WorkerPanicked {
        /// Worker thread index.
        thread: u64,
        /// Chunk it owned or was about to own.
        chunk: u64,
        /// Stringified panic payload.
        message: String,
    },
    /// A waiter declared a stall after a full watchdog window without any
    /// token movement.
    StallDeclared {
        /// The chunk the token was stuck on.
        chunk: u64,
        /// The window the waiter watched.
        waited: Duration,
    },
    /// A worker declared dead finished its chunk after the poisoning; the
    /// chunk still executed exactly once (the CAS hand-off refused its
    /// release, so the poison stands).
    LateCompletion {
        /// The late worker.
        thread: u64,
        /// The chunk it completed late.
        chunk: u64,
    },
    /// The calling thread finished the remaining range sequentially.
    Salvaged {
        /// First chunk the salvage re-ran (all earlier chunks completed).
        from_chunk: u64,
        /// Iterations executed by the salvage.
        iters: u64,
    },
}

/// Per-thread execution statistics.
#[derive(Debug, Default, Clone)]
pub struct ThreadStats {
    /// Chunks executed by this thread.
    pub chunks: u64,
    /// Iterations covered by helper work before their execution phase.
    pub helper_iters: u64,
    /// Chunks whose helper covered every iteration.
    pub helper_complete: u64,
    /// Nanoseconds inside execution phases.
    pub exec_ns: u128,
    /// Nanoseconds inside helper work.
    pub helper_ns: u128,
    /// Nanoseconds spent pure-spinning on the token.
    pub spin_ns: u128,
}

/// Whole-run statistics.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock duration of the cascaded loop (for a degraded run, of
    /// the sequential salvage that completed it).
    pub elapsed: Duration,
    /// Total chunks executed.
    pub chunks: u64,
    /// Total iterations of the loop.
    pub iters: u64,
    /// Per-thread breakdown.
    pub threads: Vec<ThreadStats>,
    /// Whether the run survived a fault by falling back to sequential
    /// execution (the result is still bitwise sequential-identical).
    pub degraded: bool,
    /// Abnormal events observed during the run, in order.
    pub faults: Vec<FaultEvent>,
}

impl RunStats {
    /// Fraction of iterations covered by helper work, in [0, 1].
    pub fn helper_coverage(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        let helped: u64 = self.threads.iter().map(|t| t.helper_iters).sum();
        helped as f64 / self.iters as f64
    }
}

/// Execute `kernel` sequentially (the baseline), returning the wall time.
pub fn run_sequential<K: RealKernel>(kernel: &K) -> Duration {
    let start = Instant::now();
    // SAFETY: single-threaded call; trivially exclusive.
    unsafe { kernel.execute(0..kernel.iters()) };
    start.elapsed()
}

fn validate(cfg: &RunnerConfig) -> Result<(), RunError> {
    if cfg.nthreads < 1 {
        return Err(RunError::InvalidConfig("need at least one thread".into()));
    }
    if cfg.iters_per_chunk < 1 {
        return Err(RunError::InvalidConfig("chunks must be non-empty".into()));
    }
    if cfg.poll_batch < 1 {
        return Err(RunError::InvalidConfig(
            "poll batch must be positive".into(),
        ));
    }
    Ok(())
}

fn run_error_from(cause: &PoisonCause) -> RunError {
    match cause {
        PoisonCause::Panicked { thread, chunk, .. } => RunError::WorkerPanicked {
            thread: *thread,
            chunk: *chunk,
        },
        PoisonCause::Stalled { chunk, waited } => RunError::Stalled {
            chunk: *chunk,
            waited: *waited,
        },
        // Unreachable for tokens this module creates, but kept total.
        PoisonCause::Unspecified => RunError::WorkerPanicked {
            thread: 0,
            chunk: 0,
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared fault-handling state of one cascaded loop run.
#[derive(Default)]
struct FtRun {
    token: Token,
    /// `fetch_max(j + 1)` after chunk `j`'s body: chunks `0..completed`
    /// executed exactly once. Token serialization completes chunks in
    /// order, so this is the exact salvage resume point.
    completed: AtomicU64,
    faults: Mutex<Vec<FaultEvent>>,
    /// Set when a chunk body was interrupted mid-flight by a kernel that
    /// makes no fail-stop promise — re-running it could double-apply
    /// writes, so salvage must be refused.
    salvage_unsound: AtomicBool,
}

impl FtRun {
    fn record(&self, ev: FaultEvent) {
        self.faults.lock().unwrap().push(ev);
    }

    fn take_faults(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut *self.faults.lock().unwrap())
    }

    /// A worker panicked at (or on the way to) `chunk`: record and poison.
    fn fail(&self, thread: u64, chunk: u64, payload: Box<dyn std::any::Any + Send>) {
        let message = panic_message(payload.as_ref());
        self.record(FaultEvent::WorkerPanicked {
            thread,
            chunk,
            message: message.clone(),
        });
        self.token.poison_with(PoisonCause::Panicked {
            thread,
            chunk,
            message,
        });
    }
}

/// Execute `kernel` under cascaded execution with `cfg` (panicking shim;
/// prefer [`try_run_cascaded`]).
///
/// # Panics
///
/// Panics on an invalid configuration, an empty kernel, or a worker fault
/// — with the [`RunError`] display as the message.
pub fn run_cascaded<K: RealKernel>(kernel: &K, cfg: &RunnerConfig) -> RunStats {
    match try_run_cascaded(kernel, cfg, &Tolerance::default()) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// Execute `kernel` under cascaded execution with `cfg`, handling faults
/// per `tol` and returning a typed [`RunError`] instead of panicking.
pub fn try_run_cascaded<K: RealKernel>(
    kernel: &K,
    cfg: &RunnerConfig,
    tol: &Tolerance,
) -> Result<RunStats, RunError> {
    validate(cfg)?;
    let iters = kernel.iters();
    if iters == 0 {
        return Err(RunError::InvalidConfig("empty kernel".into()));
    }
    let plan = ChunkPlan::by_iterations(iters, cfg.iters_per_chunk);
    let m = plan.num_chunks();
    let run = FtRun::default();

    let start = Instant::now();
    let threads: Vec<ThreadStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.nthreads)
            .map(|t| {
                let (plan, run) = (&plan, &run);
                s.spawn(move || ft_worker(kernel, cfg, tol, plan, run, t as u64))
            })
            .collect();
        // Workers catch their own panics and report through the token, so
        // join only fails if the panic machinery itself misbehaved.
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let elapsed = start.elapsed();
    let mut faults = run.take_faults();

    let Some(cause) = run.token.poison_cause() else {
        debug_assert_eq!(
            run.token.current(),
            m,
            "token must end one past the last chunk"
        );
        return Ok(RunStats {
            elapsed,
            chunks: m,
            iters,
            threads,
            degraded: false,
            faults,
        });
    };

    // --- degraded path: a worker panicked or the cascade stalled ---
    let err = run_error_from(&cause);
    if !tol.salvage || run.salvage_unsound.load(Ordering::Acquire) {
        return Err(err);
    }
    let done = run.completed.load(Ordering::Acquire);
    if done < m {
        let resume = plan.range(done).start;
        // SAFETY: every worker has joined, so this thread has exclusive
        // access and all completed chunks' writes happen-before it.
        let salvage = catch_unwind(AssertUnwindSafe(|| unsafe {
            kernel.execute(resume..iters)
        }));
        if salvage.is_err() {
            // The kernel fails even sequentially: report the original fault.
            return Err(err);
        }
        faults.push(FaultEvent::Salvaged {
            from_chunk: done,
            iters: iters - resume,
        });
    }
    Ok(RunStats {
        elapsed: start.elapsed(),
        chunks: m,
        iters,
        threads,
        degraded: true,
        faults,
    })
}

/// Execute a whole loop *sequence* (e.g. PARMVR's fifteen loops) under
/// cascaded execution with one persistent pool of worker threads
/// (panicking shim; prefer [`try_run_cascaded_sequence`]).
///
/// # Panics
///
/// Panics on an invalid configuration, an empty kernel sequence, or a
/// worker fault — with the [`RunError`] display as the message.
pub fn run_cascaded_sequence<K: RealKernel>(kernels: &[K], cfg: &RunnerConfig) -> Vec<RunStats> {
    match try_run_cascaded_sequence(kernels, cfg, &Tolerance::default()) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// Execute a loop sequence under cascaded execution with one persistent
/// pool of worker threads, handling faults per `tol`. Loops are separated
/// by a poisonable barrier ([`FtBarrier`]) — the analogue of the
/// application code between unparallelized loops — which both orders the
/// loops (helpers for loop `i+1` must not read operands loop `i` is still
/// writing) and provides the happens-before edge between them. A fault in
/// loop `l` poisons the tokens of loops `l..` and the barrier, so the pool
/// drains promptly; with salvage enabled the calling thread then finishes
/// loop `l` from its last completed chunk and runs every later loop
/// sequentially. Returns one [`RunStats`] per kernel, in order.
pub fn try_run_cascaded_sequence<K: RealKernel>(
    kernels: &[K],
    cfg: &RunnerConfig,
    tol: &Tolerance,
) -> Result<Vec<RunStats>, RunError> {
    validate(cfg)?;
    if kernels.is_empty() {
        return Err(RunError::InvalidConfig("empty kernel sequence".into()));
    }
    for k in kernels {
        if k.iters() == 0 {
            return Err(RunError::InvalidConfig("empty kernel".into()));
        }
    }
    let plans: Vec<ChunkPlan> = kernels
        .iter()
        .map(|k| ChunkPlan::by_iterations(k.iters(), cfg.iters_per_chunk))
        .collect();
    let runs: Vec<FtRun> = kernels.iter().map(|_| FtRun::default()).collect();
    let barrier = FtBarrier::new(cfg.nthreads);
    let loop_starts: Vec<Mutex<Option<Instant>>> =
        kernels.iter().map(|_| Mutex::new(None)).collect();
    let loop_ends: Vec<Mutex<Option<Instant>>> = kernels.iter().map(|_| Mutex::new(None)).collect();

    // per_thread[t][l] = stats of thread t on loop l (may stop short when
    // a fault drained the pool).
    let per_thread: Vec<Vec<ThreadStats>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.nthreads)
            .map(|t| {
                let (plans, runs, barrier) = (&plans, &runs, &barrier);
                let (loop_starts, loop_ends) = (&loop_starts, &loop_ends);
                s.spawn(move || {
                    let mut all = Vec::with_capacity(kernels.len());
                    'seq: for (l, kernel) in kernels.iter().enumerate() {
                        match barrier.wait() {
                            BarrierOutcome::Poisoned => break 'seq,
                            out if out.is_leader() => {
                                *loop_starts[l].lock().unwrap() = Some(Instant::now());
                            }
                            _ => {}
                        }
                        all.push(ft_worker(kernel, cfg, tol, &plans[l], &runs[l], t as u64));
                        if let Some(cause) = runs[l].token.poison_cause() {
                            // Propagate the fault: no worker may block on a
                            // loop that will never start, and the poisoned
                            // barrier wakes everyone already waiting.
                            for later in &runs[l + 1..] {
                                later.token.poison_with(cause.clone());
                            }
                            barrier.poison();
                            break 'seq;
                        }
                        match barrier.wait() {
                            BarrierOutcome::Poisoned => break 'seq,
                            out if out.is_leader() => {
                                *loop_ends[l].lock().unwrap() = Some(Instant::now());
                            }
                            _ => {}
                        }
                    }
                    all
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let thread_stats_for = |l: usize| -> Vec<ThreadStats> {
        per_thread
            .iter()
            .map(|tv| tv.get(l).cloned().unwrap_or_default())
            .collect()
    };
    let healthy_stats = |l: usize| -> RunStats {
        let start = loop_starts[l]
            .lock()
            .unwrap()
            .expect("leader stamped start");
        let end = loop_ends[l].lock().unwrap().expect("leader stamped end");
        RunStats {
            elapsed: end.duration_since(start),
            chunks: plans[l].num_chunks(),
            iters: kernels[l].iters(),
            threads: thread_stats_for(l),
            degraded: false,
            faults: runs[l].take_faults(),
        }
    };

    let Some(l0) = runs.iter().position(|r| r.token.poison_cause().is_some()) else {
        return Ok((0..kernels.len()).map(healthy_stats).collect());
    };

    // --- degraded path ---
    let cause = runs[l0]
        .token
        .poison_cause()
        .expect("position found a cause");
    let err = run_error_from(&cause);
    if !tol.salvage
        || runs
            .iter()
            .any(|r| r.salvage_unsound.load(Ordering::Acquire))
    {
        return Err(err);
    }
    let mut out: Vec<RunStats> = (0..l0).map(healthy_stats).collect();
    // Finish loop l0 from its last completed chunk, then run every later
    // loop start-to-end, all sequentially on this thread. Every worker has
    // joined, so exclusivity and happens-before hold.
    for l in l0..kernels.len() {
        let mut faults = runs[l].take_faults();
        let m = plans[l].num_chunks();
        let iters = kernels[l].iters();
        let done = runs[l].completed.load(Ordering::Acquire);
        let resume = if done < m {
            plans[l].range(done).start
        } else {
            iters
        };
        let t0 = Instant::now();
        if resume < iters {
            // SAFETY: all workers joined; single-threaded remainder.
            let salvage = catch_unwind(AssertUnwindSafe(|| unsafe {
                kernels[l].execute(resume..iters)
            }));
            if salvage.is_err() {
                return Err(err);
            }
            faults.push(FaultEvent::Salvaged {
                from_chunk: done,
                iters: iters - resume,
            });
        }
        out.push(RunStats {
            elapsed: t0.elapsed(),
            chunks: m,
            iters,
            threads: thread_stats_for(l),
            degraded: true,
            faults,
        });
    }
    Ok(out)
}

/// Helper work for chunk `j` (covering `range`): prefetch or pack until
/// the token arrives or the range is exhausted. Returns
/// `(packed_iters, helped_iters)`.
fn helper_phase<K: RealKernel>(
    kernel: &K,
    cfg: &RunnerConfig,
    token: &Token,
    j: u64,
    range: &Range<u64>,
    buf: &mut Vec<u8>,
) -> (u64, u64) {
    let mut packed_iters = 0u64;
    let mut helped_iters = 0u64;
    match cfg.policy {
        RtPolicy::None => {}
        RtPolicy::Prefetch => {
            let mut i = range.start;
            while !token.is_granted(j) && i < range.end {
                let batch_end = (i + cfg.poll_batch).min(range.end);
                for ii in i..batch_end {
                    kernel.prefetch_iter(ii);
                }
                helped_iters += batch_end - i;
                i = batch_end;
            }
        }
        RtPolicy::Restructure => {
            buf.clear();
            let mut i = range.start;
            let mut supported = true;
            while supported && !token.is_granted(j) && i < range.end {
                let batch_end = (i + cfg.poll_batch).min(range.end);
                for ii in i..batch_end {
                    if !kernel.pack_iter(ii, buf) {
                        supported = false;
                        break;
                    }
                    packed_iters += 1;
                }
                i = range.start + packed_iters;
                if !supported {
                    // Kernel cannot pack: degrade to nothing packed.
                    buf.clear();
                    packed_iters = 0;
                }
            }
            helped_iters = packed_iters;
        }
    }
    (packed_iters, helped_iters)
}

/// Wait for chunk `j`. `true` = granted, `false` = token poisoned. With a
/// watchdog window, the waiter re-arms its deadline every time the token
/// moves; a full window with no movement at all declares a stall.
fn wait_watchdog(run: &FtRun, j: u64, tol: &Tolerance) -> bool {
    let Some(window) = tol.watchdog else {
        return matches!(
            run.token.wait_for_deadline(j, None),
            WaitOutcome::Granted { .. }
        );
    };
    loop {
        let observed = run.token.current();
        match run
            .token
            .wait_for_deadline(j, Some(Instant::now() + window))
        {
            WaitOutcome::Granted { .. } => return true,
            WaitOutcome::Poisoned(_) => return false,
            WaitOutcome::TimedOut { waited } => {
                if run.token.current() == observed {
                    // Nobody moved the token for a whole window: its holder
                    // is dead or stalled beyond tolerance. First poisoner
                    // wins; it alone records the event.
                    if run.token.poison_with(PoisonCause::Stalled {
                        chunk: observed,
                        waited,
                    }) {
                        run.record(FaultEvent::StallDeclared {
                            chunk: observed,
                            waited,
                        });
                    }
                    return false;
                }
                // The cascade is advancing, just not to us yet: re-arm.
            }
        }
    }
}

fn ft_worker<K: RealKernel>(
    kernel: &K,
    cfg: &RunnerConfig,
    tol: &Tolerance,
    plan: &ChunkPlan,
    run: &FtRun,
    t: u64,
) -> ThreadStats {
    let mut stats = ThreadStats::default();
    let mut buf: Vec<u8> = Vec::new();
    let m = plan.num_chunks();
    let step = cfg.nthreads as u64;
    let mut j = t;
    while j < m {
        let range = plan.range(j);
        let range_len = range.end - range.start;

        // --- helper phase (with jump-out at poll_batch granularity) ---
        let helper_start = Instant::now();
        let helper = catch_unwind(AssertUnwindSafe(|| {
            helper_phase(kernel, cfg, &run.token, j, &range, &mut buf)
        }));
        let (packed_iters, helped_iters) = match helper {
            Ok(counts) => counts,
            Err(payload) => {
                // Helpers never touch loop-written state, so the chunk body
                // is untouched; salvage stays sound.
                run.fail(t, j, payload);
                return stats;
            }
        };
        stats.helper_ns += helper_start.elapsed().as_nanos();
        stats.helper_iters += helped_iters;
        if helped_iters >= range_len && !matches!(cfg.policy, RtPolicy::None) {
            stats.helper_complete += 1;
        }

        // --- wait for the token (bounded when a watchdog is configured) ---
        let spin_start = Instant::now();
        let granted = wait_watchdog(run, j, tol);
        stats.spin_ns += spin_start.elapsed().as_nanos();
        if !granted {
            return stats; // poisoned: the supervisor handles recovery
        }

        // --- execution phase ---
        let exec_start = Instant::now();
        let exec = catch_unwind(AssertUnwindSafe(|| {
            let packed_end = range.start + packed_iters;
            // SAFETY: we hold the token for chunk j: the protocol
            // serializes all execute calls and release_to/wait_for form
            // Release/Acquire edges making prior chunks' writes visible.
            unsafe {
                if packed_iters > 0 {
                    kernel.execute_packed(range.start..packed_end, &buf);
                    if packed_end < range.end {
                        kernel.execute(packed_end..range.end);
                    }
                } else {
                    kernel.execute(range.clone());
                }
            }
        }));
        if let Err(payload) = exec {
            // The chunk body was interrupted. Unless the kernel promises
            // fail-stop panics, part of the chunk's writes may have landed
            // and re-running it could double-apply them.
            if !kernel.panics_before_mutation() {
                run.salvage_unsound.store(true, Ordering::Release);
            }
            run.fail(t, j, payload);
            return stats;
        }
        stats.exec_ns += exec_start.elapsed().as_nanos();
        stats.chunks += 1;
        run.completed.fetch_max(j + 1, Ordering::AcqRel);

        if !run.token.try_release(j, j + 1) {
            // Poisoned while we executed (the watchdog declared us dead).
            // The chunk still completed exactly once — record and drain.
            run.record(FaultEvent::LateCompletion {
                thread: t,
                chunk: j,
            });
            return stats;
        }
        j += step;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, FaultyKernel};
    use std::cell::UnsafeCell;

    /// prefix-sum-style kernel: order-sensitive across the whole loop.
    struct Chain {
        data: UnsafeCell<Vec<f64>>,
    }
    // SAFETY: `data` is only mutated inside `execute`, serialized by the
    // runner's token protocol.
    unsafe impl Sync for Chain {}
    impl Chain {
        fn new(n: usize) -> Self {
            Chain {
                data: UnsafeCell::new((0..n).map(|i| (i % 97) as f64 * 0.25 + 0.1).collect()),
            }
        }
        fn into_data(self) -> Vec<f64> {
            self.data.into_inner()
        }
    }
    impl RealKernel for Chain {
        fn iters(&self) -> u64 {
            // SAFETY: read of the length; no concurrent mutation outside
            // execute, which does not change the length.
            unsafe { (*self.data.get()).len() as u64 - 1 }
        }
        unsafe fn execute(&self, range: Range<u64>) {
            // SAFETY: exclusive per the trait contract.
            let d = unsafe { &mut *self.data.get() };
            for i in range {
                let i = i as usize;
                // Loop-carried dependence: unparallelizable by design.
                d[i + 1] = (d[i + 1] * 0.5 + d[i] * 0.75).sin() + d[i + 1];
            }
        }
    }

    fn seq_result(n: usize) -> Vec<f64> {
        let k = Chain::new(n);
        // SAFETY: single-threaded.
        unsafe { k.execute(0..k.iters()) };
        k.into_data()
    }

    #[test]
    fn cascaded_matches_sequential_bitwise() {
        let n = 20_000;
        let expected = seq_result(n);
        for threads in [1usize, 2, 3, 4] {
            let k = Chain::new(n);
            let cfg = RunnerConfig {
                nthreads: threads,
                iters_per_chunk: 700,
                policy: RtPolicy::None,
                poll_batch: 16,
            };
            let stats = run_cascaded(&k, &cfg);
            assert_eq!(stats.chunks, (n as u64 - 1).div_ceil(700));
            assert!(!stats.degraded);
            assert!(stats.faults.is_empty());
            let got = k.into_data();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn all_chunks_execute_exactly_once() {
        let n = 10_000;
        let k = Chain::new(n);
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 512,
            policy: RtPolicy::Prefetch,
            poll_batch: 32,
        };
        let stats = run_cascaded(&k, &cfg);
        let total: u64 = stats.threads.iter().map(|t| t.chunks).sum();
        assert_eq!(total, stats.chunks);
        assert_eq!(stats.iters, n as u64 - 1);
    }

    #[test]
    fn single_thread_cascade_degenerates_to_sequential_result() {
        let n = 5_000;
        let expected = seq_result(n);
        let k = Chain::new(n);
        let stats = run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: 1,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 1,
            },
        );
        assert_eq!(stats.threads.len(), 1);
        assert_eq!(k.into_data(), expected);
    }

    #[test]
    fn oversized_chunk_yields_one_chunk() {
        let k = Chain::new(100);
        let stats = run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 1_000_000,
                policy: RtPolicy::None,
                poll_batch: 1,
            },
        );
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.threads[0].chunks + stats.threads[1].chunks, 1);
    }

    #[test]
    #[should_panic(expected = "empty kernel")]
    fn empty_kernel_is_rejected() {
        let k = Chain::new(1); // iters() == 0
        run_cascaded(&k, &RunnerConfig::default());
    }

    #[test]
    fn try_run_reports_invalid_config_instead_of_panicking() {
        let k = Chain::new(100);
        for bad in [
            RunnerConfig {
                nthreads: 0,
                ..RunnerConfig::default()
            },
            RunnerConfig {
                iters_per_chunk: 0,
                ..RunnerConfig::default()
            },
            RunnerConfig {
                poll_batch: 0,
                ..RunnerConfig::default()
            },
        ] {
            match try_run_cascaded(&k, &bad, &Tolerance::default()) {
                Err(RunError::InvalidConfig(_)) => {}
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn injected_panic_is_salvaged_bitwise() {
        let n = 6_000;
        let expected = seq_result(n);
        for threads in [1usize, 2, 3] {
            let plan = FaultPlan::new(100).inject(7, FaultKind::Panic);
            let k = FaultyKernel::new(Chain::new(n), plan);
            let cfg = RunnerConfig {
                nthreads: threads,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 4,
            };
            let stats =
                try_run_cascaded(&k, &cfg, &Tolerance::resilient(Duration::from_millis(50)))
                    .expect("salvage must recover");
            assert!(stats.degraded, "threads={threads}");
            assert!(
                stats
                    .faults
                    .iter()
                    .any(|f| matches!(f, FaultEvent::WorkerPanicked { chunk: 7, .. })),
                "missing panic event: {:?}",
                stats.faults
            );
            assert!(stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::Salvaged { from_chunk: 7, .. })));
            assert_eq!(k.into_inner().into_data(), expected, "threads={threads}");
        }
    }

    #[test]
    fn mid_body_panic_refuses_salvage() {
        // Chain makes no fail-stop promise, so a panic that may have
        // landed partial writes must yield an error, not a wrong answer.
        struct Exploding(Chain);
        // SAFETY: same serialization argument as Chain.
        unsafe impl Sync for Exploding {}
        impl RealKernel for Exploding {
            fn iters(&self) -> u64 {
                self.0.iters()
            }
            unsafe fn execute(&self, range: Range<u64>) {
                if range.contains(&500) {
                    panic!("exploded mid-body");
                }
                // SAFETY: forwarded contract.
                unsafe { self.0.execute(range) }
            }
        }
        let k = Exploding(Chain::new(4_000));
        let cfg = RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        match try_run_cascaded(&k, &cfg, &Tolerance::resilient(Duration::from_millis(50))) {
            Err(RunError::WorkerPanicked { chunk: 5, .. }) => {}
            other => panic!("expected WorkerPanicked on chunk 5, got {other:?}"),
        }
    }

    #[test]
    fn stall_is_declared_and_salvaged_bitwise() {
        let n = 4_000;
        let expected = seq_result(n);
        let plan = FaultPlan::new(100).inject(6, FaultKind::Stall(Duration::from_millis(120)));
        let k = FaultyKernel::new(Chain::new(n), plan);
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        let stats = try_run_cascaded(&k, &cfg, &Tolerance::resilient(Duration::from_millis(20)))
            .expect("stall must salvage");
        assert!(stats.degraded);
        assert!(
            stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::StallDeclared { chunk: 6, .. })),
            "missing stall event: {:?}",
            stats.faults
        );
        assert!(
            stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::LateCompletion { chunk: 6, .. })),
            "the stalled worker still completes its chunk: {:?}",
            stats.faults
        );
        assert_eq!(k.into_inner().into_data(), expected);
    }

    #[test]
    fn slowdown_below_watchdog_window_stays_clean() {
        let n = 4_000;
        let expected = seq_result(n);
        let plan = FaultPlan::new(200).inject(3, FaultKind::Slowdown(Duration::from_millis(2)));
        let k = FaultyKernel::new(Chain::new(n), plan);
        let cfg = RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 200,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        let stats = try_run_cascaded(&k, &cfg, &Tolerance::resilient(Duration::from_millis(500)))
            .expect("a slowdown is not a fault");
        assert!(!stats.degraded);
        assert!(stats.faults.is_empty());
        assert_eq!(k.into_inner().into_data(), expected);
    }

    #[test]
    fn panic_without_salvage_is_a_typed_error() {
        let plan = FaultPlan::new(100).inject(4, FaultKind::Panic);
        let k = FaultyKernel::new(Chain::new(3_000), plan);
        let cfg = RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        match try_run_cascaded(&k, &cfg, &Tolerance::default()) {
            Err(RunError::WorkerPanicked {
                thread: 0,
                chunk: 4,
            }) => {}
            other => panic!("expected WorkerPanicked thread 0 chunk 4, got {other:?}"),
        }
    }
}

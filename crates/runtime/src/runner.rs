//! The cascade runner: real threads rotating execution of one sequential
//! loop, exactly as in Figure 1(b) of the paper.
//!
//! Thread `t` owns chunks `t, t+T, t+2T, ...`. While waiting for the token
//! it runs its helper (prefetch or pack) for its next chunk, polling the
//! token every `poll_batch` iterations — the paper's jump-out-of-helper
//! modification at batch granularity. On token arrival it executes its
//! chunk (packed prefix first, original body for any unpacked remainder)
//! and releases the token to the next chunk.
//!
//! ## Fault tolerance
//!
//! The fallible entry points [`try_run_cascaded`] /
//! [`try_run_cascaded_sequence`] accept a [`Tolerance`] and return a typed
//! [`RunError`] instead of panicking (see `docs/ROBUSTNESS.md`):
//!
//! * every worker catches its own panics per chunk and poisons the token
//!   with a [`PoisonCause::Panicked`] diagnostic (thread, chunk, message);
//! * with a watchdog window set, waiters use bounded token waits and
//!   declare a stall — poisoning the token with [`PoisonCause::Stalled`] —
//!   when the token does not move for a whole window;
//! * token hand-off is a compare-and-swap ([`Token::try_release`]), so a
//!   worker the watchdog declared dead can finish late ([`
//!   FaultEvent::LateCompletion`]) but can never resurrect a poisoned
//!   token;
//! * with salvage enabled, after every worker has joined (join gives both
//!   exclusivity and the happens-before edge) the calling thread finishes
//!   the remaining iteration range sequentially, producing a bitwise
//!   sequential-identical result flagged [`RunStats::degraded`].
//!
//! ## In-cascade recovery (the ladder above salvage)
//!
//! With [`Tolerance::retry`] set, a fault no longer has to abandon
//! cascading. Chunk ownership becomes a dynamic roster (round-robin
//! over the *live* workers) instead of the static `t, t+T, t+2T, ...`
//! stripe, and execution uses the token's claim protocol
//! ([`Token::try_claim`] / [`Token::try_advance`] /
//! [`Token::try_unclaim`]) so exactly-one-executor holds even while
//! ownership is being remapped. The ladder, in order:
//!
//! 1. a worker whose interrupted chunk is *pristine* — the kernel
//!    promises fail-stop panics ([`RealKernel::panics_before_mutation`]),
//!    **or** the chunk's undo journal was rolled back (see below) —
//!    quarantines itself in the [`HealthRegistry`], removes itself from
//!    the roster (remapping its remaining chunks across survivors,
//!    anchored at the token's current position so no unexecuted chunk is
//!    orphaned), hands a claimed chunk back ([`Token::try_unclaim`]), and
//!    drains — a survivor re-claims and re-executes the chunk and the run
//!    finishes cascaded, *not* `degraded`;
//! 2. a stalled worker is given exponentially growing backoff windows
//!    (strikes in the health registry; a heartbeat between strikes heals
//!    them) before the same quarantine-and-remap — but a worker that
//!    stalls *while holding a claim* may still write, so its chunk is
//!    never retried: recovery is abandoned ([`FaultEvent::RetryAbandoned`])
//!    and the run falls through to poisoning;
//! 3. when the retry budget is exhausted, no survivor remains, or the
//!    interrupted chunk is torn (no fail-stop promise and no journal),
//!    the fault falls through the ladder to PR 1 behavior: token
//!    poisoning, then salvage or a typed error. Every rung leaves a
//!    [`FaultEvent`] in the audit trail.
//!
//! ## Chunk transactions (journaled rollback)
//!
//! Before an execution phase, whenever any recovery path is enabled
//! (retry or salvage), the worker materializes an *undo journal* for the
//! chunk: a snapshot of exactly the bytes the chunk may write, bounded
//! by the `cascade-analyze` write-set footprints
//! ([`RealKernel::journal_capture`]). If the chunk body then panics, the
//! worker rolls the journal back ([`RealKernel::journal_rollback`])
//! *while still holding the claim* — so the rollback happens-before any
//! survivor's re-execution claim, and no torn write-set is ever
//! observable ([`FaultEvent::ChunkRolledBack`]). This retires the
//! fail-stop gate for journalable kernels: retry and salvage stay sound
//! for arbitrary mid-body panics. Kernels whose write footprint is
//! unresolvable (`Journalability::Unjournalable` in `cascade-analyze`
//! terms, i.e. any kernel keeping the `journal_capture` default) fall
//! back to the PR 2 fail-stop gate. A *stalled* claim holder still
//! abandons retry (nobody can roll back a possibly-live writer), but
//! post-join salvage stays sound: by the fault model stalls are finite,
//! so the holder wakes and either completes late or panics and rolls
//! back itself before draining.
//!
//! The protocol state machine (token values, claims, poison, retry
//! hand-backs, journal/rollback ordering) is modeled and exhaustively
//! explored in [`crate::check`].
//!
//! The original panicking entry points remain as thin shims over the
//! fallible ones with a default (non-salvaging) [`Tolerance`].

use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cascade_core::{
    fnv64, CascadeMetrics, ChunkPlan, MetricsSource, PhaseKind, PhaseSample, WorkerMetrics,
};

use crate::barrier::{BarrierOutcome, FtBarrier};
use crate::ckpt::{CkptPolicy, CkptRun};
use crate::govern::{
    CancelKind, CancelState, CancelToken, Governor, MemBudget, RunConfig, VerifyPolicy,
};
use crate::health::{HealthConfig, HealthRegistry, StrikeVerdict};
use crate::kernel::RealKernel;
use crate::metrics::{NsStats, Observe, PhaseEventNs, PhaseRecorder};
use crate::token::{lock_recover, PoisonCause, Token, TokenView, EXEC_BIT, POISONED};

/// Helper policy of the real-thread runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtPolicy {
    /// Spin only (the rotation-overhead ablation).
    None,
    /// Prefetch upcoming operands while waiting.
    Prefetch,
    /// Pack read-only operands into a thread-local sequential buffer while
    /// waiting; falls back to the original body for unpacked iterations.
    Restructure,
}

impl RtPolicy {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RtPolicy::None => "none",
            RtPolicy::Prefetch => "prefetched",
            RtPolicy::Restructure => "restructured",
        }
    }
}

/// Runner parameters.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Number of worker threads (processors of the cascade).
    pub nthreads: usize,
    /// Iterations per chunk (the real-runtime analogue of the byte budget;
    /// callers with a [`cascade_trace::LoopSpec`] can derive it from
    /// `chunk_bytes / spec.bytes_per_iter()`).
    pub iters_per_chunk: u64,
    /// Helper policy.
    pub policy: RtPolicy,
    /// Helper iterations between token polls (jump-out granularity).
    pub poll_batch: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            nthreads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            iters_per_chunk: 4096,
            policy: RtPolicy::Restructure,
            poll_batch: 64,
        }
    }
}

/// In-cascade retry policy: how hard to fight for a cascaded finish
/// before falling through to salvage (see the recovery ladder in the
/// module docs and `docs/ROBUSTNESS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total chunk re-executions (across the whole run or sequence) before
    /// further faults fall through the ladder.
    pub budget: u64,
    /// First stall backoff window; doubles per consecutive strike.
    /// Stall recovery is driven by the watchdog, so it needs
    /// [`Tolerance::watchdog`] set; panic recovery does not.
    pub backoff: Duration,
    /// Consecutive no-progress strikes before a stalled worker is
    /// quarantined.
    pub strike_limit: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            budget: 4,
            backoff: Duration::from_millis(10),
            strike_limit: 3,
        }
    }
}

/// Fault-tolerance policy of a run, separate from [`RunnerConfig`] so the
/// performance knobs stay orthogonal to the failure-handling ones.
#[derive(Debug, Clone, Default)]
pub struct Tolerance {
    /// Progress-watchdog window: when set, a waiter that sees no token
    /// movement at all for a whole window declares a stall and poisons the
    /// token. `None` (the default) waits unboundedly, like the original
    /// runtime. Note the watchdog is waiter-driven: a single-thread
    /// cascade has no waiters and therefore no stall detection (it cannot
    /// deadlock on the token either — it always holds it).
    pub watchdog: Option<Duration>,
    /// In-cascade recovery: re-execute a faulted chunk on a healthy
    /// worker, quarantining the failed thread and remapping its chunks
    /// across survivors so the run finishes cascaded instead of
    /// `degraded`. Sound only when the interrupted chunk is pristine:
    /// the kernel promises fail-stop panics
    /// ([`RealKernel::panics_before_mutation`]) or its undo journal was
    /// rolled back ([`RealKernel::journal_capture`]) — gated per fault.
    /// `None` (the default) climbs straight to salvage/error, exactly
    /// PR 1 behavior.
    pub retry: Option<RetryPolicy>,
    /// After a fault, finish the remaining iteration range sequentially on
    /// the calling thread (bitwise-identical result, `degraded` stats)
    /// instead of returning the error. Salvage is refused — the error is
    /// returned — when a chunk body was interrupted mid-flight *torn*:
    /// its undo journal could not be captured or rolled back
    /// ([`RealKernel::journal_capture`]) and the kernel does not promise
    /// fail-stop panics ([`RealKernel::panics_before_mutation`]),
    /// because re-running a half-applied chunk could double-apply
    /// writes. Journalable kernels are always salvageable.
    pub salvage: bool,
}

impl Tolerance {
    /// No watchdog, no retry, no salvage: the first fault is returned as a
    /// typed error as fast as it is observed.
    pub fn fail_fast() -> Self {
        Tolerance::default()
    }

    /// Watchdog plus salvage: detect stalls within `window` and fall back
    /// to sequential execution on any fault.
    pub fn resilient(window: Duration) -> Self {
        Tolerance {
            watchdog: Some(window),
            retry: None,
            salvage: true,
        }
    }

    /// The full recovery ladder: watchdog within `window`, in-cascade
    /// retry with the default [`RetryPolicy`], and sequential salvage for
    /// whatever falls through.
    pub fn retrying(window: Duration) -> Self {
        Tolerance {
            watchdog: Some(window),
            retry: Some(RetryPolicy::default()),
            salvage: true,
        }
    }
}

/// A typed failure of a cascaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configuration or kernel set is unusable (zero threads, empty
    /// chunks, zero poll batch, empty kernel...).
    InvalidConfig(String),
    /// A worker panicked; the diagnostic names the thread and chunk.
    WorkerPanicked {
        /// Worker thread index (0-based).
        thread: u64,
        /// Chunk the worker owned (or was about to own).
        chunk: u64,
    },
    /// The progress watchdog declared a stall: no token movement for a
    /// whole window.
    Stalled {
        /// The chunk the token was stuck on.
        chunk: u64,
        /// How long the waiter watched the token not move.
        waited: Duration,
    },
    /// A sequence loop completed as healthy but its leader's start/end
    /// stamps are missing — the leader died between a barrier and its
    /// stamp. Unreachable through the public API (a dead leader poisons
    /// the loop before it can read as healthy); kept as a typed error so
    /// a protocol regression cannot panic the supervisor.
    LeaderLost {
        /// The loop whose stamps are missing.
        loop_idx: u64,
    },
    /// The run was cancelled cooperatively (via its
    /// [`CancelToken`]) and drained with bitwise-clean state: every
    /// iteration below `committed_iters` is committed exactly once and
    /// nothing above it was touched, so the caller can finish the loop
    /// sequentially from `committed_iters`.
    Cancelled {
        /// Reason recorded by the canceller.
        reason: String,
        /// Iterations committed before the cancellation drained the run
        /// (for a sequence: global across all loops, in order).
        committed_iters: u64,
    },
    /// The whole-run deadline ([`RunConfig::deadline`]) expired and the
    /// governor cancelled the run; same clean-state guarantee as
    /// [`RunError::Cancelled`].
    DeadlineExceeded {
        /// The configured deadline that expired.
        deadline: Duration,
        /// Iterations committed before the run drained.
        committed_iters: u64,
    },
    /// A metered allocation would have exceeded the run's [`MemBudget`];
    /// the run was cancelled instead of allocating unboundedly. Same
    /// clean-state guarantee as [`RunError::Cancelled`].
    BudgetExceeded {
        /// Bytes the refused reservation asked for.
        needed: u64,
        /// The configured budget limit in bytes.
        limit: u64,
        /// Iterations committed before the run drained.
        committed_iters: u64,
    },
    /// Online verification ([`crate::govern::VerifyPolicy`]) caught
    /// silent data corruption and the tolerance offered no recovery
    /// path. The corrupted chunk was rolled back to its pre-image before
    /// the token was poisoned, so the committed prefix below
    /// `committed_iters` is bitwise clean — a corrupted chunk is never
    /// part of the prefix this error reports (model-checker invariant).
    Corrupted {
        /// The blamed executor, or `None` when the corruption landed
        /// outside every chunk's write footprint (scrubber detection:
        /// no chunk wrote there, so blame is unassignable).
        thread: Option<u64>,
        /// The corrupted chunk, or `None` for out-of-footprint drift.
        chunk: Option<u64>,
        /// Exact sequential resume point (global, for a sequence): every
        /// iteration below it is committed exactly once and uncorrupted.
        committed_iters: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidConfig(msg) => write!(f, "invalid cascade configuration: {msg}"),
            RunError::WorkerPanicked { thread, chunk } => {
                write!(f, "worker thread {thread} panicked on chunk {chunk}")
            }
            RunError::Stalled { chunk, waited } => {
                write!(
                    f,
                    "cascade stalled on chunk {chunk} ({waited:?} without progress)"
                )
            }
            RunError::LeaderLost { loop_idx } => {
                write!(
                    f,
                    "sequence loop {loop_idx} finished without its leader's timing stamps"
                )
            }
            RunError::Cancelled {
                reason,
                committed_iters,
            } => {
                write!(
                    f,
                    "run cancelled after {committed_iters} committed iterations: {reason}"
                )
            }
            RunError::DeadlineExceeded {
                deadline,
                committed_iters,
            } => {
                write!(
                    f,
                    "run deadline of {deadline:?} exceeded after {committed_iters} committed iterations"
                )
            }
            RunError::BudgetExceeded {
                needed,
                limit,
                committed_iters,
            } => {
                write!(
                    f,
                    "memory budget exceeded (reservation of {needed} B over the {limit} B limit) \
                     after {committed_iters} committed iterations"
                )
            }
            RunError::Corrupted {
                thread,
                chunk,
                committed_iters,
            } => match (thread, chunk) {
                (Some(t), Some(c)) => write!(
                    f,
                    "silent corruption detected in chunk {c} (blamed on worker {t}); \
                     rolled back, clean through iteration {committed_iters}"
                ),
                _ => write!(
                    f,
                    "silent corruption detected outside every chunk's write footprint; \
                     committed prefix of {committed_iters} iterations is clean"
                ),
            },
        }
    }
}

impl std::error::Error for RunError {}

/// Something abnormal that happened during a run, in observation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A worker panicked (caught; the token was poisoned with the cause).
    WorkerPanicked {
        /// Worker thread index.
        thread: u64,
        /// Chunk it owned or was about to own.
        chunk: u64,
        /// Stringified panic payload.
        message: String,
    },
    /// A waiter declared a stall after a full watchdog window without any
    /// token movement.
    StallDeclared {
        /// The chunk the token was stuck on.
        chunk: u64,
        /// The window the waiter watched.
        waited: Duration,
    },
    /// A worker declared dead finished its chunk after the poisoning; the
    /// chunk still executed exactly once (the CAS hand-off refused its
    /// release, so the poison stands).
    LateCompletion {
        /// The late worker.
        thread: u64,
        /// The chunk it completed late.
        chunk: u64,
    },
    /// The calling thread finished the remaining range sequentially.
    Salvaged {
        /// First chunk the salvage re-ran (all earlier chunks completed).
        from_chunk: u64,
        /// Iterations executed by the salvage.
        iters: u64,
    },
    /// A detector recorded a no-progress strike against a suspect worker
    /// (retry tolerance only; rate-limited to one event per backoff
    /// window).
    StallStrike {
        /// The suspect worker.
        thread: u64,
        /// The chunk the token was stuck on.
        chunk: u64,
        /// Consecutive strikes against the suspect, this one included.
        strikes: u32,
        /// Backoff granted before the next strike may land.
        backoff: Duration,
    },
    /// A worker was quarantined: removed from the ownership roster, its
    /// remaining chunks remapped across the surviving workers.
    WorkerQuarantined {
        /// The quarantined worker.
        thread: u64,
        /// The chunk it faulted on (or was stuck holding).
        chunk: u64,
    },
    /// A chunk whose owner faulted was re-executed in-cascade by a
    /// survivor — the recovery the retry ladder exists for.
    ChunkRetried {
        /// The recovered chunk.
        chunk: u64,
        /// The worker that faulted on it.
        from_thread: u64,
        /// The survivor that re-executed it.
        by_thread: u64,
    },
    /// In-cascade recovery was not applicable; the fault fell through the
    /// ladder to token poisoning (then salvage or a typed error).
    RetryAbandoned {
        /// The chunk whose recovery was abandoned.
        chunk: u64,
        /// Why the ladder gave up.
        reason: RetryAbandon,
    },
    /// A faulted chunk's undo journal was rolled back: its write-set was
    /// restored to the exact pre-chunk bytes, while the faulting worker
    /// still held the claim — before any retry hand-back or salvage
    /// could observe the torn state.
    ChunkRolledBack {
        /// The worker that rolled its own journal back.
        thread: u64,
        /// The restored chunk.
        chunk: u64,
        /// Journal bytes restored.
        bytes: u64,
    },
    /// Online verification caught silent data corruption: the bytes a
    /// committed chunk left in shared memory disagree with a verified
    /// re-execution (or, for the arena scrubber, bytes outside every
    /// chunk's write footprint drifted between two scrubs).
    CorruptionDetected {
        /// The corrupted chunk (`u64::MAX` for out-of-footprint drift
        /// found by the scrubber, which no chunk owns).
        chunk: u64,
        /// Digest of the bytes a clean execution should have produced.
        expected: u64,
        /// Digest of the bytes actually found in shared memory.
        found: u64,
        /// `true` when the verified replay bytes were installed in place
        /// (recovery); `false` when the chunk was rolled back to its
        /// pre-image and the run failed with [`RunError::Corrupted`].
        repaired: bool,
    },
    /// The sequential tiebreak re-execution confirmed the detected
    /// mismatch twice over and assigned blame to the executor that
    /// committed the wrong bytes. Blame is only ever assigned after the
    /// tiebreak — a lone verifier mismatch could be the *verifier's*
    /// fault (model-checker invariant: no innocent worker is quarantined
    /// under the single-fault assumption).
    WorkerBlamed {
        /// The guilty executor.
        thread: u64,
        /// The chunk it corrupted.
        chunk: u64,
        /// Proven corruption verdicts against it, this one included; the
        /// second strike quarantines (corruption strikes never heal).
        strikes: u32,
    },
}

/// Why in-cascade recovery fell through to poisoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryAbandon {
    /// The retry budget was already spent.
    BudgetExhausted,
    /// The faulting worker was the last live worker: nobody left to
    /// re-execute the chunk.
    NoSurvivors,
    /// The interrupted chunk is torn: the kernel makes no fail-stop
    /// promise and its write-set could not be journaled and rolled back,
    /// so partial writes may remain and the chunk must not be re-run.
    KernelNotFailStop,
    /// The stalled worker holds the execution claim: it may still write,
    /// so its chunk can never be handed to a survivor.
    ExecutorStuck,
}

impl std::fmt::Display for RetryAbandon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryAbandon::BudgetExhausted => write!(f, "retry budget exhausted"),
            RetryAbandon::NoSurvivors => write!(f, "no surviving workers"),
            RetryAbandon::KernelNotFailStop => {
                write!(
                    f,
                    "chunk is torn: kernel is neither fail-stop nor journalable"
                )
            }
            RetryAbandon::ExecutorStuck => write!(f, "stuck executor still holds the claim"),
        }
    }
}

/// Per-thread execution statistics.
#[derive(Debug, Default, Clone)]
pub struct ThreadStats {
    /// Chunks executed by this thread.
    pub chunks: u64,
    /// Iterations covered by helper work before their execution phase.
    pub helper_iters: u64,
    /// Chunks whose helper covered every iteration.
    pub helper_complete: u64,
    /// Nanoseconds inside execution phases.
    pub exec_ns: u128,
    /// Nanoseconds inside helper work.
    pub helper_ns: u128,
    /// Nanoseconds spent pure-spinning on the token.
    pub spin_ns: u128,
    /// Nanoseconds climbing the recovery ladder (0 for fault-free runs).
    pub retry_ns: u128,
    /// Nanoseconds of everything else: startup, roster bookkeeping,
    /// token release.
    pub other_ns: u128,
    /// Whole wall time of the worker. The `PhaseRecorder` closes and
    /// opens adjacent phases with one shared timestamp, so
    /// `helper_ns + spin_ns + exec_ns + retry_ns + other_ns == wall_ns`
    /// holds *exactly* — no gaps, no overlaps.
    pub wall_ns: u128,
    /// Helper phases abandoned before covering their chunk (token
    /// arrival, jump-out, or roster remap).
    pub jump_outs: u64,
    /// Helper poll batches that stalled waiting for the dependence
    /// horizon to grow (horizon-gated kernels only).
    pub horizon_stalls: u64,
    /// Bytes packed into the sequential buffer by restructure helpers.
    pub packed_bytes: u64,
    /// Bytes covered by prefetch helpers
    /// ([`RealKernel::prefetch_bytes_per_iter`] × iterations hinted).
    pub prefetched_bytes: u64,
    /// Token handoffs performed (successful releases of a finished
    /// chunk to its successor).
    pub handoffs: u64,
    /// Chunks whose undo journal was rolled back after a mid-body fault
    /// ([`FaultEvent::ChunkRolledBack`] count for this thread).
    pub rollbacks: u64,
    /// Bytes captured into undo journals before execution phases.
    pub journal_bytes: u64,
    /// Nanoseconds spent capturing and rolling back undo journals. This
    /// is a side counter carved out of the execute/retry phases — it is
    /// *not* a sixth phase, so the exact partition
    /// `helper + spin + exec + retry + other == wall` is untouched.
    pub journal_ns: u128,
    /// Durable checkpoints this thread captured and published.
    pub ckpt_count: u64,
    /// Delta bytes written into durable checkpoints by this thread.
    pub ckpt_bytes: u64,
    /// Nanoseconds spent in checkpoint capture and publication. Like
    /// `journal_ns`, a side counter riding inside the Other phase — the
    /// exact phase partition is untouched.
    pub ckpt_ns: u128,
    /// Committed predecessor chunks this worker verified (digest check
    /// or full journaled replay, per [`crate::govern::VerifyPolicy`]).
    pub verified_chunks: u64,
    /// Nanoseconds spent publishing verification packets (executor side)
    /// and verifying committed chunks (claimant side). Like `journal_ns`
    /// and `ckpt_ns`, a side counter riding inside the Execute/Other
    /// phases — the exact phase partition
    /// `helper + spin + exec + retry + other == wall` is untouched.
    pub verify_ns: u128,
    /// Timestamped phase events this worker *dropped* after its event
    /// ring reached [`Observe::max_events`] (0 when the ring never
    /// filled, or when events are off).
    pub events_dropped: u64,
    /// Receive-side handoff latency: previous executor's release →
    /// this worker's winning claim.
    pub takeover: NsStats,
    /// Per-chunk execution-phase durations (count == `chunks`).
    pub chunk_exec: NsStats,
    /// Timestamped phase intervals (empty unless [`Observe::events`]).
    pub events: Vec<PhaseEventNs>,
}

/// Whole-run statistics.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock duration of the cascaded loop (for a degraded run, of
    /// the sequential salvage that completed it).
    pub elapsed: Duration,
    /// Total chunks executed.
    pub chunks: u64,
    /// Total iterations of the loop.
    pub iters: u64,
    /// Per-thread breakdown.
    pub threads: Vec<ThreadStats>,
    /// Whether the run survived a fault by falling back to sequential
    /// execution (the result is still bitwise sequential-identical). A run
    /// recovered in-cascade by the retry ladder is **not** degraded.
    pub degraded: bool,
    /// Abnormal events observed during the run, in order.
    pub faults: Vec<FaultEvent>,
    /// Chunks re-executed in-cascade by a survivor
    /// ([`FaultEvent::ChunkRetried`] count).
    pub retries: u64,
    /// Workers quarantined during the run
    /// ([`FaultEvent::WorkerQuarantined`] count).
    pub quarantined: u64,
    /// Cancel latency in nanoseconds: the cancel firing → the first
    /// worker acting on it. Zero for a run that was never cancelled (a
    /// too-late cancel can still stamp this on a clean run).
    pub cancel_latency_ns: u64,
    /// Peak bytes reserved from the run's [`MemBudget`] (journal and
    /// pack arenas). Zero when nothing was metered.
    pub budget_high_water: u64,
    /// Arena scrubs performed by the supervisor (baseline + compare):
    /// digests over the bytes *outside* the loop's whole write
    /// footprint, bracketing out-of-footprint corruption. Zero unless
    /// verification is armed and the kernel can bound its footprint.
    pub scrubs: u64,
}

impl RunStats {
    /// Fraction of iterations covered by helper work, in [0, 1].
    pub fn helper_coverage(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        let helped: u64 = self.threads.iter().map(|t| t.helper_iters).sum();
        helped as f64 / self.iters as f64
    }

    /// The observability report (times in nanoseconds) — the same
    /// [`CascadeMetrics`] schema the simulator derives from its
    /// `ChunkEvent` timeline, so simulated and real runs are directly
    /// comparable. For a `degraded` run the report covers the in-cascade
    /// portion only (salvage executes outside the worker pool).
    pub fn metrics(&self) -> CascadeMetrics {
        let workers: Vec<WorkerMetrics> = self
            .threads
            .iter()
            .enumerate()
            .map(|(t, s)| WorkerMetrics {
                worker: t as u64,
                chunks: s.chunks,
                helper_time: s.helper_ns as f64,
                spin_time: s.spin_ns as f64,
                exec_time: s.exec_ns as f64,
                retry_time: s.retry_ns as f64,
                other_time: s.other_ns as f64,
                wall_time: s.wall_ns as f64,
                helper_iters: s.helper_iters,
                helper_complete: s.helper_complete,
                jump_outs: s.jump_outs,
                horizon_stalls: s.horizon_stalls,
                packed_bytes: s.packed_bytes,
                prefetched_bytes: s.prefetched_bytes,
                handoffs: s.handoffs,
                rollbacks: s.rollbacks,
                journal_bytes: s.journal_bytes,
                journal_time: s.journal_ns as f64,
                ckpt_count: s.ckpt_count,
                ckpt_bytes: s.ckpt_bytes,
                ckpt_time: s.ckpt_ns as f64,
                verified_chunks: s.verified_chunks,
                verify_time: s.verify_ns as f64,
                events_dropped: s.events_dropped,
                takeover: s.takeover.to_latency(),
                chunk_exec: s.chunk_exec.to_latency(),
            })
            .collect();
        let mut events: Vec<PhaseSample> = self
            .threads
            .iter()
            .enumerate()
            .flat_map(|(t, s)| {
                s.events.iter().map(move |e| PhaseSample {
                    worker: t as u64,
                    kind: e.kind,
                    chunk: e.chunk,
                    start: e.start_ns as f64,
                    end: e.end_ns as f64,
                })
            })
            .collect();
        events.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(a.worker.cmp(&b.worker))
                .then(a.end.total_cmp(&b.end))
        });
        let mut m = CascadeMetrics {
            source: Some(MetricsSource::Real),
            chunks: self.chunks,
            iters: self.iters,
            wall_time: self.elapsed.as_nanos() as f64,
            cancel_latency: self.cancel_latency_ns as f64,
            budget_high_water: self.budget_high_water,
            scrubs: self.scrubs,
            workers,
            events,
            ..Default::default()
        };
        m.aggregate();
        m
    }
}

/// Execute `kernel` sequentially (the baseline), returning the wall time.
pub fn run_sequential<K: RealKernel>(kernel: &K) -> Duration {
    let start = Instant::now();
    // SAFETY: single-threaded call; trivially exclusive.
    unsafe { kernel.execute(0..kernel.iters()) };
    start.elapsed()
}

fn validate(cfg: &RunnerConfig) -> Result<(), RunError> {
    if cfg.nthreads < 1 {
        return Err(RunError::InvalidConfig("need at least one thread".into()));
    }
    if cfg.iters_per_chunk < 1 {
        return Err(RunError::InvalidConfig("chunks must be non-empty".into()));
    }
    if cfg.poll_batch < 1 {
        return Err(RunError::InvalidConfig(
            "poll batch must be positive".into(),
        ));
    }
    Ok(())
}

fn run_error_from(cause: &PoisonCause) -> RunError {
    match cause {
        PoisonCause::Panicked { thread, chunk, .. } => RunError::WorkerPanicked {
            thread: *thread,
            chunk: *chunk,
        },
        PoisonCause::Stalled { chunk, waited } => RunError::Stalled {
            chunk: *chunk,
            waited: *waited,
        },
        // The degraded paths intercept cancellation before mapping the
        // cause (they need the exact `committed_iters`); kept total for a
        // foreign token poisoned from outside this module.
        PoisonCause::Cancelled { reason } => RunError::Cancelled {
            reason: reason.clone(),
            committed_iters: 0,
        },
        // `resume_at` is loop-local; the sequence supervisor rebases it
        // onto the global iteration count before surfacing the error.
        PoisonCause::Corrupted {
            thread,
            chunk,
            resume_at,
        } => RunError::Corrupted {
            thread: *thread,
            chunk: *chunk,
            committed_iters: *resume_at,
        },
        // Unreachable for tokens this module creates, but kept total.
        PoisonCause::Unspecified => RunError::WorkerPanicked {
            thread: 0,
            chunk: 0,
        },
    }
}

/// The governance context threaded through a run's workers: the shared
/// cancel flag and the memory budget. The ungoverned entry points use
/// [`Govern::none`] — a fresh never-cancelled token and an unlimited
/// budget — so every check site costs one never-true atomic load.
pub(crate) struct Govern {
    pub(crate) cancel: CancelToken,
    pub(crate) budget: MemBudget,
    /// Durable-checkpoint policy and sink; `None` (the ungoverned and
    /// `CkptPolicy::Off` cases) costs one `Option` check per chunk
    /// commit, so the fault-free overhead guard is unaffected.
    pub(crate) ckpt: Option<CkptRun>,
    /// Online-verification policy. The default `Off` costs one
    /// never-true branch per chunk commit and per claim, so the
    /// fault-free overhead guard is unaffected.
    pub(crate) verify: VerifyPolicy,
}

impl Govern {
    fn none() -> Self {
        Govern {
            cancel: CancelToken::new(),
            budget: MemBudget::unlimited(),
            ckpt: None,
            verify: VerifyPolicy::Off,
        }
    }
}

/// Drain the run leader-ward with a `Cancelled` poison cause: called by
/// the first worker (or waiter) that acts on the cancel flag. Stamps the
/// cancel latency; the poison itself is first-cause-wins, so a cancel
/// racing a real fault never masks it.
fn poison_cancelled(run: &FtRun, gov: &Govern) {
    gov.cancel.note_observed();
    let reason = gov
        .cancel
        .state()
        .map(|s| s.reason)
        .unwrap_or_else(|| "cancelled".to_string());
    run.token.poison_with(PoisonCause::Cancelled { reason });
}

/// Map a cancelled run to its typed error, carrying the exact sequential
/// resume point. The kind comes from the run's own [`CancelToken`]; a
/// token poisoned `Cancelled` from outside (sequence propagation carries
/// the cause string) falls back to [`RunError::Cancelled`].
fn cancel_error(gov: &Govern, cause: &PoisonCause, committed_iters: u64) -> RunError {
    match gov.cancel.state() {
        Some(CancelState {
            kind: CancelKind::Deadline { after },
            ..
        }) => RunError::DeadlineExceeded {
            deadline: after,
            committed_iters,
        },
        Some(CancelState {
            kind: CancelKind::Budget { needed, limit },
            ..
        }) => RunError::BudgetExceeded {
            needed,
            limit,
            committed_iters,
        },
        Some(CancelState {
            kind: CancelKind::User,
            reason,
        }) => RunError::Cancelled {
            reason,
            committed_iters,
        },
        None => {
            let reason = match cause {
                PoisonCause::Cancelled { reason } => reason.clone(),
                _ => "cancelled".to_string(),
            };
            RunError::Cancelled {
                reason,
                committed_iters,
            }
        }
    }
}

/// A cancelled run whose in-flight chunk tore (its rollback panicked, or
/// a concurrent fault left an unjournalable chunk half-applied) must NOT
/// report a clean `Cancelled{committed_iters}` — resuming from it could
/// double-apply writes. Surface the tear as the panic that caused it.
fn torn_fallback(faults: &[FaultEvent]) -> RunError {
    faults
        .iter()
        .rev()
        .find_map(|f| match f {
            FaultEvent::WorkerPanicked { thread, chunk, .. } => Some(RunError::WorkerPanicked {
                thread: *thread,
                chunk: *chunk,
            }),
            _ => None,
        })
        .unwrap_or(RunError::WorkerPanicked {
            thread: 0,
            chunk: 0,
        })
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Outcome of removing a worker from the [`Roster`].
enum RemoveOutcome {
    /// Removed; the survivors own the remaining chunks.
    Removed,
    /// The worker was already off the roster (a concurrent detector or
    /// the worker itself beat us): recovery is already underway.
    NotLive,
    /// Refused: removing the last live worker would strand the run.
    LastWorker,
}

/// Dynamic chunk→thread ownership: round-robin over the *live* workers,
/// re-anchored whenever a worker is quarantined. `owner(c) =
/// live[(c - base) % live.len()]` for `c >= base`; chunks below `base`
/// already executed (token serialization completes chunks in order), so a
/// remap anchored at the token's current position never orphans an
/// unexecuted chunk.
///
/// Reads take the mutex but are cheap (one modulo over a tiny vec) and
/// happen once per chunk, not per poll. Every remap bumps `epoch`;
/// workers re-check the epoch while waiting and recompute their ownership
/// when it moves. A worker acting on a stale epoch is benign: execution
/// rights come from the token claim CAS, never from the roster.
struct Roster {
    epoch: AtomicU64,
    synced: AtomicBool,
    inner: Mutex<RosterInner>,
}

struct RosterInner {
    live: Vec<u64>,
    base: u64,
}

impl Roster {
    fn new(nthreads: usize) -> Self {
        Roster {
            epoch: AtomicU64::new(0),
            synced: AtomicBool::new(false),
            inner: Mutex::new(RosterInner {
                live: (0..nthreads as u64).collect(),
                base: 0,
            }),
        }
    }

    #[inline]
    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// One-shot (first caller wins) adoption of the health registry's live
    /// set, so a loop later in a sequence starts without the workers
    /// quarantined by earlier loops. Safe to call from every worker: the
    /// inter-loop barrier guarantees no worker still acts on the previous
    /// loop's roster.
    fn sync_with(&self, health: &HealthRegistry) {
        if self.synced.swap(true, Ordering::AcqRel) {
            return;
        }
        let live = health.live();
        let mut inner = lock_recover(&self.inner);
        if inner.live != live {
            inner.live = live;
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The live worker owning `chunk`, or `None` while a remap is in
    /// flight (`chunk` below the anchor) or the roster is empty.
    fn owner_of(&self, chunk: u64) -> Option<u64> {
        let inner = lock_recover(&self.inner);
        if inner.live.is_empty() || chunk < inner.base {
            return None;
        }
        let l = inner.live.len() as u64;
        Some(inner.live[((chunk - inner.base) % l) as usize])
    }

    /// The smallest chunk `>= from` owned by worker `t`, or `None` when
    /// `t` is not on the roster.
    fn next_owned(&self, t: u64, from: u64) -> Option<u64> {
        let inner = lock_recover(&self.inner);
        let idx = inner.live.iter().position(|&x| x == t)? as u64;
        let l = inner.live.len() as u64;
        let start = from.max(inner.base);
        let first = inner.base + idx;
        if start <= first {
            return Some(first);
        }
        let k = (start - first).div_ceil(l);
        Some(first + k * l)
    }

    /// Remove worker `t`, re-anchoring the round-robin at `anchor` (the
    /// token's current chunk) so every unexecuted chunk is remapped across
    /// the survivors.
    fn remove(&self, t: u64, anchor: u64) -> RemoveOutcome {
        let mut inner = lock_recover(&self.inner);
        let Some(idx) = inner.live.iter().position(|&x| x == t) else {
            return RemoveOutcome::NotLive;
        };
        if inner.live.len() == 1 {
            return RemoveOutcome::LastWorker;
        }
        inner.live.remove(idx);
        // Monotone: a stale anchor racing a newer remap must never move
        // the round-robin origin backward.
        inner.base = inner.base.max(anchor);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        RemoveOutcome::Removed
    }
}

/// Recovery state shared across a whole run — or a whole loop *sequence*,
/// so a worker quarantined in loop `l` stays quarantined in loop `l + 1`
/// and the retry budget is global.
struct Recovery {
    health: HealthRegistry,
    /// Remaining chunk re-executions (see [`RetryPolicy::budget`]).
    budget: AtomicU64,
    policy: Option<RetryPolicy>,
}

impl Recovery {
    fn new(nthreads: usize, tol: &Tolerance) -> Self {
        let health_cfg = match &tol.retry {
            Some(r) => HealthConfig {
                strike_limit: r.strike_limit,
                base_backoff: r.backoff,
            },
            None => HealthConfig::default(),
        };
        Recovery {
            health: HealthRegistry::new(nthreads, health_cfg),
            budget: AtomicU64::new(tol.retry.as_ref().map_or(0, |r| r.budget)),
            policy: tol.retry,
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.policy.is_some()
    }

    /// Spend one retry from the budget; `false` when it is already dry.
    fn try_consume_budget(&self) -> bool {
        self.budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
            .is_ok()
    }
}

/// Shared fault-handling state of one cascaded loop run.
struct FtRun {
    token: Token,
    /// `fetch_max(j + 1)` after chunk `j`'s body: chunks `0..completed`
    /// executed exactly once. Token serialization completes chunks in
    /// order, so this is the exact salvage resume point.
    completed: AtomicU64,
    faults: Mutex<Vec<FaultEvent>>,
    /// Set when a chunk body was interrupted mid-flight by a kernel that
    /// makes no fail-stop promise — re-running it could double-apply
    /// writes, so salvage must be refused.
    salvage_unsound: AtomicBool,
    /// Chunk ownership map (static round-robin until a quarantine remaps
    /// it).
    roster: Roster,
    /// Failed chunk → failed thread: retry attribution, consumed by
    /// whichever worker eventually executes the chunk.
    retry_from: Mutex<HashMap<u64, u64>>,
    /// The worker that last won a claim; stall attribution for a stuck
    /// executor. Racy by design (claim CAS and this store are two steps),
    /// and only ever used to pick a strike suspect.
    claimant: AtomicU64,
    /// Time zero of the run: every recorder timestamp and handoff stamp
    /// is an offset from here.
    origin: Instant,
    /// Handoff stamp: when the grant of `release_chunk` was published
    /// (ns since `origin`). Written by the releaser *before* its
    /// `try_advance`; the next claimant reads it after winning the claim
    /// CAS, so the Release/Acquire edge through the token orders the
    /// pair and the latency sample is exact.
    release_ns: AtomicU64,
    /// Which chunk `release_ns` stamps (`u64::MAX` = none yet: chunk 0's
    /// grant predates the run, so it produces no handoff sample and a
    /// fault-free cascade records exactly `chunks - 1` handoffs).
    release_chunk: AtomicU64,
    /// Digest stamp of the checksummed handoff: the `fnv64` of the
    /// released chunk's committed write footprint, stored (Relaxed)
    /// before the `release_chunk` Release — the claimant's Acquire
    /// through the claim CAS orders the pair, exactly like `release_ns`.
    /// Zero when verification is off or no packet was published.
    release_digest: AtomicU64,
    /// The full verification packet of the most recently committed chunk
    /// (digest + pre-image journal for replay). Published by the
    /// executor before its `try_advance`; taken by the downstream
    /// claimant (or, for the final chunk, the supervisor after join).
    verify_slot: Mutex<Option<VerifyPacket>>,
    /// Arena scrubs performed against this run's kernel (baseline +
    /// compare); surfaced as [`RunStats::scrubs`].
    scrubs: AtomicU64,
}

/// Everything a verifier needs to re-check one committed chunk: the
/// executor's advertised digest and the pre-image journal that seeds the
/// replay overlay ([`RealKernel::replay_footprint`]).
struct VerifyPacket {
    /// The committed chunk this packet describes.
    chunk: u64,
    /// Its iteration range.
    range: Range<u64>,
    /// The worker that executed and committed it (blame target).
    executor: u64,
    /// `fnv64` over the committed write-footprint bytes, captured by the
    /// executor after the chunk body ran, while it still held the claim.
    digest: u64,
    /// The undo journal captured *before* the chunk ran: seeds the
    /// replay's private overlay, and doubles as the rollback image when
    /// a confirmed corruption has no recovery path. `None` when the
    /// chunk was not journaled (replay degrades to digest comparison).
    pre_image: Option<Vec<u8>>,
}

impl FtRun {
    fn new(nthreads: usize) -> Self {
        FtRun {
            token: Token::default(),
            completed: AtomicU64::new(0),
            faults: Mutex::new(Vec::new()),
            salvage_unsound: AtomicBool::new(false),
            roster: Roster::new(nthreads),
            retry_from: Mutex::new(HashMap::new()),
            claimant: AtomicU64::new(0),
            origin: Instant::now(),
            release_ns: AtomicU64::new(0),
            release_chunk: AtomicU64::new(u64::MAX),
            release_digest: AtomicU64::new(0),
            verify_slot: Mutex::new(None),
            scrubs: AtomicU64::new(0),
        }
    }

    fn record(&self, ev: FaultEvent) {
        lock_recover(&self.faults).push(ev);
    }

    fn take_faults(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut *lock_recover(&self.faults))
    }
}

/// `(retries, quarantined)` tallies for [`RunStats`] from the fault trail.
fn tally(faults: &[FaultEvent]) -> (u64, u64) {
    let retries = faults
        .iter()
        .filter(|f| matches!(f, FaultEvent::ChunkRetried { .. }))
        .count() as u64;
    let quarantined = faults
        .iter()
        .filter(|f| matches!(f, FaultEvent::WorkerQuarantined { .. }))
        .count() as u64;
    (retries, quarantined)
}

/// Execute `kernel` under cascaded execution with `cfg` (panicking shim;
/// prefer [`try_run_cascaded`]).
///
/// # Panics
///
/// Panics on an invalid configuration, an empty kernel, or a worker fault
/// — with the [`RunError`] display as the message.
pub fn run_cascaded<K: RealKernel>(kernel: &K, cfg: &RunnerConfig) -> RunStats {
    match try_run_cascaded(kernel, cfg, &Tolerance::default()) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// Execute `kernel` under cascaded execution with `cfg`, handling faults
/// per `tol` and returning a typed [`RunError`] instead of panicking.
pub fn try_run_cascaded<K: RealKernel>(
    kernel: &K,
    cfg: &RunnerConfig,
    tol: &Tolerance,
) -> Result<RunStats, RunError> {
    try_run_cascaded_observed(kernel, cfg, tol, &Observe::default())
}

/// [`try_run_cascaded`] with explicit observability options (`obs`
/// enables the timestamped event ring behind `RunStats::metrics`).
pub fn try_run_cascaded_observed<K: RealKernel>(
    kernel: &K,
    cfg: &RunnerConfig,
    tol: &Tolerance,
    obs: &Observe,
) -> Result<RunStats, RunError> {
    run_cascaded_inner(kernel, cfg, tol, obs, &Govern::none())
}

/// Execute `kernel` under full run governance ([`RunConfig`]): cooperative
/// cancellation via `cfg.cancel`, an optional whole-run deadline that arms
/// a governor thread, and a memory budget metering journal and pack
/// arenas. A governed run that is cancelled drains with bitwise-clean
/// state and returns [`RunError::Cancelled`] /
/// [`RunError::DeadlineExceeded`] / [`RunError::BudgetExceeded`] carrying
/// `committed_iters` — resuming `kernel` sequentially from that iteration
/// reproduces the uncancelled result bitwise.
pub fn try_run_governed<K: RealKernel>(kernel: &K, cfg: &RunConfig) -> Result<RunStats, RunError> {
    cfg.try_validate()?;
    let gov = Govern {
        cancel: cfg.cancel.clone(),
        budget: cfg.budget.clone(),
        ckpt: cfg.ckpt_sink.clone().map(|sink| CkptRun {
            policy: cfg.ckpt,
            sink,
        }),
        verify: cfg.verify,
    };
    let _governor = cfg.deadline.map(|d| Governor::arm(&cfg.cancel, d));
    run_cascaded_inner(kernel, &cfg.runner, &cfg.tolerance, &cfg.observe, &gov)
}

fn run_cascaded_inner<K: RealKernel>(
    kernel: &K,
    cfg: &RunnerConfig,
    tol: &Tolerance,
    obs: &Observe,
    gov: &Govern,
) -> Result<RunStats, RunError> {
    validate(cfg)?;
    let iters = kernel.iters();
    if iters == 0 {
        return Err(RunError::InvalidConfig("empty kernel".into()));
    }
    let plan = ChunkPlan::by_iterations(iters, cfg.iters_per_chunk);
    let m = plan.num_chunks();
    let run = FtRun::new(cfg.nthreads);
    let rec = Recovery::new(cfg.nthreads, tol);

    // Arena-scrub baseline: a digest over the bytes *outside* the loop's
    // whole write footprint, taken before any worker spawns (quiescent).
    // Drift against the post-join scrub brackets an out-of-footprint
    // corruption no chunk-level verification can attribute.
    let scrub_base = if gov.verify.armed() {
        // SAFETY: no worker spawned yet; trivially quiescent.
        let d = unsafe { kernel.scrub_digest() };
        if d.is_some() {
            run.scrubs.fetch_add(1, Ordering::Relaxed);
        }
        d
    } else {
        None
    };

    let start = Instant::now();
    let threads: Vec<ThreadStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.nthreads)
            .map(|t| {
                let (plan, run, rec) = (&plan, &run, &rec);
                s.spawn(move || ft_worker(kernel, cfg, tol, obs, gov, plan, run, rec, t as u64))
            })
            .collect();
        // Workers catch their own panics and report through the token, so
        // join only fails if the panic machinery itself misbehaved.
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let elapsed = start.elapsed();

    // --- final-chunk verification + arena scrub (supervisor side) ---
    // The last chunk has no downstream claimant; every worker has
    // joined, so the supervisor holds both exclusivity and the
    // happens-before edge and verifies it here — still before the run
    // returns, so detection stays online.
    if gov.verify.armed() && run.token.poison_cause().is_none() {
        if let Some(p) = lock_recover(&run.verify_slot).take() {
            if p.chunk + 1 == m {
                let _ = verify_committed(kernel, &run, &rec, gov, tol, p.executor, p);
            }
        }
        if run.token.poison_cause().is_none() {
            if let Some(base) = scrub_base {
                // SAFETY: every worker joined; quiescent.
                if let Some(now_d) = unsafe { kernel.scrub_digest() } {
                    run.scrubs.fetch_add(1, Ordering::Relaxed);
                    if now_d != base {
                        run.record(FaultEvent::CorruptionDetected {
                            chunk: u64::MAX,
                            expected: base,
                            found: now_d,
                            repaired: false,
                        });
                        run.token.poison_with(PoisonCause::Corrupted {
                            thread: None,
                            chunk: None,
                            resume_at: iters,
                        });
                    }
                }
            }
        }
        // Deferred durable checkpoint, final installment: the whole run
        // is now verified (and scrubbed), so the complete prefix may
        // persist. Workers only published through their own claims, which
        // stop one chunk short of the end.
        if run.token.poison_cause().is_none() {
            if let Some(ck) = &gov.ckpt {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    ck.sink.on_commit(
                        ck.policy,
                        m,
                        iters,
                        |c| plan.range(c).start,
                        // SAFETY: every worker joined; quiescent, and
                        // capture only reads.
                        |r, buf| unsafe { kernel.journal_capture(r, buf) },
                    )
                }));
            }
        }
    }

    let mut faults = run.take_faults();
    // First chunk not yet committed → its first iteration is the exact
    // sequential resume point (completion is in token order).
    let committed_at = |done: u64| {
        if done >= m {
            iters
        } else {
            plan.range(done).start
        }
    };

    let Some(cause) = run.token.poison_cause() else {
        debug_assert_eq!(
            run.token.current(),
            m,
            "token must end one past the last chunk"
        );
        let (retries, quarantined) = tally(&faults);
        return Ok(RunStats {
            elapsed,
            chunks: m,
            iters,
            threads,
            degraded: false,
            faults,
            retries,
            quarantined,
            cancel_latency_ns: gov.cancel.latency().map_or(0, |d| d.as_nanos() as u64),
            budget_high_water: gov.budget.high_water(),
            scrubs: run.scrubs.load(Ordering::Relaxed),
        });
    };

    // --- cancelled path: drained clean, never salvaged ---
    if matches!(cause, PoisonCause::Cancelled { .. }) {
        if run.salvage_unsound.load(Ordering::Acquire) {
            // The in-flight chunk tore while the run drained: the resume
            // guarantee is broken, report the tear instead.
            return Err(torn_fallback(&faults));
        }
        let done = run.completed.load(Ordering::Acquire);
        return Err(cancel_error(gov, &cause, committed_at(done)));
    }

    // --- degraded path: a worker panicked or the cascade stalled ---
    let err = run_error_from(&cause);
    if matches!(cause, PoisonCause::Corrupted { .. }) {
        // Corruption is never salvaged: the chunk was rolled back to its
        // pre-image (or the drift lies outside every footprint), and the
        // typed error already carries the exact clean resume point —
        // re-executing from `completed` could run on top of the
        // rollback and double-apply writes.
        return Err(err);
    }
    // `salvage_unsound` is only ever set for a *torn* chunk: interrupted
    // mid-body with neither a fail-stop promise nor a rolled-back undo
    // journal. Journaled chunks were restored bitwise by their faulting
    // worker before it drained, so salvage re-executes pristine state.
    if !tol.salvage || run.salvage_unsound.load(Ordering::Acquire) {
        return Err(err);
    }
    let mut done = run.completed.load(Ordering::Acquire);
    if done < m {
        let salvage_from = done;
        let resume = plan.range(salvage_from).start;
        // Chunk at a time so a cancellation arriving mid-salvage still
        // stops at an exact chunk boundary with an accurate resume point.
        while done < m {
            if gov.cancel.is_cancelled() {
                gov.cancel.note_observed();
                return Err(cancel_error(gov, &cause, committed_at(done)));
            }
            let r = plan.range(done);
            // SAFETY: every worker has joined, so this thread has
            // exclusive access and all completed chunks' writes
            // happen-before it.
            let salvage = catch_unwind(AssertUnwindSafe(|| unsafe { kernel.execute(r) }));
            if salvage.is_err() {
                // The kernel fails even sequentially: report the original
                // fault.
                return Err(err);
            }
            done += 1;
        }
        faults.push(FaultEvent::Salvaged {
            from_chunk: salvage_from,
            iters: iters - resume,
        });
    }
    let (retries, quarantined) = tally(&faults);
    Ok(RunStats {
        elapsed: start.elapsed(),
        chunks: m,
        iters,
        threads,
        degraded: true,
        faults,
        retries,
        quarantined,
        cancel_latency_ns: gov.cancel.latency().map_or(0, |d| d.as_nanos() as u64),
        budget_high_water: gov.budget.high_water(),
        scrubs: run.scrubs.load(Ordering::Relaxed),
    })
}

/// Execute a whole loop *sequence* (e.g. PARMVR's fifteen loops) under
/// cascaded execution with one persistent pool of worker threads
/// (panicking shim; prefer [`try_run_cascaded_sequence`]).
///
/// # Panics
///
/// Panics on an invalid configuration, an empty kernel sequence, or a
/// worker fault — with the [`RunError`] display as the message.
pub fn run_cascaded_sequence<K: RealKernel>(kernels: &[K], cfg: &RunnerConfig) -> Vec<RunStats> {
    match try_run_cascaded_sequence(kernels, cfg, &Tolerance::default()) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// Execute a loop sequence under cascaded execution with one persistent
/// pool of worker threads, handling faults per `tol`. Loops are separated
/// by a poisonable barrier ([`FtBarrier`]) — the analogue of the
/// application code between unparallelized loops — which both orders the
/// loops (helpers for loop `i+1` must not read operands loop `i` is still
/// writing) and provides the happens-before edge between them. A fault in
/// loop `l` poisons the tokens of loops `l..` and the barrier, so the pool
/// drains promptly; with salvage enabled the calling thread then finishes
/// loop `l` from its last completed chunk and runs every later loop
/// sequentially. Returns one [`RunStats`] per kernel, in order.
pub fn try_run_cascaded_sequence<K: RealKernel>(
    kernels: &[K],
    cfg: &RunnerConfig,
    tol: &Tolerance,
) -> Result<Vec<RunStats>, RunError> {
    try_run_cascaded_sequence_observed(kernels, cfg, tol, &Observe::default())
}

/// [`try_run_cascaded_sequence`] with explicit observability options.
pub fn try_run_cascaded_sequence_observed<K: RealKernel>(
    kernels: &[K],
    cfg: &RunnerConfig,
    tol: &Tolerance,
    obs: &Observe,
) -> Result<Vec<RunStats>, RunError> {
    run_cascaded_sequence_inner(kernels, cfg, tol, obs, &Govern::none())
}

/// [`try_run_governed`] for a whole loop sequence: one governed pool, one
/// cancel token, one deadline, one budget across every loop. The
/// `committed_iters` of a cancellation error is **global**: the summed
/// iteration counts of every fully completed loop plus the committed
/// prefix of the loop the cancel landed in, so a caller can replay the
/// remainder of the sequence from exactly that point.
pub fn try_run_governed_sequence<K: RealKernel>(
    kernels: &[K],
    cfg: &RunConfig,
) -> Result<Vec<RunStats>, RunError> {
    cfg.try_validate()?;
    if cfg.ckpt != CkptPolicy::Off {
        // A checkpoint manifest describes exactly one loop's committed
        // prefix; silently checkpointing only part of a sequence would
        // hand back a resume point that skips later loops. Refuse until
        // sequence manifests exist rather than mislead.
        return Err(RunError::InvalidConfig(
            "checkpointing covers a single governed loop; sequences are not \
             resumable yet — run loops individually, each with its own \
             checkpoint directory"
                .into(),
        ));
    }
    let gov = Govern {
        cancel: cfg.cancel.clone(),
        budget: cfg.budget.clone(),
        ckpt: None,
        verify: cfg.verify,
    };
    let _governor = cfg.deadline.map(|d| Governor::arm(&cfg.cancel, d));
    run_cascaded_sequence_inner(kernels, &cfg.runner, &cfg.tolerance, &cfg.observe, &gov)
}

fn run_cascaded_sequence_inner<K: RealKernel>(
    kernels: &[K],
    cfg: &RunnerConfig,
    tol: &Tolerance,
    obs: &Observe,
    gov: &Govern,
) -> Result<Vec<RunStats>, RunError> {
    validate(cfg)?;
    if kernels.is_empty() {
        return Err(RunError::InvalidConfig("empty kernel sequence".into()));
    }
    for k in kernels {
        if k.iters() == 0 {
            return Err(RunError::InvalidConfig("empty kernel".into()));
        }
    }
    let plans: Vec<ChunkPlan> = kernels
        .iter()
        .map(|k| ChunkPlan::by_iterations(k.iters(), cfg.iters_per_chunk))
        .collect();
    let runs: Vec<FtRun> = kernels.iter().map(|_| FtRun::new(cfg.nthreads)).collect();
    // One recovery state for the whole sequence: a worker quarantined in
    // loop l stays out of every later loop's roster, and the retry budget
    // is shared.
    let rec = Recovery::new(cfg.nthreads, tol);
    let barrier = FtBarrier::new(cfg.nthreads);
    let loop_starts: Vec<Mutex<Option<Instant>>> =
        kernels.iter().map(|_| Mutex::new(None)).collect();
    let loop_ends: Vec<Mutex<Option<Instant>>> = kernels.iter().map(|_| Mutex::new(None)).collect();

    // Arena-scrub baselines, one per loop. Loop `l`'s baseline digests
    // the bytes outside *loop l's* write footprints — bytes other loops
    // of the sequence legitimately mutate — so it cannot be taken until
    // every earlier loop has finished: loop 0's before any worker
    // spawns, each later loop's in the end-of-loop leader's quiescent
    // window, right after the previous loop's scrub comparison.
    let scrub_bases: Vec<Mutex<Option<u64>>> = kernels.iter().map(|_| Mutex::new(None)).collect();
    if gov.verify.armed() {
        // SAFETY: no worker spawned yet; trivially quiescent.
        let d = unsafe { kernels[0].scrub_digest() };
        if d.is_some() {
            runs[0].scrubs.fetch_add(1, Ordering::Relaxed);
        }
        *lock_recover(&scrub_bases[0]) = d;
    }

    // per_thread[t][l] = stats of thread t on loop l (may stop short when
    // a fault drained the pool).
    let per_thread: Vec<Vec<ThreadStats>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.nthreads)
            .map(|t| {
                let (plans, runs, rec, barrier) = (&plans, &runs, &rec, &barrier);
                let (loop_starts, loop_ends) = (&loop_starts, &loop_ends);
                let scrub_bases = &scrub_bases;
                s.spawn(move || {
                    let mut all = Vec::with_capacity(kernels.len());
                    'seq: for (l, kernel) in kernels.iter().enumerate() {
                        match barrier.wait() {
                            BarrierOutcome::Poisoned => break 'seq,
                            out if out.is_leader() => {
                                *lock_recover(&loop_starts[l]) = Some(Instant::now());
                            }
                            _ => {}
                        }
                        // A quarantined worker executes nothing (ft_worker
                        // drains immediately) but keeps pacing the
                        // barriers, so the surviving cascade stays in
                        // lockstep.
                        all.push(ft_worker(
                            kernel, cfg, tol, obs, gov, &plans[l], &runs[l], rec, t as u64,
                        ));
                        if let Some(cause) = runs[l].token.poison_cause() {
                            // Propagate the fault: no worker may block on a
                            // loop that will never start, and the poisoned
                            // barrier wakes everyone already waiting.
                            for later in &runs[l + 1..] {
                                later.token.poison_with(cause.clone());
                            }
                            barrier.poison();
                            break 'seq;
                        }
                        let mut seq_corrupt = false;
                        match barrier.wait() {
                            BarrierOutcome::Poisoned => break 'seq,
                            out if out.is_leader() => {
                                *lock_recover(&loop_ends[l]) = Some(Instant::now());
                                // Between sequence loops the leader
                                // verifies the loop's final chunk and
                                // runs the arena scrubber. Every other
                                // worker is parked at the next loop's
                                // start barrier (or exiting after the
                                // last loop), so the leader has
                                // quiescence on this loop's kernel.
                                if gov.verify.armed() {
                                    if let Some(p) = lock_recover(&runs[l].verify_slot).take() {
                                        if p.chunk + 1 == plans[l].num_chunks()
                                            && verify_committed(
                                                kernel, &runs[l], rec, gov, tol, p.executor, p,
                                            ) == VerifyVerdict::Failed
                                        {
                                            seq_corrupt = true;
                                        }
                                    }
                                    if !seq_corrupt {
                                        if let Some(base) = *lock_recover(&scrub_bases[l]) {
                                            // SAFETY: quiescent (see above).
                                            if let Some(now_d) = unsafe { kernel.scrub_digest() } {
                                                let scrubs = &runs[l].scrubs;
                                                scrubs.fetch_add(1, Ordering::Relaxed);
                                                if now_d != base {
                                                    runs[l].record(
                                                        FaultEvent::CorruptionDetected {
                                                            chunk: u64::MAX,
                                                            expected: base,
                                                            found: now_d,
                                                            repaired: false,
                                                        },
                                                    );
                                                    runs[l].token.poison_with(
                                                        PoisonCause::Corrupted {
                                                            thread: None,
                                                            chunk: None,
                                                            resume_at: kernels[l].iters(),
                                                        },
                                                    );
                                                    seq_corrupt = true;
                                                }
                                            }
                                        }
                                    }
                                    if !seq_corrupt && l + 1 < kernels.len() {
                                        // Still quiescent: every earlier
                                        // loop's writes are in, the next
                                        // loop's have not begun — the
                                        // only sound moment for the next
                                        // loop's baseline.
                                        // SAFETY: quiescent (see above).
                                        let d = unsafe { kernels[l + 1].scrub_digest() };
                                        if d.is_some() {
                                            let scrubs = &runs[l + 1].scrubs;
                                            scrubs.fetch_add(1, Ordering::Relaxed);
                                        }
                                        *lock_recover(&scrub_bases[l + 1]) = d;
                                    }
                                }
                            }
                            _ => {}
                        }
                        if seq_corrupt {
                            // Same propagation as a mid-loop fault: no
                            // worker may block on a loop that will never
                            // start.
                            if let Some(cause) = runs[l].token.poison_cause() {
                                for later in &runs[l + 1..] {
                                    later.token.poison_with(cause.clone());
                                }
                            }
                            barrier.poison();
                            break 'seq;
                        }
                    }
                    all
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let thread_stats_for = |l: usize| -> Vec<ThreadStats> {
        per_thread
            .iter()
            .map(|tv| tv.get(l).cloned().unwrap_or_default())
            .collect()
    };
    let healthy_stats = |l: usize| -> Result<RunStats, RunError> {
        let (start, end) = loop_stamps(&loop_starts[l], &loop_ends[l])
            .ok_or(RunError::LeaderLost { loop_idx: l as u64 })?;
        let faults = runs[l].take_faults();
        let (retries, quarantined) = tally(&faults);
        Ok(RunStats {
            elapsed: end.duration_since(start),
            chunks: plans[l].num_chunks(),
            iters: kernels[l].iters(),
            threads: thread_stats_for(l),
            degraded: false,
            faults,
            retries,
            quarantined,
            cancel_latency_ns: gov.cancel.latency().map_or(0, |d| d.as_nanos() as u64),
            budget_high_water: gov.budget.high_water(),
            scrubs: runs[l].scrubs.load(Ordering::Relaxed),
        })
    };

    let Some(l0) = runs.iter().position(|r| r.token.poison_cause().is_some()) else {
        return (0..kernels.len()).map(healthy_stats).collect();
    };

    // --- degraded path ---
    let cause = runs[l0]
        .token
        .poison_cause()
        .expect("position found a cause");
    // Global sequential resume point: every iteration of loops before `l`
    // plus the committed prefix within `l` (completion is in token order).
    let committed_global = |l: usize, done: u64| -> u64 {
        let before: u64 = kernels[..l].iter().map(|k| k.iters()).sum();
        let within = if done < plans[l].num_chunks() {
            plans[l].range(done).start
        } else {
            kernels[l].iters()
        };
        before + within
    };

    // --- cancelled path: drained clean, never salvaged ---
    if matches!(cause, PoisonCause::Cancelled { .. }) {
        if runs
            .iter()
            .any(|r| r.salvage_unsound.load(Ordering::Acquire))
        {
            let all: Vec<FaultEvent> = runs.iter().flat_map(|r| r.take_faults()).collect();
            return Err(torn_fallback(&all));
        }
        let done = runs[l0].completed.load(Ordering::Acquire);
        return Err(cancel_error(gov, &cause, committed_global(l0, done)));
    }

    if let PoisonCause::Corrupted {
        thread,
        chunk,
        resume_at,
    } = &cause
    {
        // Corruption is never salvaged (the rollback already restored
        // the exact clean prefix); rebase the loop-local resume point
        // onto the global iteration count.
        let before: u64 = kernels[..l0].iter().map(|k| k.iters()).sum();
        return Err(RunError::Corrupted {
            thread: *thread,
            chunk: *chunk,
            committed_iters: before + resume_at,
        });
    }

    let err = run_error_from(&cause);
    if !tol.salvage
        || runs
            .iter()
            .any(|r| r.salvage_unsound.load(Ordering::Acquire))
    {
        return Err(err);
    }
    let mut out: Vec<RunStats> = (0..l0).map(healthy_stats).collect::<Result<_, _>>()?;
    // Finish loop l0 from its last completed chunk, then run every later
    // loop start-to-end, all sequentially on this thread. Every worker has
    // joined, so exclusivity and happens-before hold.
    for l in l0..kernels.len() {
        let mut faults = runs[l].take_faults();
        let m = plans[l].num_chunks();
        let iters = kernels[l].iters();
        let mut done = runs[l].completed.load(Ordering::Acquire);
        let t0 = Instant::now();
        if done < m {
            let salvage_from = done;
            let resume = plans[l].range(salvage_from).start;
            // Chunk at a time so a cancellation arriving mid-salvage
            // still stops at an exact chunk boundary with an accurate
            // (global) resume point.
            while done < m {
                if gov.cancel.is_cancelled() {
                    gov.cancel.note_observed();
                    return Err(cancel_error(gov, &cause, committed_global(l, done)));
                }
                let r = plans[l].range(done);
                // SAFETY: all workers joined; single-threaded remainder.
                let salvage = catch_unwind(AssertUnwindSafe(|| unsafe { kernels[l].execute(r) }));
                if salvage.is_err() {
                    return Err(err);
                }
                done += 1;
            }
            faults.push(FaultEvent::Salvaged {
                from_chunk: salvage_from,
                iters: iters - resume,
            });
        }
        let (retries, quarantined) = tally(&faults);
        out.push(RunStats {
            elapsed: t0.elapsed(),
            chunks: m,
            iters,
            threads: thread_stats_for(l),
            degraded: true,
            faults,
            retries,
            quarantined,
            cancel_latency_ns: gov.cancel.latency().map_or(0, |d| d.as_nanos() as u64),
            budget_high_water: gov.budget.high_water(),
            scrubs: runs[l].scrubs.load(Ordering::Relaxed),
        });
    }
    Ok(out)
}

/// The leader's start/end stamps of a healthy sequence loop, or `None`
/// when either is missing — the leader died between winning a barrier
/// and writing its stamp. That window is unreachable through the public
/// API (a worker dying inside a loop poisons it, so the loop never reads
/// as healthy, and barriers are all-arrive so healthy loops are fully
/// stamped by join time), but a protocol regression here used to
/// `expect` and panic the *supervisor*; callers now surface
/// [`RunError::LeaderLost`] instead.
fn loop_stamps(
    start: &Mutex<Option<Instant>>,
    end: &Mutex<Option<Instant>>,
) -> Option<(Instant, Instant)> {
    let s = (*lock_recover(start))?;
    let e = (*lock_recover(end))?;
    Some((s, e))
}

/// Should the helper for chunk `j` stop and go claim? True when the token
/// has reached (or passed) `j`, is poisoned, the run was cancelled, or
/// the roster was remapped — in the last case `j` may no longer be ours
/// to help for.
#[inline]
fn helper_jump_out(run: &FtRun, gov: &Govern, j: u64, epoch: u64) -> bool {
    let raw = run.token.raw();
    raw == POISONED
        || Token::chunk_index(raw) >= j
        || run.roster.epoch() != epoch
        || gov.cancel.is_cancelled()
}

/// What one helper phase accomplished.
#[derive(Debug, Default, Clone, Copy)]
struct HelperOut {
    /// Iterations packed into the sequential buffer (restructure only).
    packed_iters: u64,
    /// Iterations covered by helper work (prefetched or packed).
    helped_iters: u64,
    /// Poll batches that found no headroom below the dependence horizon
    /// and spun waiting for the token to commit more chunks.
    horizon_stalls: u64,
    /// The phase was abandoned (token arrival / jump-out / remap) before
    /// covering its whole range.
    jumped_out: bool,
}

/// Helper work for chunk `j` (covering `range`): prefetch or pack until
/// the token arrives or the range is exhausted.
///
/// When the kernel declares a [`RealKernel::helper_horizon`] of `lag`
/// (a loop-carried read whose aliasing writes trail by at least `lag`
/// iterations), the helper never touches an iteration `i` unless
/// `i < committed + lag`, where `committed` is the first iteration of
/// the chunk the token currently licenses: every value such an `i` reads
/// was produced by an already-committed chunk and is visible through the
/// token's Acquire load. The horizon *grows* as the token advances, so
/// the helper re-reads it each poll batch and spins (still watching for
/// jump-out) while it has caught up with the horizon.
#[allow(clippy::too_many_arguments)] // a phase is naturally parameterized by all of these
fn helper_phase<K: RealKernel>(
    kernel: &K,
    cfg: &RunnerConfig,
    run: &FtRun,
    gov: &Govern,
    plan: &ChunkPlan,
    j: u64,
    epoch: u64,
    range: &Range<u64>,
    buf: &mut Vec<u8>,
) -> HelperOut {
    let mut out = HelperOut::default();
    let horizon = kernel.helper_horizon();
    let m = plan.num_chunks();
    // Cap a batch end at the current helper horizon. The token read is
    // Acquire (see `Token::raw`), so every write of a chunk below the
    // observed position happens-before any value read under this cap.
    let horizon_cap = |want: u64| -> u64 {
        match horizon {
            None => want,
            Some(lag) => {
                let raw = run.token.raw();
                if raw == POISONED {
                    return 0;
                }
                let pos = Token::chunk_index(raw);
                let committed = if pos >= m {
                    kernel.iters()
                } else {
                    plan.range(pos).start
                };
                committed.saturating_add(lag).min(want)
            }
        }
    };
    match cfg.policy {
        RtPolicy::None => {}
        RtPolicy::Prefetch => {
            let mut i = range.start;
            while !helper_jump_out(run, gov, j, epoch) && i < range.end {
                let batch_end = horizon_cap((i + cfg.poll_batch).min(range.end));
                if batch_end <= i {
                    // Caught up with the horizon: wait for the token to
                    // commit more chunks (or arrive, via jump-out).
                    out.horizon_stalls += 1;
                    std::hint::spin_loop();
                    continue;
                }
                for ii in i..batch_end {
                    kernel.prefetch_iter(ii);
                }
                out.helped_iters += batch_end - i;
                i = batch_end;
            }
            out.jumped_out = i < range.end;
        }
        RtPolicy::Restructure => {
            buf.clear();
            let mut i = range.start;
            let mut supported = true;
            while supported && !helper_jump_out(run, gov, j, epoch) && i < range.end {
                let batch_end = horizon_cap((i + cfg.poll_batch).min(range.end));
                if batch_end <= i {
                    out.horizon_stalls += 1;
                    std::hint::spin_loop();
                    continue;
                }
                for ii in i..batch_end {
                    if !kernel.pack_iter(ii, buf) {
                        supported = false;
                        break;
                    }
                    out.packed_iters += 1;
                }
                i = range.start + out.packed_iters;
                if !supported {
                    // Kernel cannot pack: degrade to nothing packed.
                    buf.clear();
                    out.packed_iters = 0;
                }
            }
            out.helped_iters = out.packed_iters;
            out.jumped_out = supported && i < range.end;
        }
    }
    out
}

/// How a wait for chunk `j` ended.
enum ChunkClaim {
    /// We won the claim CAS: we are the unique executor of `j`.
    Claimed,
    /// The token moved past `j` (someone else executed it — e.g. a
    /// quarantined owner finishing late after its chunk was remapped to
    /// us): recompute ownership and move on.
    Superseded,
    /// The roster epoch moved while we waited: our ownership of `j` may be
    /// stale, recompute.
    Remapped,
    /// The token is poisoned: drain.
    Poisoned,
    /// We were quarantined while waiting: drain.
    Quarantined,
}

/// What a waiter should do after declaring a stall.
enum StallAction {
    /// Keep waiting this much longer (a strike backoff, or recovery by
    /// another detector is underway).
    Wait(Duration),
    /// The token is (now) poisoned: stop waiting.
    Poisoned,
}

/// Poison the token with a stall cause; the winning poisoner alone
/// records the event (and, when the retry ladder gave up, why it fell
/// through).
fn poison_stalled(
    run: &FtRun,
    stuck: u64,
    waited: Duration,
    abandon: Option<RetryAbandon>,
) -> StallAction {
    if run.token.poison_with(PoisonCause::Stalled {
        chunk: stuck,
        waited,
    }) {
        run.record(FaultEvent::StallDeclared {
            chunk: stuck,
            waited,
        });
        if let Some(reason) = abandon {
            run.record(FaultEvent::RetryAbandoned {
                chunk: stuck,
                reason,
            });
        }
    }
    StallAction::Poisoned
}

/// A full watchdog window elapsed with no token movement at all. Without
/// retry, poison immediately (PR 1 behavior). With retry, strike the
/// suspect — the stuck chunk's roster owner, or the recorded claimant
/// when an executor went quiet mid-body — granting exponential backoff;
/// on a quarantine verdict either remap the chunk to survivors (it was
/// never claimed, so re-execution is safe) or abandon recovery (a stuck
/// executor may still write, its chunk is unretryable) and poison.
fn declare_stall(
    run: &FtRun,
    rec: &Recovery,
    t: u64,
    raw: u64,
    waited: Duration,
    window: Duration,
) -> StallAction {
    let stuck = Token::chunk_index(raw);
    if !rec.enabled() {
        return poison_stalled(run, stuck, waited, None);
    }
    let executing = raw & EXEC_BIT != 0;
    let suspect = if executing {
        run.claimant.load(Ordering::Acquire)
    } else {
        match run.roster.owner_of(stuck) {
            Some(owner) => owner,
            // A remap is in flight; our own epoch check will fire.
            None => return StallAction::Wait(window),
        }
    };
    if suspect == t {
        // The stuck chunk is (or just became) ours: no self-strike, go
        // recompute ownership instead of waiting here.
        return StallAction::Wait(window);
    }
    match rec.health.strike(suspect) {
        StrikeVerdict::Backoff { wait, fresh } => {
            if fresh {
                run.record(FaultEvent::StallStrike {
                    thread: suspect,
                    chunk: stuck,
                    strikes: rec.health.strikes(suspect),
                    backoff: wait,
                });
            }
            StallAction::Wait(wait)
        }
        StrikeVerdict::Quarantine => {
            if executing {
                // The executor claimed the chunk and went quiet mid-body:
                // it may still write, so the chunk must never be retried.
                return poison_stalled(run, stuck, waited, Some(RetryAbandon::ExecutorStuck));
            }
            if !rec.health.quarantine(suspect) {
                // Another detector won: its remap is underway.
                return StallAction::Wait(window);
            }
            if !rec.try_consume_budget() {
                return poison_stalled(run, stuck, waited, Some(RetryAbandon::BudgetExhausted));
            }
            match run.roster.remove(suspect, stuck) {
                RemoveOutcome::LastWorker => {
                    poison_stalled(run, stuck, waited, Some(RetryAbandon::NoSurvivors))
                }
                RemoveOutcome::NotLive => StallAction::Wait(window),
                RemoveOutcome::Removed => {
                    lock_recover(&run.retry_from).insert(stuck, suspect);
                    run.record(FaultEvent::WorkerQuarantined {
                        thread: suspect,
                        chunk: stuck,
                    });
                    StallAction::Wait(window)
                }
            }
        }
    }
}

/// Wait for chunk `j` and claim it. With a watchdog window, the waiter
/// re-arms its deadline every time the raw token value moves (grants and
/// claims both count as progress); a full window with no movement climbs
/// the stall ladder in [`declare_stall`].
fn wait_to_claim(
    run: &FtRun,
    rec: &Recovery,
    tol: &Tolerance,
    gov: &Govern,
    t: u64,
    j: u64,
    epoch: u64,
) -> ChunkClaim {
    let started = Instant::now();
    let mut observed = run.token.raw();
    let mut deadline = tol.watchdog.map(|w| Instant::now() + w);
    let mut spins = 0u64;
    loop {
        let raw = run.token.raw();
        match Token::decode(raw) {
            TokenView::Poisoned => return ChunkClaim::Poisoned,
            TokenView::Granted(p) | TokenView::Claimed(p) if p > j => {
                return ChunkClaim::Superseded
            }
            TokenView::Granted(p) if p == j && run.token.try_claim(j) => {
                run.claimant.store(t, Ordering::Release);
                return ChunkClaim::Claimed;
                // A claimant that loses the CAS falls to `_` instead and
                // re-observes the token (Superseded soon).
            }
            _ => {}
        }
        if run.roster.epoch() != epoch {
            return ChunkClaim::Remapped;
        }
        std::hint::spin_loop();
        spins += 1;
        if spins.is_multiple_of(1024) {
            if rec.health.is_quarantined(t) {
                return ChunkClaim::Quarantined;
            }
            if gov.cancel.is_cancelled() {
                // Poisoning while another executor holds a claim is safe:
                // its `completed` bump precedes the advance the poison
                // refuses, so the resume point stays exact
                // (LateCompletion, like a watchdog poison).
                poison_cancelled(run, gov);
                return ChunkClaim::Poisoned;
            }
            if let (Some(window), Some(d)) = (tol.watchdog, deadline) {
                let now = Instant::now();
                let raw_now = run.token.raw();
                if raw_now != observed {
                    observed = raw_now;
                    deadline = Some(now + window);
                } else if now >= d {
                    if raw_now == POISONED {
                        return ChunkClaim::Poisoned;
                    }
                    match declare_stall(run, rec, t, raw_now, started.elapsed(), window) {
                        StallAction::Wait(extra) => deadline = Some(now + extra),
                        StallAction::Poisoned => return ChunkClaim::Poisoned,
                    }
                }
            }
            std::thread::yield_now();
        }
    }
}

/// Handle a worker panic at chunk `j` (`claimed` = during the execution
/// phase, i.e. we hold the claim; `pristine` = the chunk's shared state
/// is bitwise pre-chunk — the body never started, the kernel promises
/// fail-stop panics, or the undo journal was rolled back). Climbs the
/// recovery ladder; returns `true` when the fault was absorbed
/// in-cascade (self-quarantine, roster remap, claimed chunk handed back
/// for a survivor to retry) and `false` when it fell through to token
/// poisoning.
fn recover_from_panic(
    run: &FtRun,
    rec: &Recovery,
    t: u64,
    j: u64,
    claimed: bool,
    pristine: bool,
    payload: Box<dyn std::any::Any + Send>,
) -> bool {
    let message = panic_message(payload.as_ref());
    run.record(FaultEvent::WorkerPanicked {
        thread: t,
        chunk: j,
        message: message.clone(),
    });
    if claimed && !pristine {
        // The chunk body was interrupted and is torn: no fail-stop
        // promise and no rolled-back journal, so part of its writes may
        // have landed and neither retry nor salvage may re-run it.
        run.salvage_unsound.store(true, Ordering::Release);
    }
    let mut abandon = None;
    if rec.enabled() {
        if claimed && !pristine {
            abandon = Some(RetryAbandon::KernelNotFailStop);
        } else if !rec.try_consume_budget() {
            abandon = Some(RetryAbandon::BudgetExhausted);
        } else if let Some(anchor) = run.token.position() {
            // Anchor the remap at the token's position — the lowest
            // unexecuted chunk (completion is in token order) — so chunks
            // between it and j are re-owned too, not orphaned.
            match run.roster.remove(t, anchor) {
                RemoveOutcome::LastWorker => abandon = Some(RetryAbandon::NoSurvivors),
                out => {
                    if matches!(out, RemoveOutcome::Removed) {
                        rec.health.quarantine(t);
                        run.record(FaultEvent::WorkerQuarantined {
                            thread: t,
                            chunk: j,
                        });
                    }
                    lock_recover(&run.retry_from).insert(j, t);
                    if !claimed || run.token.try_unclaim(j) {
                        return true;
                    }
                    // The token was poisoned while we recovered: fall
                    // through and report the panic as usual.
                }
            }
        }
        if let Some(reason) = abandon {
            run.record(FaultEvent::RetryAbandoned { chunk: j, reason });
        }
    }
    run.token.poison_with(PoisonCause::Panicked {
        thread: t,
        chunk: j,
        message,
    });
    false
}

/// Outcome of verifying one committed chunk against its handoff packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VerifyVerdict {
    /// The committed bytes check out — or a lone replay mismatch failed
    /// its own tiebreak, which indicts the verifier, not the executor.
    Verified,
    /// Corruption confirmed by the tiebreak and repaired in place by
    /// installing the verified replay bytes; the run continues cascaded.
    Repaired,
    /// Corruption confirmed with no recovery path: the chunk was rolled
    /// back to its pre-image and the token poisoned
    /// ([`PoisonCause::Corrupted`]). The caller drains.
    Failed,
}

/// Verify committed chunk `p.chunk` against its handoff packet: recompute
/// the write-footprint digest, and — under a replaying policy — re-execute
/// the chunk against a journaled private view
/// ([`RealKernel::replay_footprint`]) and compare bytes. On a replay
/// mismatch a *second* replay is the sequential tiebreak: only when both
/// replays agree against the committed bytes is the executor blamed (a
/// lone mismatch could equally be the verifier's own fault — blame
/// without the tiebreak is the seeded model-checker bug). A conviction is
/// a corruption strike ([`HealthRegistry::corruption_strike`]): the first
/// offense is repaired in place, the second quarantines the executor via
/// the roster remap. Recovery installs the verified replay bytes whenever
/// the tolerance has any recovery path (retry or salvage); otherwise the
/// chunk is rolled back to its pre-image and the token poisoned, so the
/// typed error's committed prefix never contains a corrupted chunk.
///
/// The caller must hold the downstream chunk's claim (or have joined all
/// workers): verification happens-before the downstream chunk's
/// execution, so corruption is caught before the next handoff consumes
/// it — never after the run.
fn verify_committed<K: RealKernel>(
    kernel: &K,
    run: &FtRun,
    rec: &Recovery,
    gov: &Govern,
    tol: &Tolerance,
    verifier: u64,
    p: VerifyPacket,
) -> VerifyVerdict {
    let mut committed = Vec::new();
    // SAFETY: the caller holds the downstream claim (or every worker has
    // joined), so no execute overlaps `p.range`'s footprint, and capture
    // only reads.
    let ok = catch_unwind(AssertUnwindSafe(|| unsafe {
        kernel.journal_capture(p.range.clone(), &mut committed)
    }))
    .unwrap_or(false);
    if !ok {
        // The kernel lost its footprint bound mid-run: nothing to check
        // against (the executor could not have published a packet either
        // unless this is transient; be conservative, not wrong).
        return VerifyVerdict::Verified;
    }
    let found = fnv64(&committed);

    if gov.verify.replays(p.chunk) {
        if let Some(pre) = p.pre_image.as_deref() {
            let replay = || -> Option<Vec<u8>> {
                // SAFETY: same exclusivity as the capture above; replay
                // routes every footprint access through a private
                // overlay and never writes shared memory.
                catch_unwind(AssertUnwindSafe(|| unsafe {
                    kernel.replay_footprint(p.range.clone(), pre)
                }))
                .ok()
                .flatten()
            };
            if let Some(r1) = replay() {
                if r1 == committed {
                    return VerifyVerdict::Verified;
                }
                let Some(r2) = replay() else {
                    // Tiebreak unavailable: a lone mismatch never blames.
                    return VerifyVerdict::Verified;
                };
                if r2 != r1 {
                    // The verifier's own replays disagree: the fault is
                    // on our side, the committed bytes stand.
                    return VerifyVerdict::Verified;
                }
                // Tiebreak confirmed: the committed bytes are wrong. Who
                // is to blame hangs on the published digest. If it
                // matches the committed bytes, the executor *computed*
                // them — guilty. If not, the corruption landed after the
                // executor's own commit-time capture (a post-commit
                // flip), and blaming the executor would convict an
                // innocent worker — the single-fault attribution the
                // model checker proves.
                let blamed = if found == p.digest {
                    Some(p.executor)
                } else {
                    None
                };
                return convict(kernel, run, rec, tol, verifier, &p, &r1, found, blamed);
            }
        }
    }

    // Digest-only comparison (Checksum policy, unsampled chunks, or no
    // replay path): catches corruption that landed *after* the
    // executor's own post-execution capture. No replay means no
    // tiebreak, so no blame — and no verified bytes to install, so
    // detection always fails the run.
    if found == p.digest {
        return VerifyVerdict::Verified;
    }
    run.record(FaultEvent::CorruptionDetected {
        chunk: p.chunk,
        expected: p.digest,
        found,
        repaired: false,
    });
    fail_rollback(kernel, run, &p, None)
}

/// The tiebreak confirmed the corruption: assign blame (when the digest
/// proves the executor computed the bytes — `blamed` is `None` for a
/// post-commit flip the executor is innocent of), quarantine a repeat
/// offender, and recover — install the verified replay bytes in place
/// when the tolerance has a recovery path, or roll back to the pre-image
/// and poison the token when it does not.
#[allow(clippy::too_many_arguments)] // a conviction is parameterized by the whole verify context
fn convict<K: RealKernel>(
    kernel: &K,
    run: &FtRun,
    rec: &Recovery,
    tol: &Tolerance,
    verifier: u64,
    p: &VerifyPacket,
    verified: &[u8],
    found: u64,
    blamed: Option<u64>,
) -> VerifyVerdict {
    let expected = fnv64(verified);
    if let Some(guilty) = blamed {
        let quarantine_now = rec.health.corruption_strike(guilty);
        run.record(FaultEvent::WorkerBlamed {
            thread: guilty,
            chunk: p.chunk,
            strikes: rec.health.corruption_strikes(guilty),
        });
        if quarantine_now {
            // Repeat offender: remove from the roster (remapping its
            // remaining chunks across survivors, anchored at the token's
            // position so nothing is orphaned) — unless it is the last
            // live worker, in which case refusing strands nobody.
            let anchor = run.token.position().unwrap_or(p.chunk + 1);
            if matches!(run.roster.remove(guilty, anchor), RemoveOutcome::Removed)
                && rec.health.quarantine(guilty)
            {
                run.record(FaultEvent::WorkerQuarantined {
                    thread: guilty,
                    chunk: p.chunk,
                });
            }
        }
    }
    if rec.enabled() || tol.salvage {
        // Install the verified replay bytes: rollback and re-execution
        // in one restore — bitwise what a clean execution left behind.
        let installed = catch_unwind(AssertUnwindSafe(|| unsafe {
            // SAFETY: caller's exclusivity (downstream claim or
            // post-join); `verified` is in journal layout over `p.range`.
            kernel.journal_rollback(p.range.clone(), verified)
        }))
        .is_ok();
        if installed {
            run.record(FaultEvent::CorruptionDetected {
                chunk: p.chunk,
                expected,
                found,
                repaired: true,
            });
            if verifier != p.executor {
                run.record(FaultEvent::ChunkRetried {
                    chunk: p.chunk,
                    from_thread: p.executor,
                    by_thread: verifier,
                });
            }
            return VerifyVerdict::Repaired;
        }
    }
    run.record(FaultEvent::CorruptionDetected {
        chunk: p.chunk,
        expected,
        found,
        repaired: false,
    });
    fail_rollback(kernel, run, p, blamed)
}

/// Roll the corrupted chunk back to its pre-image and poison the token:
/// the committed prefix carried by the typed error must never contain a
/// corrupted chunk. A missing or panicking rollback additionally marks
/// the run salvage-unsound (the state cannot be trusted at all).
fn fail_rollback<K: RealKernel>(
    kernel: &K,
    run: &FtRun,
    p: &VerifyPacket,
    blamed: Option<u64>,
) -> VerifyVerdict {
    let rolled_back = match p.pre_image.as_deref() {
        // SAFETY: caller's exclusivity; `pre` is the unmodified capture
        // of this same range taken before the chunk executed.
        Some(pre) => catch_unwind(AssertUnwindSafe(|| unsafe {
            kernel.journal_rollback(p.range.clone(), pre)
        }))
        .is_ok(),
        None => false,
    };
    if !rolled_back {
        run.salvage_unsound.store(true, Ordering::Release);
    }
    let resume_at = if rolled_back {
        p.range.start
    } else {
        p.range.end
    };
    run.token.poison_with(PoisonCause::Corrupted {
        thread: blamed,
        chunk: Some(p.chunk),
        resume_at,
    });
    VerifyVerdict::Failed
}

#[allow(clippy::too_many_arguments)] // a worker is parameterized by the whole run context
fn ft_worker<K: RealKernel>(
    kernel: &K,
    cfg: &RunnerConfig,
    tol: &Tolerance,
    obs: &Observe,
    gov: &Govern,
    plan: &ChunkPlan,
    run: &FtRun,
    rec: &Recovery,
    t: u64,
) -> ThreadStats {
    // The recorder's transitions replace ad-hoc `Instant` pairs: one
    // timestamp both closes the outgoing phase and opens the incoming
    // one, so the per-phase totals tile this worker's wall time exactly.
    let mut phases = PhaseRecorder::new(run.origin, obs);
    run.roster.sync_with(&rec.health);
    let mut stats = ThreadStats::default();
    let mut buf: Vec<u8> = Vec::new();
    // Reusable undo-journal buffer (capture clears and refills it per
    // chunk, so like `buf` it amortizes to zero allocations at steady
    // state).
    let mut jbuf: Vec<u8> = Vec::new();
    let m = plan.num_chunks();
    let mut cursor = 0u64;
    loop {
        if rec.health.is_quarantined(t) {
            return phases.finish(stats);
        }
        if gov.cancel.is_cancelled() && run.completed.load(Ordering::Acquire) < m {
            // Cancelled with work still outstanding: drain leader-ward.
            // (When every chunk already committed the run is complete —
            // exactly one terminal outcome, so no poison.)
            poison_cancelled(run, gov);
            return phases.finish(stats);
        }
        // The token position is the lowest unexecuted chunk: never look
        // for work below it.
        match run.token.position() {
            None => return phases.finish(stats), // poisoned: the supervisor handles recovery
            Some(p) => cursor = cursor.max(p),
        }
        let epoch = run.roster.epoch();
        let Some(j) = run.roster.next_owned(t, cursor) else {
            return phases.finish(stats); // not on the roster (quarantined before this loop)
        };
        if j >= m {
            // Drained: no chunk of ours remains. With retry enabled, leave
            // the roster *before* exiting — otherwise a later remap could
            // hand a faulted worker's chunks to a worker that has already
            // returned, orphaning them (the model checker found exactly
            // this lost-chunk schedule). Anchoring at the token's current
            // position is safe: everything below it has executed.
            if rec.enabled() {
                if let Some(p) = run.token.position() {
                    let _ = run.roster.remove(t, p);
                }
            }
            return phases.finish(stats);
        }
        let range = plan.range(j);
        let range_len = range.end - range.start;

        // --- helper phase (with jump-out at poll_batch granularity) ---
        phases.transition(PhaseKind::Helper, Some(j));
        let buf_cap0 = buf.capacity();
        let helper = catch_unwind(AssertUnwindSafe(|| {
            helper_phase(kernel, cfg, run, gov, plan, j, epoch, &range, &mut buf)
        }));
        let helper = match helper {
            Ok(out) => out,
            Err(payload) => {
                // Helpers never touch loop-written state, so the chunk body
                // is untouched (pristine); both retry and salvage stay
                // sound. Either way (recovered in-cascade or poisoned) this
                // worker is done.
                phases.transition(PhaseKind::Retry, Some(j));
                recover_from_panic(run, rec, t, j, false, true, payload);
                return phases.finish(stats);
            }
        };
        // Meter the pack arena's capacity growth (the buffer is long-lived
        // and amortizes to a steady state, so `used` tracks the peak bytes
        // it pins). A refusal cancels the run instead of allocating on.
        let buf_growth = buf.capacity().saturating_sub(buf_cap0) as u64;
        if !gov.budget.try_reserve(buf_growth) {
            gov.cancel.cancel_with(
                CancelKind::Budget {
                    needed: buf_growth,
                    limit: gov.budget.limit().unwrap_or(0),
                },
                "helper pack-arena growth exceeds the memory budget",
            );
            poison_cancelled(run, gov);
            return phases.finish(stats);
        }
        stats.helper_iters += helper.helped_iters;
        stats.horizon_stalls += helper.horizon_stalls;
        if helper.jumped_out {
            stats.jump_outs += 1;
        }
        if helper.packed_iters > 0 {
            stats.packed_bytes += buf.len() as u64;
        }
        if matches!(cfg.policy, RtPolicy::Prefetch) {
            stats.prefetched_bytes += helper.helped_iters * kernel.prefetch_bytes_per_iter();
        }
        if helper.helped_iters >= range_len && !matches!(cfg.policy, RtPolicy::None) {
            stats.helper_complete += 1;
        }

        // --- wait for the token and claim the chunk ---
        phases.transition(PhaseKind::Spin, Some(j));
        let claim = wait_to_claim(run, rec, tol, gov, t, j, epoch);
        let (claim_ns, _) = phases.transition(PhaseKind::Other, Some(j));
        match claim {
            ChunkClaim::Claimed => {}
            ChunkClaim::Superseded | ChunkClaim::Remapped => continue,
            ChunkClaim::Poisoned | ChunkClaim::Quarantined => return phases.finish(stats),
        }
        if gov.cancel.is_cancelled() {
            // We hold the claim but the body never started: the chunk is
            // pristine, and poisoning the token discards the claim, so
            // `j` stays the first uncommitted chunk.
            poison_cancelled(run, gov);
            return phases.finish(stats);
        }
        // Handoff latency: the previous executor stamped the grant of `j`
        // before the advance our claim CAS read from, so (Release/Acquire
        // through the token) the stamp is visible and the pairing exact.
        // Chunk 0's grant predates the run: no stamp, no sample.
        if run.release_chunk.load(Ordering::Acquire) == j {
            let rel = run.release_ns.load(Ordering::Relaxed);
            stats.takeover.record(claim_ns.saturating_sub(rel));
        }

        // --- verify the predecessor's handoff (claim held) ---
        // Verification happens-before this chunk's execution: while we
        // hold the claim no execute can run anywhere, so the committed
        // predecessor is checked *before* its bytes feed the downstream
        // computation — corruption is caught at the handoff, never after
        // the run. Cost rides inside the Other phase as a side counter
        // (`verify_ns`); with `VerifyPolicy::Off` this is one branch.
        if gov.verify.armed() && j > 0 {
            let t0 = Instant::now();
            if let Some(p) = lock_recover(&run.verify_slot).take() {
                if p.chunk + 1 == j {
                    stats.verified_chunks += 1;
                    let verdict = verify_committed(kernel, run, rec, gov, tol, t, p);
                    if verdict == VerifyVerdict::Failed {
                        stats.verify_ns += t0.elapsed().as_nanos();
                        return phases.finish(stats);
                    }
                }
                // A packet for any other chunk is stale (a remap or a
                // supersede raced the slot): drop it without blame —
                // checking it against the wrong predecessor could
                // accuse an innocent worker.
            }
            stats.verify_ns += t0.elapsed().as_nanos();
            // Deferred durable checkpoint: with verification armed, the
            // prefix through chunk j - 1 becomes persistable only now —
            // the predecessor's handoff was just checked (or repaired)
            // above, and every older chunk passed its own claimant's
            // check. The sink's contiguity tracking makes repeated
            // publication after retries a no-op.
            if let Some(ck) = &gov.ckpt {
                let t0 = Instant::now();
                let written = catch_unwind(AssertUnwindSafe(|| {
                    ck.sink.on_commit(
                        ck.policy,
                        j,
                        range.start,
                        |c| plan.range(c).start,
                        // SAFETY: we hold the claim — no executor is
                        // active anywhere, and every chunk below `j` is
                        // committed — and capture only reads.
                        |r, buf| unsafe { kernel.journal_capture(r, buf) },
                    )
                }))
                .unwrap_or(None);
                if let Some(bytes) = written {
                    stats.ckpt_count += 1;
                    stats.ckpt_bytes += bytes;
                }
                stats.ckpt_ns += t0.elapsed().as_nanos();
            }
        }

        // --- execution phase (we hold the claim: unique executor) ---
        phases.transition(PhaseKind::Execute, Some(j));
        // Chunk transaction: when any recovery path could want this chunk
        // re-executed (retry or salvage), or online verification needs a
        // pre-image to seed its replay overlay, capture the chunk's undo
        // journal — the analyzer-bounded write-set bytes — before the
        // body runs. The timing rides inside the Execute phase as a side
        // counter (`journal_ns`), so the exact phase partition is
        // untouched.
        let journaled = if rec.enabled() || tol.salvage || gov.verify.armed() {
            let t0 = Instant::now();
            let jbuf_cap0 = jbuf.capacity();
            // SAFETY: we hold the claim — the same exclusivity contract
            // as `execute` — and capture only reads.
            let cap = catch_unwind(AssertUnwindSafe(|| unsafe {
                kernel.journal_capture(range.clone(), &mut jbuf)
            }));
            match cap {
                Ok(captured) => {
                    // Meter the journal arena's capacity growth (capture
                    // allocates whether or not it ultimately succeeds).
                    // The chunk body has not started, so a refusal drains
                    // with the chunk pristine and uncommitted.
                    let jbuf_growth = jbuf.capacity().saturating_sub(jbuf_cap0) as u64;
                    if !gov.budget.try_reserve(jbuf_growth) {
                        gov.cancel.cancel_with(
                            CancelKind::Budget {
                                needed: jbuf_growth,
                                limit: gov.budget.limit().unwrap_or(0),
                            },
                            "undo-journal capture exceeds the memory budget",
                        );
                        poison_cancelled(run, gov);
                        return phases.finish(stats);
                    }
                    if captured {
                        stats.journal_ns += t0.elapsed().as_nanos();
                        stats.journal_bytes += jbuf.len() as u64;
                    }
                    captured
                }
                Err(payload) => {
                    // Capture only reads, so the chunk body never started:
                    // the chunk is pristine and the full ladder applies.
                    phases.transition(PhaseKind::Retry, Some(j));
                    recover_from_panic(run, rec, t, j, true, true, payload);
                    return phases.finish(stats);
                }
            }
        } else {
            false
        };
        let exec = catch_unwind(AssertUnwindSafe(|| {
            let packed_end = range.start + helper.packed_iters;
            // SAFETY: we won the claim CAS for chunk j: the protocol
            // serializes all execute calls and claim/advance form
            // Release/Acquire edges making prior chunks' writes visible.
            unsafe {
                if helper.packed_iters > 0 {
                    kernel.execute_packed(range.start..packed_end, &buf);
                    if packed_end < range.end {
                        kernel.execute(packed_end..range.end);
                    }
                } else {
                    kernel.execute(range.clone());
                }
            }
        }));
        if let Err(payload) = exec {
            phases.transition(PhaseKind::Retry, Some(j));
            // Roll the journal back *before* any recovery hand-back: we
            // still hold the claim, so the restore is exclusive and
            // happens-before any survivor's re-execution claim — no torn
            // write-set is ever observable. A rollback that itself
            // panics leaves the chunk torn, which the ladder treats
            // exactly like an unjournalable kernel.
            let rolled_back = journaled && {
                let t0 = Instant::now();
                // SAFETY: claim still held; `jbuf` is the unmodified
                // capture of this same range.
                let rb = catch_unwind(AssertUnwindSafe(|| unsafe {
                    kernel.journal_rollback(range.clone(), &jbuf)
                }))
                .is_ok();
                stats.journal_ns += t0.elapsed().as_nanos();
                rb
            };
            if rolled_back {
                stats.rollbacks += 1;
                run.record(FaultEvent::ChunkRolledBack {
                    thread: t,
                    chunk: j,
                    bytes: jbuf.len() as u64,
                });
            }
            let pristine = rolled_back || kernel.panics_before_mutation();
            recover_from_panic(run, rec, t, j, true, pristine, payload);
            return phases.finish(stats);
        }
        let (_, exec_ns) = phases.transition(PhaseKind::Other, Some(j));
        if gov.cancel.is_cancelled() {
            // Cancellation raced the chunk body. We still hold the claim,
            // so abort-must-be-unobservable can hold: roll the journal
            // back (the chunk reverts to uncommitted, bitwise) or, when
            // unjournalable, commit the finished chunk — never leave a
            // half-observed state. The rollback happens *before* the
            // poison drains the claim (the model checker's seeded
            // unclaim-before-cancel-rollback bug shows why the order
            // matters).
            if journaled {
                let t0 = Instant::now();
                // SAFETY: claim still held; `jbuf` is the unmodified
                // capture of this same range.
                let rb = catch_unwind(AssertUnwindSafe(|| unsafe {
                    kernel.journal_rollback(range.clone(), &jbuf)
                }));
                stats.journal_ns += t0.elapsed().as_nanos();
                match rb {
                    Ok(()) => {
                        stats.rollbacks += 1;
                        run.record(FaultEvent::ChunkRolledBack {
                            thread: t,
                            chunk: j,
                            bytes: jbuf.len() as u64,
                        });
                        // The chunk is uncommitted again: not counted.
                    }
                    Err(payload) => {
                        // The rollback itself tore the chunk: resuming
                        // from `completed` could double-apply writes, so
                        // the supervisor must report the tear instead of
                        // a clean cancel.
                        run.record(FaultEvent::WorkerPanicked {
                            thread: t,
                            chunk: j,
                            message: format!(
                                "journal rollback panicked during cancellation abort: {}",
                                panic_message(payload.as_ref())
                            ),
                        });
                        run.salvage_unsound.store(true, Ordering::Release);
                    }
                }
            } else {
                // Unjournalable: the finished chunk cannot be reverted,
                // so it commits and the resume point moves past it.
                stats.chunk_exec.record(exec_ns);
                stats.chunks += 1;
                run.completed.fetch_max(j + 1, Ordering::AcqRel);
            }
            poison_cancelled(run, gov);
            return phases.finish(stats);
        }
        stats.chunk_exec.record(exec_ns);
        stats.chunks += 1;
        run.completed.fetch_max(j + 1, Ordering::AcqRel);
        rec.health.heartbeat(t);
        if let Some(from) = lock_recover(&run.retry_from).remove(&j) {
            if from != t {
                run.record(FaultEvent::ChunkRetried {
                    chunk: j,
                    from_thread: from,
                    by_thread: t,
                });
            }
        }

        // --- durable checkpoint (claim still held) ---
        // Capture happens-before the token handoff to chunk j + 1, so a
        // checkpoint can never observe an uncommitted write (model-checker
        // invariant 8). Helpers never touch the sink, so nothing here
        // blocks them; the cost rides inside the Other phase as side
        // counters (`ckpt_ns`/`ckpt_bytes`/`ckpt_count`), leaving the
        // exact phase partition untouched. A panic anywhere in the sink
        // skips the checkpoint and lets the run continue. Under an armed
        // VerifyPolicy publication is deferred to the downstream claimant
        // (the supervisor, for the final chunk): this chunk enters the
        // checkpoint only after its handoff is verified, so a kill landing
        // between commit and verification can never persist bytes that
        // verification would have rejected.
        if let Some(ck) = gov.ckpt.as_ref().filter(|_| !gov.verify.armed()) {
            let t0 = Instant::now();
            let written = catch_unwind(AssertUnwindSafe(|| {
                ck.sink.on_commit(
                    ck.policy,
                    j + 1,
                    range.end,
                    |c| plan.range(c).start,
                    // SAFETY: we hold the claim — the same exclusivity
                    // contract as `execute` — and capture only reads.
                    |r, buf| unsafe { kernel.journal_capture(r, buf) },
                )
            }))
            .unwrap_or(None);
            if let Some(bytes) = written {
                stats.ckpt_count += 1;
                stats.ckpt_bytes += bytes;
            }
            stats.ckpt_ns += t0.elapsed().as_nanos();
        }

        // --- checksummed handoff (claim still held) ---
        // Digest the chunk's *committed* write footprint and publish the
        // verification packet before the advance: the downstream
        // claimant's Acquire through its claim CAS sees the packet (and
        // the `release_digest` stamp) before chunk j + 1 can execute.
        // The pre-image journal rides along to seed the verifier's
        // replay overlay. Cost is a side counter (`verify_ns`) inside
        // the Other phase; with `VerifyPolicy::Off` this is one branch.
        if gov.verify.armed() && journaled {
            let t0 = Instant::now();
            let mut committed_bytes = Vec::new();
            // SAFETY: claim still held — the same exclusivity contract
            // as `execute` — and capture only reads.
            let ok = catch_unwind(AssertUnwindSafe(|| unsafe {
                kernel.journal_capture(range.clone(), &mut committed_bytes)
            }))
            .unwrap_or(false);
            if ok {
                let digest = fnv64(&committed_bytes);
                run.release_digest.store(digest, Ordering::Relaxed);
                *lock_recover(&run.verify_slot) = Some(VerifyPacket {
                    chunk: j,
                    range: range.clone(),
                    executor: t,
                    digest,
                    pre_image: Some(std::mem::take(&mut jbuf)),
                });
            }
            stats.verify_ns += t0.elapsed().as_nanos();
        }

        if j + 1 < m {
            // Stamp the grant of j + 1 *before* publishing it via the
            // advance, so the claimant's latency sample pairs with this
            // release (the final advance grants no one: not a handoff).
            let now_ns = Instant::now().duration_since(run.origin).as_nanos() as u64;
            run.release_ns.store(now_ns, Ordering::Relaxed);
            run.release_chunk.store(j + 1, Ordering::Release);
        }
        if !run.token.try_advance(j) {
            // Poisoned while we executed (the watchdog declared us dead).
            // The chunk still completed exactly once — record and drain.
            run.record(FaultEvent::LateCompletion {
                thread: t,
                chunk: j,
            });
            return phases.finish(stats);
        }
        if j + 1 < m {
            stats.handoffs += 1;
        }
        cursor = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, FaultyKernel};
    use std::cell::UnsafeCell;

    /// prefix-sum-style kernel: order-sensitive across the whole loop.
    struct Chain {
        data: UnsafeCell<Vec<f64>>,
    }
    // SAFETY: `data` is only mutated inside `execute`, serialized by the
    // runner's token protocol.
    unsafe impl Sync for Chain {}
    impl Chain {
        fn new(n: usize) -> Self {
            Chain {
                data: UnsafeCell::new((0..n).map(|i| (i % 97) as f64 * 0.25 + 0.1).collect()),
            }
        }
        fn into_data(self) -> Vec<f64> {
            self.data.into_inner()
        }
    }
    impl RealKernel for Chain {
        fn iters(&self) -> u64 {
            // SAFETY: read of the length; no concurrent mutation outside
            // execute, which does not change the length.
            unsafe { (*self.data.get()).len() as u64 - 1 }
        }
        unsafe fn execute(&self, range: Range<u64>) {
            // SAFETY: exclusive per the trait contract.
            let d = unsafe { &mut *self.data.get() };
            for i in range {
                let i = i as usize;
                // Loop-carried dependence: unparallelizable by design.
                d[i + 1] = (d[i + 1] * 0.5 + d[i] * 0.75).sin() + d[i + 1];
            }
        }
    }

    fn seq_result(n: usize) -> Vec<f64> {
        let k = Chain::new(n);
        // SAFETY: single-threaded.
        unsafe { k.execute(0..k.iters()) };
        k.into_data()
    }

    #[test]
    fn cascaded_matches_sequential_bitwise() {
        let n = 20_000;
        let expected = seq_result(n);
        for threads in [1usize, 2, 3, 4] {
            let k = Chain::new(n);
            let cfg = RunnerConfig {
                nthreads: threads,
                iters_per_chunk: 700,
                policy: RtPolicy::None,
                poll_batch: 16,
            };
            let stats = run_cascaded(&k, &cfg);
            assert_eq!(stats.chunks, (n as u64 - 1).div_ceil(700));
            assert!(!stats.degraded);
            assert!(stats.faults.is_empty());
            let got = k.into_data();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn all_chunks_execute_exactly_once() {
        let n = 10_000;
        let k = Chain::new(n);
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 512,
            policy: RtPolicy::Prefetch,
            poll_batch: 32,
        };
        let stats = run_cascaded(&k, &cfg);
        let total: u64 = stats.threads.iter().map(|t| t.chunks).sum();
        assert_eq!(total, stats.chunks);
        assert_eq!(stats.iters, n as u64 - 1);
    }

    #[test]
    fn single_thread_cascade_degenerates_to_sequential_result() {
        let n = 5_000;
        let expected = seq_result(n);
        let k = Chain::new(n);
        let stats = run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: 1,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 1,
            },
        );
        assert_eq!(stats.threads.len(), 1);
        assert_eq!(k.into_data(), expected);
    }

    #[test]
    fn oversized_chunk_yields_one_chunk() {
        let k = Chain::new(100);
        let stats = run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 1_000_000,
                policy: RtPolicy::None,
                poll_batch: 1,
            },
        );
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.threads[0].chunks + stats.threads[1].chunks, 1);
    }

    #[test]
    #[should_panic(expected = "empty kernel")]
    fn empty_kernel_is_rejected() {
        let k = Chain::new(1); // iters() == 0
        run_cascaded(&k, &RunnerConfig::default());
    }

    #[test]
    fn try_run_reports_invalid_config_instead_of_panicking() {
        let k = Chain::new(100);
        for bad in [
            RunnerConfig {
                nthreads: 0,
                ..RunnerConfig::default()
            },
            RunnerConfig {
                iters_per_chunk: 0,
                ..RunnerConfig::default()
            },
            RunnerConfig {
                poll_batch: 0,
                ..RunnerConfig::default()
            },
        ] {
            match try_run_cascaded(&k, &bad, &Tolerance::default()) {
                Err(RunError::InvalidConfig(_)) => {}
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn injected_panic_is_salvaged_bitwise() {
        let n = 6_000;
        let expected = seq_result(n);
        for threads in [1usize, 2, 3] {
            let plan = FaultPlan::new(100).inject(7, FaultKind::Panic);
            let k = FaultyKernel::new(Chain::new(n), plan);
            let cfg = RunnerConfig {
                nthreads: threads,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 4,
            };
            let stats =
                try_run_cascaded(&k, &cfg, &Tolerance::resilient(Duration::from_millis(50)))
                    .expect("salvage must recover");
            assert!(stats.degraded, "threads={threads}");
            assert!(
                stats
                    .faults
                    .iter()
                    .any(|f| matches!(f, FaultEvent::WorkerPanicked { chunk: 7, .. })),
                "missing panic event: {:?}",
                stats.faults
            );
            assert!(stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::Salvaged { from_chunk: 7, .. })));
            assert_eq!(k.into_inner().into_data(), expected, "threads={threads}");
        }
    }

    #[test]
    fn mid_body_panic_refuses_salvage() {
        // Chain makes no fail-stop promise, so a panic that may have
        // landed partial writes must yield an error, not a wrong answer.
        struct Exploding(Chain);
        // SAFETY: same serialization argument as Chain.
        unsafe impl Sync for Exploding {}
        impl RealKernel for Exploding {
            fn iters(&self) -> u64 {
                self.0.iters()
            }
            unsafe fn execute(&self, range: Range<u64>) {
                if range.contains(&500) {
                    panic!("exploded mid-body");
                }
                // SAFETY: forwarded contract.
                unsafe { self.0.execute(range) }
            }
        }
        let k = Exploding(Chain::new(4_000));
        let cfg = RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        match try_run_cascaded(&k, &cfg, &Tolerance::resilient(Duration::from_millis(50))) {
            Err(RunError::WorkerPanicked { chunk: 5, .. }) => {}
            other => panic!("expected WorkerPanicked on chunk 5, got {other:?}"),
        }
    }

    #[test]
    fn stall_is_declared_and_salvaged_bitwise() {
        let n = 4_000;
        let expected = seq_result(n);
        let plan = FaultPlan::new(100).inject(6, FaultKind::Stall(Duration::from_millis(120)));
        let k = FaultyKernel::new(Chain::new(n), plan);
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        let stats = try_run_cascaded(&k, &cfg, &Tolerance::resilient(Duration::from_millis(20)))
            .expect("stall must salvage");
        assert!(stats.degraded);
        assert!(
            stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::StallDeclared { chunk: 6, .. })),
            "missing stall event: {:?}",
            stats.faults
        );
        assert!(
            stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::LateCompletion { chunk: 6, .. })),
            "the stalled worker still completes its chunk: {:?}",
            stats.faults
        );
        assert_eq!(k.into_inner().into_data(), expected);
    }

    #[test]
    fn slowdown_below_watchdog_window_stays_clean() {
        let n = 4_000;
        let expected = seq_result(n);
        let plan = FaultPlan::new(200).inject(3, FaultKind::Slowdown(Duration::from_millis(2)));
        let k = FaultyKernel::new(Chain::new(n), plan);
        let cfg = RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 200,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        let stats = try_run_cascaded(&k, &cfg, &Tolerance::resilient(Duration::from_millis(500)))
            .expect("a slowdown is not a fault");
        assert!(!stats.degraded);
        assert!(stats.faults.is_empty());
        assert_eq!(k.into_inner().into_data(), expected);
    }

    #[test]
    fn panic_without_salvage_is_a_typed_error() {
        let plan = FaultPlan::new(100).inject(4, FaultKind::Panic);
        let k = FaultyKernel::new(Chain::new(3_000), plan);
        let cfg = RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        match try_run_cascaded(&k, &cfg, &Tolerance::default()) {
            Err(RunError::WorkerPanicked {
                thread: 0,
                chunk: 4,
            }) => {}
            other => panic!("expected WorkerPanicked thread 0 chunk 4, got {other:?}"),
        }
    }

    #[test]
    fn injected_panic_recovers_in_cascade_bitwise() {
        let n = 6_000;
        let expected = seq_result(n);
        let plan = FaultPlan::new(100).inject(7, FaultKind::Panic);
        let k = FaultyKernel::new(Chain::new(n), plan);
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        let stats = try_run_cascaded(&k, &cfg, &Tolerance::retrying(Duration::from_millis(50)))
            .expect("retry must recover");
        assert!(
            !stats.degraded,
            "retry must stay cascaded, not salvage: {:?}",
            stats.faults
        );
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.quarantined, 1);
        // Chunk 7 belongs to thread 1 under the initial round-robin.
        assert!(
            stats.faults.iter().any(|f| matches!(
                f,
                FaultEvent::WorkerQuarantined {
                    thread: 1,
                    chunk: 7
                }
            )),
            "missing quarantine event: {:?}",
            stats.faults
        );
        assert!(
            stats.faults.iter().any(|f| matches!(
                f,
                FaultEvent::ChunkRetried {
                    chunk: 7,
                    from_thread: 1,
                    ..
                }
            )),
            "missing retry event: {:?}",
            stats.faults
        );
        assert!(
            !stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::Salvaged { .. })),
            "in-cascade recovery must not fall through to salvage"
        );
        assert_eq!(k.into_inner().into_data(), expected);
    }

    #[test]
    fn exhausted_retry_budget_falls_through_to_salvage() {
        let n = 5_000;
        let expected = seq_result(n);
        let plan = FaultPlan::new(100).inject(6, FaultKind::Panic);
        let k = FaultyKernel::new(Chain::new(n), plan);
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        let tol = Tolerance {
            watchdog: Some(Duration::from_millis(50)),
            retry: Some(RetryPolicy {
                budget: 0,
                ..RetryPolicy::default()
            }),
            salvage: true,
        };
        let stats = try_run_cascaded(&k, &cfg, &tol).expect("salvage must still recover");
        assert!(stats.degraded, "a dry budget must fall through");
        assert_eq!(stats.retries, 0);
        assert!(
            stats.faults.iter().any(|f| matches!(
                f,
                FaultEvent::RetryAbandoned {
                    chunk: 6,
                    reason: RetryAbandon::BudgetExhausted,
                }
            )),
            "the fall-through must be recorded: {:?}",
            stats.faults
        );
        assert_eq!(k.into_inner().into_data(), expected);
    }

    #[test]
    fn single_worker_panic_has_no_survivors_to_retry_on() {
        let n = 3_000;
        let expected = seq_result(n);
        let plan = FaultPlan::new(100).inject(4, FaultKind::Panic);
        let k = FaultyKernel::new(Chain::new(n), plan);
        let cfg = RunnerConfig {
            nthreads: 1,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        let stats = try_run_cascaded(&k, &cfg, &Tolerance::retrying(Duration::from_millis(50)))
            .expect("salvage must recover");
        assert!(stats.degraded);
        assert!(
            stats.faults.iter().any(|f| matches!(
                f,
                FaultEvent::RetryAbandoned {
                    reason: RetryAbandon::NoSurvivors,
                    ..
                }
            )),
            "missing NoSurvivors fall-through: {:?}",
            stats.faults
        );
        assert_eq!(k.into_inner().into_data(), expected);
    }

    #[test]
    fn non_fail_stop_kernel_is_never_retried() {
        // Chain makes no fail-stop promise: a mid-body panic may have
        // landed partial writes, so neither retry nor salvage may re-run
        // the chunk — the run must end in a typed error.
        struct Exploding(Chain);
        // SAFETY: same serialization argument as Chain.
        unsafe impl Sync for Exploding {}
        impl RealKernel for Exploding {
            fn iters(&self) -> u64 {
                self.0.iters()
            }
            unsafe fn execute(&self, range: Range<u64>) {
                if range.contains(&500) {
                    panic!("exploded mid-body");
                }
                // SAFETY: forwarded contract.
                unsafe { self.0.execute(range) }
            }
        }
        let k = Exploding(Chain::new(4_000));
        let cfg = RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        match try_run_cascaded(&k, &cfg, &Tolerance::retrying(Duration::from_millis(50))) {
            Err(RunError::WorkerPanicked { chunk: 5, .. }) => {}
            other => panic!("expected WorkerPanicked on chunk 5, got {other:?}"),
        }
    }

    #[test]
    fn stalled_claim_holder_is_never_retried() {
        // The stall fires *after* the claim CAS, so the wedged worker may
        // still write to its chunk: recovery must strike it, abandon the
        // retry as ExecutorStuck, and fall through to salvage.
        let n = 4_000;
        let expected = seq_result(n);
        let plan = FaultPlan::new(100).inject(6, FaultKind::Stall(Duration::from_millis(200)));
        let k = FaultyKernel::new(Chain::new(n), plan);
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        let tol = Tolerance {
            watchdog: Some(Duration::from_millis(10)),
            retry: Some(RetryPolicy {
                budget: 4,
                backoff: Duration::from_millis(5),
                strike_limit: 2,
            }),
            salvage: true,
        };
        let stats = try_run_cascaded(&k, &cfg, &tol).expect("stall must salvage");
        assert!(stats.degraded);
        assert_eq!(stats.retries, 0, "a claimed chunk must never be retried");
        assert!(
            stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::StallStrike { chunk: 6, .. })),
            "missing strike events: {:?}",
            stats.faults
        );
        assert!(
            stats.faults.iter().any(|f| matches!(
                f,
                FaultEvent::RetryAbandoned {
                    chunk: 6,
                    reason: RetryAbandon::ExecutorStuck,
                }
            )),
            "missing ExecutorStuck fall-through: {:?}",
            stats.faults
        );
        assert_eq!(k.into_inner().into_data(), expected);
    }

    #[test]
    fn sequence_quarantine_persists_across_loops() {
        let n = 5_000;
        let expected = seq_result(n);
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        // Loop 0 panics on chunk 4 (thread 1); loops 1 and 2 are clean.
        let kernels: Vec<FaultyKernel<Chain>> = (0..3)
            .map(|l| {
                let plan = if l == 0 {
                    FaultPlan::new(100).inject(4, FaultKind::Panic)
                } else {
                    FaultPlan::new(100)
                };
                FaultyKernel::new(Chain::new(n), plan)
            })
            .collect();
        let all = try_run_cascaded_sequence(
            &kernels,
            &cfg,
            &Tolerance::retrying(Duration::from_millis(50)),
        )
        .expect("the sequence must recover in-cascade");
        assert_eq!(all.len(), 3);
        for (l, stats) in all.iter().enumerate() {
            assert!(!stats.degraded, "loop {l} must stay cascaded");
        }
        assert_eq!(all[0].retries, 1);
        assert_eq!(all[0].quarantined, 1);
        // Thread 1 (owner of chunk 4) stays quarantined in later loops:
        // it executes no chunks there, and no new faults appear.
        for (l, stats) in all.iter().enumerate().skip(1) {
            assert!(stats.faults.is_empty(), "loop {l}: {:?}", stats.faults);
            assert_eq!(
                stats.threads[1].chunks, 0,
                "quarantined worker executed chunks in loop {l}"
            );
        }
        for (l, k) in kernels.into_iter().enumerate() {
            assert_eq!(k.into_inner().into_data(), expected, "loop {l}");
        }
    }

    #[test]
    fn unjournalable_mid_mutation_panic_keeps_the_fail_stop_gate() {
        // Chain neither promises fail-stop panics nor bounds its
        // write-set (default `journal_capture` returns false), so a
        // mid-mutation panic leaves the chunk torn: both retry and
        // salvage must refuse and surface the typed error.
        for tol in [
            Tolerance::retrying(Duration::from_millis(50)),
            Tolerance::resilient(Duration::from_millis(50)),
        ] {
            let plan =
                FaultPlan::new(100).inject(5, FaultKind::PanicMidMutation { after_iters: 30 });
            let k = FaultyKernel::new(Chain::new(4_000), plan);
            let cfg = RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 4,
            };
            match try_run_cascaded(&k, &cfg, &tol) {
                Err(RunError::WorkerPanicked { chunk: 5, .. }) => {}
                other => panic!("expected WorkerPanicked on chunk 5, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_leader_stamp_is_a_typed_error_not_a_panic() {
        // The seam behind RunError::LeaderLost: a healthy-looking loop
        // whose leader never wrote its stamps must surface as None (the
        // caller maps it to the typed error), not panic the supervisor.
        let start = Mutex::new(Some(Instant::now()));
        let end = Mutex::new(None);
        assert!(loop_stamps(&start, &end).is_none());
        assert!(loop_stamps(&end, &start).is_none());
        let both = Mutex::new(Some(Instant::now()));
        assert!(loop_stamps(&start, &both).is_some());
        let msg = RunError::LeaderLost { loop_idx: 3 }.to_string();
        assert!(msg.contains("loop 3"), "{msg}");
    }

    #[test]
    fn leader_death_mid_sequence_is_a_typed_error_not_a_panic() {
        // Fail-fast tolerance, panic in loop 0 of a 3-loop sequence: the
        // workers break out before the end-of-loop barrier ever stamps
        // loop_ends[0] (and never reach loops 1–2 at all). The supervisor
        // must return the worker's typed error — a regression that reads
        // the missing stamps used to panic the supervisor itself.
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        let kernels: Vec<FaultyKernel<Chain>> = (0..3)
            .map(|l| {
                let plan = if l == 0 {
                    FaultPlan::new(100).inject(2, FaultKind::Panic)
                } else {
                    FaultPlan::new(100)
                };
                FaultyKernel::new(Chain::new(2_000), plan)
            })
            .collect();
        match try_run_cascaded_sequence(&kernels, &cfg, &Tolerance::default()) {
            Err(RunError::WorkerPanicked { chunk: 2, .. }) => {}
            other => panic!("expected WorkerPanicked on chunk 2, got {other:?}"),
        }
    }

    #[test]
    fn retrying_tolerance_is_inert_without_faults() {
        let n = 8_000;
        let expected = seq_result(n);
        let k = Chain::new(n);
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 200,
            policy: RtPolicy::Restructure,
            poll_batch: 16,
        };
        let stats = try_run_cascaded(&k, &cfg, &Tolerance::retrying(Duration::from_secs(5)))
            .expect("fault-free run");
        assert!(!stats.degraded);
        assert!(stats.faults.is_empty());
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(k.into_data(), expected);
    }

    /// Chain with an undo journal: capture copies the chunk's write-set
    /// (`d[i + 1]` for `i` in the range) so a mid-body interruption can
    /// be rolled back bitwise.
    struct JChain(Chain);
    impl RealKernel for JChain {
        fn iters(&self) -> u64 {
            self.0.iters()
        }
        unsafe fn execute(&self, range: Range<u64>) {
            // SAFETY: forwarded contract.
            unsafe { self.0.execute(range) }
        }
        unsafe fn journal_capture(&self, range: Range<u64>, buf: &mut Vec<u8>) -> bool {
            // SAFETY: capture holds the claim; reads are exclusive.
            let d = unsafe { &*self.0.data.get() };
            buf.clear();
            for i in range {
                buf.extend_from_slice(&d[i as usize + 1].to_le_bytes());
            }
            true
        }
        unsafe fn journal_rollback(&self, range: Range<u64>, buf: &[u8]) {
            // SAFETY: rollback holds the claim; writes are exclusive.
            let d = unsafe { &mut *self.0.data.get() };
            for (k, i) in range.enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&buf[k * 8..k * 8 + 8]);
                d[i as usize + 1] = f64::from_le_bytes(b);
            }
        }
    }

    /// Fires the run's cancel token when execution reaches `at_iter`, so
    /// governance tests land the cancel inside a known chunk
    /// deterministically.
    struct CancelAt<K> {
        inner: K,
        at_iter: u64,
        cancel: CancelToken,
    }
    impl<K: RealKernel> RealKernel for CancelAt<K> {
        fn iters(&self) -> u64 {
            self.inner.iters()
        }
        unsafe fn execute(&self, range: Range<u64>) {
            if range.contains(&self.at_iter) {
                self.cancel.cancel("cancelled at a known iteration");
            }
            // SAFETY: forwarded contract.
            unsafe { self.inner.execute(range) }
        }
        unsafe fn journal_capture(&self, range: Range<u64>, buf: &mut Vec<u8>) -> bool {
            // SAFETY: forwarded contract.
            unsafe { self.inner.journal_capture(range, buf) }
        }
        unsafe fn journal_rollback(&self, range: Range<u64>, buf: &[u8]) {
            // SAFETY: forwarded contract.
            unsafe { self.inner.journal_rollback(range, buf) }
        }
        fn panics_before_mutation(&self) -> bool {
            self.inner.panics_before_mutation()
        }
    }

    #[test]
    fn cancel_mid_run_commits_a_clean_prefix_and_resumes_bitwise() {
        let n = 20_000;
        let expected = seq_result(n);
        let cancel = CancelToken::new();
        let k = CancelAt {
            inner: Chain::new(n),
            at_iter: 3_000,
            cancel: cancel.clone(),
        };
        let cfg = RunConfig {
            runner: RunnerConfig {
                nthreads: 3,
                iters_per_chunk: 500,
                policy: RtPolicy::None,
                poll_batch: 8,
            },
            cancel,
            ..RunConfig::default()
        };
        let committed = match try_run_governed(&k, &cfg) {
            Err(RunError::Cancelled {
                committed_iters,
                reason,
            }) => {
                assert!(reason.contains("known iteration"), "{reason}");
                committed_iters
            }
            other => panic!("expected Cancelled, got {other:?}"),
        };
        // Chain is unjournalable, so the in-flight chunk (the one holding
        // iteration 3000) completed whole; nothing past it was touched.
        assert_eq!(committed, 3_500, "the cancelled chunk commits whole");
        // SAFETY: the run drained before returning; single-threaded resume.
        unsafe { k.inner.execute(committed..k.inner.iters()) };
        assert_eq!(k.inner.into_data(), expected);
    }

    #[test]
    fn cancel_rolls_back_the_in_flight_journaled_chunk() {
        let n = 20_000;
        let expected = seq_result(n);
        let cancel = CancelToken::new();
        let k = CancelAt {
            inner: JChain(Chain::new(n)),
            at_iter: 3_000,
            cancel: cancel.clone(),
        };
        let cfg = RunConfig {
            runner: RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 500,
                policy: RtPolicy::None,
                poll_batch: 8,
            },
            // Salvage tolerance turns journaling on.
            tolerance: Tolerance::resilient(Duration::from_secs(5)),
            cancel,
            ..RunConfig::default()
        };
        let committed = match try_run_governed(&k, &cfg) {
            Err(RunError::Cancelled {
                committed_iters, ..
            }) => committed_iters,
            other => panic!("expected Cancelled, got {other:?}"),
        };
        // The in-flight chunk was journaled: it rolled back instead of
        // committing, so the resume point is its own first iteration.
        assert_eq!(committed, 3_000, "journaled in-flight chunk rolls back");
        // SAFETY: the run drained before returning; single-threaded resume.
        unsafe { k.inner.0.execute(committed..k.inner.iters()) };
        assert_eq!(k.inner.0.into_data(), expected);
    }

    #[test]
    fn deadline_cancels_and_the_error_carries_the_resume_point() {
        struct SlowChain(Chain);
        impl RealKernel for SlowChain {
            fn iters(&self) -> u64 {
                self.0.iters()
            }
            unsafe fn execute(&self, range: Range<u64>) {
                std::thread::sleep(Duration::from_millis(2));
                // SAFETY: forwarded contract.
                unsafe { self.0.execute(range) }
            }
        }
        let n = 2_001; // 20 chunks, ~2 ms each: far slower than the deadline
        let expected = seq_result(n);
        let k = SlowChain(Chain::new(n));
        let cfg = RunConfig {
            runner: RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 4,
            },
            deadline: Some(Duration::from_millis(8)),
            ..RunConfig::default()
        };
        match try_run_governed(&k, &cfg) {
            Err(RunError::DeadlineExceeded {
                deadline,
                committed_iters,
            }) => {
                assert_eq!(deadline, Duration::from_millis(8));
                assert_eq!(committed_iters % 100, 0, "resume at a chunk boundary");
                assert!(committed_iters < k.iters());
                // SAFETY: the run drained; single-threaded resume.
                unsafe { k.0.execute(committed_iters..k.0.iters()) };
                assert_eq!(k.0.into_data(), expected);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn budget_refusal_is_typed_and_leaves_a_clean_prefix() {
        let n = 20_000;
        let expected = seq_result(n);
        let k = JChain(Chain::new(n));
        let cfg = RunConfig {
            runner: RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 500,
                policy: RtPolicy::None,
                poll_batch: 8,
            },
            // Salvage tolerance turns journaling on; one 500-iteration
            // journal needs 4000 B, far over the limit.
            tolerance: Tolerance::resilient(Duration::from_secs(5)),
            budget: MemBudget::limited(1024),
            ..RunConfig::default()
        };
        match try_run_governed(&k, &cfg) {
            Err(RunError::BudgetExceeded {
                needed,
                limit,
                committed_iters,
            }) => {
                assert_eq!(limit, 1024);
                assert!(needed > 1024, "refused reservation was {needed} B");
                // SAFETY: the run drained; single-threaded resume.
                unsafe { k.0.execute(committed_iters..k.iters()) };
                assert_eq!(k.0.into_data(), expected);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn governed_run_rejects_watchdog_longer_than_deadline() {
        let k = Chain::new(1_000);
        let cfg = RunConfig {
            tolerance: Tolerance::resilient(Duration::from_secs(10)),
            deadline: Some(Duration::from_millis(100)),
            ..RunConfig::default()
        };
        match try_run_governed(&k, &cfg) {
            Err(RunError::InvalidConfig(msg)) => assert!(msg.contains("watchdog"), "{msg}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn too_late_cancellation_leaves_a_completed_run() {
        let n = 2_000;
        let expected = seq_result(n);
        let cancel = CancelToken::new();
        let k = Chain::new(n);
        let cfg = RunConfig {
            runner: RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 4,
            },
            cancel: cancel.clone(),
            ..RunConfig::default()
        };
        let stats = try_run_governed(&k, &cfg).expect("uncancelled run completes");
        assert!(!stats.degraded);
        // Exactly one terminal outcome: a cancel arriving after completion
        // changes nothing about the already-returned result.
        cancel.cancel("after the fact");
        assert_eq!(k.into_data(), expected);
    }

    #[test]
    fn journaled_mid_mutation_panic_rolls_back_then_salvages_in_order() {
        let n = 4_000;
        let expected = seq_result(n);
        let plan = FaultPlan::new(100).inject(5, FaultKind::PanicMidMutation { after_iters: 30 });
        let k = FaultyKernel::new(JChain(Chain::new(n)), plan);
        let cfg = RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 100,
            policy: RtPolicy::None,
            poll_batch: 4,
        };
        let stats = try_run_cascaded(&k, &cfg, &Tolerance::resilient(Duration::from_millis(50)))
            .expect("journaled chunk must salvage");
        assert!(stats.degraded, "salvage marks the run degraded");
        let pos = |pred: &dyn Fn(&FaultEvent) -> bool| {
            stats
                .faults
                .iter()
                .position(pred)
                .unwrap_or_else(|| panic!("missing event in {:?}", stats.faults))
        };
        let rb = pos(&|f| matches!(f, FaultEvent::ChunkRolledBack { chunk: 5, .. }));
        let wp = pos(&|f| matches!(f, FaultEvent::WorkerPanicked { chunk: 5, .. }));
        let sv = pos(&|f| matches!(f, FaultEvent::Salvaged { from_chunk: 5, .. }));
        assert!(
            rb < wp && wp < sv,
            "rollback precedes the panic record, salvage last: {:?}",
            stats.faults
        );
        assert_eq!(k.into_inner().0.into_data(), expected);
    }

    #[test]
    fn cancel_during_sequential_salvage_reports_an_exact_resume_point() {
        let n = 4_001; // 40 chunks of 100 iterations
        let expected = seq_result(n);
        let cancel = CancelToken::new();
        // Fail-stop panic on chunk 2 sends the run to sequential salvage;
        // the cancel fires only when salvage reaches iteration 1550
        // (chunk 15) — the cascade never gets that far.
        let plan = FaultPlan::new(100).inject(2, FaultKind::Panic);
        let k = CancelAt {
            inner: FaultyKernel::new(Chain::new(n), plan),
            at_iter: 1_550,
            cancel: cancel.clone(),
        };
        let cfg = RunConfig {
            runner: RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 4,
            },
            tolerance: Tolerance::resilient(Duration::from_millis(50)),
            cancel,
            ..RunConfig::default()
        };
        match try_run_governed(&k, &cfg) {
            Err(RunError::Cancelled {
                committed_iters, ..
            }) => {
                // Salvage runs chunk at a time: the chunk holding
                // iteration 1550 completes (the cancel fires inside its
                // execute) and the next pre-chunk check stops the loop.
                assert_eq!(committed_iters, 1_600);
                let chain = k.inner.into_inner();
                // SAFETY: salvage stopped; single-threaded resume.
                unsafe { chain.execute(committed_iters..chain.iters()) };
                assert_eq!(chain.into_data(), expected);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn sequence_cancellation_reports_a_global_resume_point() {
        // Three loops of 2000 iterations; the cancel fires inside loop 1
        // at iteration 550.
        let cancel = CancelToken::new();
        let kernels: Vec<CancelAt<Chain>> = (0..3)
            .map(|l| CancelAt {
                inner: Chain::new(2_001),
                at_iter: if l == 1 { 550 } else { u64::MAX },
                cancel: cancel.clone(),
            })
            .collect();
        let cfg = RunConfig {
            runner: RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 4,
            },
            cancel,
            ..RunConfig::default()
        };
        match try_run_governed_sequence(&kernels, &cfg) {
            Err(RunError::Cancelled {
                committed_iters, ..
            }) => {
                // Global resume point: all of loop 0 (2000 iters) plus
                // loop 1 through the chunk holding iteration 550.
                assert_eq!(committed_iters, 2_000 + 600);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }
}

//! The cascade runner: real threads rotating execution of one sequential
//! loop, exactly as in Figure 1(b) of the paper.
//!
//! Thread `t` owns chunks `t, t+T, t+2T, ...`. While waiting for the token
//! it runs its helper (prefetch or pack) for its next chunk, polling the
//! token every `poll_batch` iterations — the paper's jump-out-of-helper
//! modification at batch granularity. On token arrival it executes its
//! chunk (packed prefix first, original body for any unpacked remainder)
//! and releases the token to the next chunk.

use std::time::{Duration, Instant};

use cascade_core::ChunkPlan;

use crate::kernel::RealKernel;
use crate::token::Token;

/// Helper policy of the real-thread runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtPolicy {
    /// Spin only (the rotation-overhead ablation).
    None,
    /// Prefetch upcoming operands while waiting.
    Prefetch,
    /// Pack read-only operands into a thread-local sequential buffer while
    /// waiting; falls back to the original body for unpacked iterations.
    Restructure,
}

impl RtPolicy {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RtPolicy::None => "none",
            RtPolicy::Prefetch => "prefetched",
            RtPolicy::Restructure => "restructured",
        }
    }
}

/// Runner parameters.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Number of worker threads (processors of the cascade).
    pub nthreads: usize,
    /// Iterations per chunk (the real-runtime analogue of the byte budget;
    /// callers with a [`cascade_trace::LoopSpec`] can derive it from
    /// `chunk_bytes / spec.bytes_per_iter()`).
    pub iters_per_chunk: u64,
    /// Helper policy.
    pub policy: RtPolicy,
    /// Helper iterations between token polls (jump-out granularity).
    pub poll_batch: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            nthreads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            iters_per_chunk: 4096,
            policy: RtPolicy::Restructure,
            poll_batch: 64,
        }
    }
}

/// Per-thread execution statistics.
#[derive(Debug, Default, Clone)]
pub struct ThreadStats {
    /// Chunks executed by this thread.
    pub chunks: u64,
    /// Iterations covered by helper work before their execution phase.
    pub helper_iters: u64,
    /// Chunks whose helper covered every iteration.
    pub helper_complete: u64,
    /// Nanoseconds inside execution phases.
    pub exec_ns: u128,
    /// Nanoseconds inside helper work.
    pub helper_ns: u128,
    /// Nanoseconds spent pure-spinning on the token.
    pub spin_ns: u128,
}

/// Whole-run statistics.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock duration of the cascaded loop.
    pub elapsed: Duration,
    /// Total chunks executed.
    pub chunks: u64,
    /// Total iterations of the loop.
    pub iters: u64,
    /// Per-thread breakdown.
    pub threads: Vec<ThreadStats>,
}

impl RunStats {
    /// Fraction of iterations covered by helper work, in [0, 1].
    pub fn helper_coverage(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        let helped: u64 = self.threads.iter().map(|t| t.helper_iters).sum();
        helped as f64 / self.iters as f64
    }
}

/// Execute `kernel` sequentially (the baseline), returning the wall time.
pub fn run_sequential<K: RealKernel>(kernel: &K) -> Duration {
    let start = Instant::now();
    // SAFETY: single-threaded call; trivially exclusive.
    unsafe { kernel.execute(0..kernel.iters()) };
    start.elapsed()
}

/// Execute `kernel` under cascaded execution with `cfg`.
pub fn run_cascaded<K: RealKernel>(kernel: &K, cfg: &RunnerConfig) -> RunStats {
    assert!(cfg.nthreads >= 1, "need at least one thread");
    assert!(cfg.iters_per_chunk >= 1, "chunks must be non-empty");
    assert!(cfg.poll_batch >= 1, "poll batch must be positive");
    let iters = kernel.iters();
    assert!(iters > 0, "empty kernel");
    let plan = ChunkPlan::by_iterations(iters, cfg.iters_per_chunk);
    let m = plan.num_chunks();
    let token = Token::new();

    let start = Instant::now();
    let threads: Vec<ThreadStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.nthreads)
            .map(|t| {
                let plan = &plan;
                let token = &token;
                s.spawn(move || {
                    // A panicking kernel must not leave the other workers
                    // spinning on a token that will never advance: poison
                    // it, then let the panic propagate through join().
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker(kernel, cfg, plan, token, t as u64)
                    }));
                    match result {
                        Ok(stats) => stats,
                        Err(payload) => {
                            token.poison();
                            std::panic::resume_unwind(payload);
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let elapsed = start.elapsed();
    debug_assert_eq!(token.current(), m, "token must end one past the last chunk");

    RunStats { elapsed, chunks: m, iters, threads }
}

/// Execute a whole loop *sequence* (e.g. PARMVR's fifteen loops) under
/// cascaded execution with one persistent pool of worker threads, instead
/// of spawning threads per loop. Loops are separated by a barrier — the
/// analogue of the application code between unparallelized loops — which
/// both orders the loops (helpers for loop `i+1` must not read operands
/// loop `i` is still writing) and provides the happens-before edge between
/// them. Returns one [`RunStats`] per kernel, in order.
pub fn run_cascaded_sequence<K: RealKernel>(kernels: &[K], cfg: &RunnerConfig) -> Vec<RunStats> {
    assert!(cfg.nthreads >= 1, "need at least one thread");
    assert!(!kernels.is_empty(), "empty kernel sequence");
    let plans: Vec<ChunkPlan> = kernels
        .iter()
        .map(|k| {
            assert!(k.iters() > 0, "empty kernel");
            ChunkPlan::by_iterations(k.iters(), cfg.iters_per_chunk)
        })
        .collect();
    let tokens: Vec<Token> = kernels.iter().map(|_| Token::new()).collect();
    let barrier = std::sync::Barrier::new(cfg.nthreads);
    let loop_starts: Vec<std::sync::Mutex<Option<Instant>>> =
        kernels.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let loop_ends: Vec<std::sync::Mutex<Option<Instant>>> =
        kernels.iter().map(|_| std::sync::Mutex::new(None)).collect();

    // per_thread[t][l] = stats of thread t on loop l.
    let per_thread: Vec<Vec<ThreadStats>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.nthreads)
            .map(|t| {
                let (plans, tokens, barrier) = (&plans, &tokens, &barrier);
                let (loop_starts, loop_ends) = (&loop_starts, &loop_ends);
                s.spawn(move || {
                    let mut all = Vec::with_capacity(kernels.len());
                    for (l, kernel) in kernels.iter().enumerate() {
                        if barrier.wait().is_leader() {
                            *loop_starts[l].lock().unwrap() = Some(Instant::now());
                        }
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            worker(kernel, cfg, &plans[l], &tokens[l], t as u64)
                        }));
                        match result {
                            Ok(stats) => all.push(stats),
                            Err(payload) => {
                                // Poison this and all later tokens so no
                                // worker blocks on a loop that will never
                                // be reached, then propagate.
                                for tok in &tokens[l..] {
                                    tok.poison();
                                }
                                std::panic::resume_unwind(payload);
                            }
                        }
                        if barrier.wait().is_leader() {
                            *loop_ends[l].lock().unwrap() = Some(Instant::now());
                        }
                    }
                    all
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    (0..kernels.len())
        .map(|l| {
            let start = loop_starts[l].lock().unwrap().expect("leader stamped start");
            let end = loop_ends[l].lock().unwrap().expect("leader stamped end");
            RunStats {
                elapsed: end.duration_since(start),
                chunks: plans[l].num_chunks(),
                iters: kernels[l].iters(),
                threads: per_thread.iter().map(|tv| tv[l].clone()).collect(),
            }
        })
        .collect()
}

fn worker<K: RealKernel>(
    kernel: &K,
    cfg: &RunnerConfig,
    plan: &ChunkPlan,
    token: &Token,
    t: u64,
) -> ThreadStats {
    let mut stats = ThreadStats::default();
    let mut buf: Vec<u8> = Vec::new();
    let m = plan.num_chunks();
    let step = cfg.nthreads as u64;
    let mut j = t;
    while j < m {
        let range = plan.range(j);
        let range_len = range.end - range.start;

        // --- helper phase (with jump-out at poll_batch granularity) ---
        let helper_start = Instant::now();
        let mut packed_iters = 0u64;
        let mut helped_iters = 0u64;
        match cfg.policy {
            RtPolicy::None => {}
            RtPolicy::Prefetch => {
                let mut i = range.start;
                while !token.is_granted(j) && i < range.end {
                    let batch_end = (i + cfg.poll_batch).min(range.end);
                    for ii in i..batch_end {
                        kernel.prefetch_iter(ii);
                    }
                    helped_iters += batch_end - i;
                    i = batch_end;
                }
            }
            RtPolicy::Restructure => {
                buf.clear();
                let mut i = range.start;
                let mut supported = true;
                while supported && !token.is_granted(j) && i < range.end {
                    let batch_end = (i + cfg.poll_batch).min(range.end);
                    for ii in i..batch_end {
                        if !kernel.pack_iter(ii, &mut buf) {
                            supported = false;
                            break;
                        }
                        packed_iters += 1;
                    }
                    i = range.start + packed_iters;
                    if !supported {
                        // Kernel cannot pack: degrade to nothing packed.
                        buf.clear();
                        packed_iters = 0;
                    }
                }
                helped_iters = packed_iters;
            }
        }
        stats.helper_ns += helper_start.elapsed().as_nanos();
        stats.helper_iters += helped_iters;
        if helped_iters >= range_len && !matches!(cfg.policy, RtPolicy::None) {
            stats.helper_complete += 1;
        }

        // --- wait for the token (jump-out means we may arrive early) ---
        let spin_start = Instant::now();
        token.wait_for(j);
        stats.spin_ns += spin_start.elapsed().as_nanos();

        // --- execution phase ---
        let exec_start = Instant::now();
        let packed_end = range.start + packed_iters;
        // SAFETY: we hold the token for chunk j: the protocol serializes
        // all execute calls and release_to/wait_for form Release/Acquire
        // edges making prior chunks' writes visible.
        unsafe {
            if packed_iters > 0 {
                kernel.execute_packed(range.start..packed_end, &buf);
                if packed_end < range.end {
                    kernel.execute(packed_end..range.end);
                }
            } else {
                kernel.execute(range.clone());
            }
        }
        stats.exec_ns += exec_start.elapsed().as_nanos();
        stats.chunks += 1;

        token.release_to(j + 1);
        j += step;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::UnsafeCell;
    use std::ops::Range;

    /// prefix-sum-style kernel: order-sensitive across the whole loop.
    struct Chain {
        data: UnsafeCell<Vec<f64>>,
    }
    // SAFETY: `data` is only mutated inside `execute`, serialized by the
    // runner's token protocol.
    unsafe impl Sync for Chain {}
    impl Chain {
        fn new(n: usize) -> Self {
            Chain { data: UnsafeCell::new((0..n).map(|i| (i % 97) as f64 * 0.25 + 0.1).collect()) }
        }
        fn into_data(self) -> Vec<f64> {
            self.data.into_inner()
        }
    }
    impl RealKernel for Chain {
        fn iters(&self) -> u64 {
            // SAFETY: read of the length; no concurrent mutation outside
            // execute, which does not change the length.
            unsafe { (*self.data.get()).len() as u64 - 1 }
        }
        unsafe fn execute(&self, range: Range<u64>) {
            // SAFETY: exclusive per the trait contract.
            let d = unsafe { &mut *self.data.get() };
            for i in range {
                let i = i as usize;
                // Loop-carried dependence: unparallelizable by design.
                d[i + 1] = (d[i + 1] * 0.5 + d[i] * 0.75).sin() + d[i + 1];
            }
        }
    }

    fn seq_result(n: usize) -> Vec<f64> {
        let k = Chain::new(n);
        // SAFETY: single-threaded.
        unsafe { k.execute(0..k.iters()) };
        k.into_data()
    }

    #[test]
    fn cascaded_matches_sequential_bitwise() {
        let n = 20_000;
        let expected = seq_result(n);
        for threads in [1usize, 2, 3, 4] {
            let k = Chain::new(n);
            let cfg = RunnerConfig {
                nthreads: threads,
                iters_per_chunk: 700,
                policy: RtPolicy::None,
                poll_batch: 16,
            };
            let stats = run_cascaded(&k, &cfg);
            assert_eq!(stats.chunks, (n as u64 - 1).div_ceil(700));
            let got = k.into_data();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn all_chunks_execute_exactly_once() {
        let n = 10_000;
        let k = Chain::new(n);
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 512,
            policy: RtPolicy::Prefetch,
            poll_batch: 32,
        };
        let stats = run_cascaded(&k, &cfg);
        let total: u64 = stats.threads.iter().map(|t| t.chunks).sum();
        assert_eq!(total, stats.chunks);
        assert_eq!(stats.iters, n as u64 - 1);
    }

    #[test]
    fn single_thread_cascade_degenerates_to_sequential_result() {
        let n = 5_000;
        let expected = seq_result(n);
        let k = Chain::new(n);
        let stats = run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: 1,
                iters_per_chunk: 100,
                policy: RtPolicy::None,
                poll_batch: 1,
            },
        );
        assert_eq!(stats.threads.len(), 1);
        assert_eq!(k.into_data(), expected);
    }

    #[test]
    fn oversized_chunk_yields_one_chunk() {
        let k = Chain::new(100);
        let stats = run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 1_000_000,
                policy: RtPolicy::None,
                poll_batch: 1,
            },
        );
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.threads[0].chunks + stats.threads[1].chunks, 1);
    }

    #[test]
    #[should_panic(expected = "empty kernel")]
    fn empty_kernel_is_rejected() {
        let k = Chain::new(1); // iters() == 0
        run_cascaded(&k, &RunnerConfig::default());
    }
}

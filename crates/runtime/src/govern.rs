//! Run governance: cooperative cancellation, run deadlines, and memory
//! budgets for the real-thread cascade.
//!
//! The recovery ladder (`docs/ROBUSTNESS.md`) handles *faults*; nothing
//! there can stop a **healthy** run. This module adds the three missing
//! primitives, all cooperative and all drained through the existing
//! poison protocol so cancellation leaves bitwise-clean state:
//!
//! * [`CancelToken`] — a cheap `Arc`'d flag plus a reason cell, checked by
//!   workers at chunk-claim and helper-pass boundaries. The first cancel
//!   wins; everything later observes the same [`CancelState`].
//! * a per-run deadline ([`RunConfig::deadline`]) — arms a governor thread
//!   that fires the run's `CancelToken` when the wall-clock budget
//!   expires, translating to `RunError::DeadlineExceeded`.
//! * [`MemBudget`] — meters the runtime's only unbounded allocations (undo
//!   journals and helper pack arenas) and converts an over-budget growth
//!   into a typed `RunError::BudgetExceeded` refusal instead of an OOM.
//!
//! A cancelled run is **not** an error-shaped crash: every committed chunk
//! stays committed, the in-flight claimed chunk is rolled back via its
//! undo journal (or completed when unjournalable), and the returned error
//! carries `committed_iters` so the caller can finish the loop
//! sequentially from exactly that iteration. See the "Run governance"
//! section of `docs/ROBUSTNESS.md` for the protocol diagram.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::ckpt::{CkptPolicy, CkptSink};
use crate::metrics::Observe;
use crate::runner::{RunError, RunnerConfig, Tolerance};
use crate::token::lock_recover;

/// When the runtime verifies committed chunk bytes — the silent-data-
/// corruption defense (`docs/ROBUSTNESS.md`, "Silent data corruption").
///
/// The executor of every chunk publishes an `fnv64` digest of its write
/// footprint with the token handoff; what the *downstream* claimant does
/// with that digest is this policy:
///
/// * [`VerifyPolicy::Off`] — nothing is digested or checked. The default;
///   costs a single branch per chunk (the fault-free overhead guard pins
///   this).
/// * [`VerifyPolicy::Checksum`] — the claimant recomputes the digest from
///   the arena and compares. Catches bytes that changed *after* the
///   executor committed (a stray write landing in a committed footprint);
///   cannot catch a flip that happened during execution, because the
///   executor digested the already-corrupted bytes.
/// * [`VerifyPolicy::EveryChunk`] — the claimant re-executes the
///   committed chunk against a journaled private view and compares bytes.
///   Catches in-execution flips too; detection happens before the
///   claimant's own chunk commits (never after the run).
/// * [`VerifyPolicy::Sampled`]`(k)` — re-executes chunks where
///   `chunk % k == 0`, digest-checks the rest. `Sampled(1)` is
///   `EveryChunk`; `Sampled(0)` is refused by [`RunConfig::try_validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyPolicy {
    /// No verification (the default): zero digests, zero replays.
    #[default]
    Off,
    /// Digest-compare committed footprints; no replay.
    Checksum,
    /// Replay-verify every committed chunk.
    EveryChunk,
    /// Replay-verify chunks where `chunk % k == 0`; digest-check the rest.
    Sampled(u64),
}

impl VerifyPolicy {
    /// Is any verification armed at all?
    #[inline]
    pub fn armed(&self) -> bool {
        !matches!(self, VerifyPolicy::Off)
    }

    /// Does this policy replay-verify chunk index `chunk`?
    #[inline]
    pub fn replays(&self, chunk: u64) -> bool {
        match self {
            VerifyPolicy::EveryChunk => true,
            VerifyPolicy::Sampled(k) => *k != 0 && chunk.is_multiple_of(*k),
            VerifyPolicy::Off | VerifyPolicy::Checksum => false,
        }
    }
}

/// Why a run was cancelled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CancelKind {
    /// An external caller fired [`CancelToken::cancel`].
    User,
    /// The run deadline expired ([`RunConfig::deadline`]).
    Deadline {
        /// The configured deadline that expired.
        after: Duration,
    },
    /// A metered allocation would have exceeded the [`MemBudget`].
    Budget {
        /// Bytes the refused reservation asked for.
        needed: u64,
        /// The configured budget limit.
        limit: u64,
    },
}

/// The recorded cancellation: what fired and why, first cause wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CancelState {
    /// What kind of canceller fired.
    pub kind: CancelKind,
    /// Human-readable reason recorded by the canceller.
    pub reason: String,
}

#[derive(Debug)]
struct CancelInner {
    flag: AtomicBool,
    state: Mutex<Option<CancelState>>,
    origin: Instant,
    /// ns since `origin` when the cancel fired (`u64::MAX` = not fired).
    requested_ns: AtomicU64,
    /// ns between the cancel firing and the first worker acting on it
    /// (`u64::MAX` = not yet observed).
    latency_ns: AtomicU64,
}

/// A shared, cloneable cancellation flag with a reason cell.
///
/// `is_cancelled` is a single `Acquire` load — cheap enough for the
/// runtime to poll at every chunk boundary and helper poll batch without
/// measurable overhead (the fault-free overhead guard pins this).
/// Cancelling is idempotent: the first [`CancelToken::cancel_with`] wins
/// and installs the [`CancelState`]; later calls are no-ops.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                state: Mutex::new(None),
                origin: Instant::now(),
                requested_ns: AtomicU64::new(u64::MAX),
                latency_ns: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Cancel the run (user-initiated). Returns `true` when this call won
    /// the race to install the cancellation.
    pub fn cancel(&self, reason: &str) -> bool {
        self.cancel_with(CancelKind::User, reason)
    }

    /// Cancel with an explicit kind. First cause wins; the install happens
    /// before the flag store, so any worker that observes the flag also
    /// observes a populated [`CancelState`].
    pub fn cancel_with(&self, kind: CancelKind, reason: &str) -> bool {
        let installed = {
            let mut slot = lock_recover(&self.inner.state);
            if slot.is_none() {
                *slot = Some(CancelState {
                    kind,
                    reason: reason.to_string(),
                });
                true
            } else {
                false
            }
        };
        if installed {
            self.inner.requested_ns.store(
                self.inner.origin.elapsed().as_nanos() as u64,
                Ordering::Release,
            );
        }
        self.inner.flag.store(true, Ordering::Release);
        installed
    }

    /// Has the run been cancelled? One `Acquire` load.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
    }

    /// The recorded cancellation, if any.
    pub fn state(&self) -> Option<CancelState> {
        if !self.is_cancelled() {
            return None;
        }
        lock_recover(&self.inner.state).clone()
    }

    /// Stamp the moment the first worker acted on the cancellation.
    /// Idempotent: only the first observer records the latency sample.
    pub(crate) fn note_observed(&self) {
        let requested = self.inner.requested_ns.load(Ordering::Acquire);
        if requested == u64::MAX {
            return;
        }
        let now = self.inner.origin.elapsed().as_nanos() as u64;
        let _ = self.inner.latency_ns.compare_exchange(
            u64::MAX,
            now.saturating_sub(requested),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Time between the cancel firing and the first worker acting on it —
    /// the run's cancel latency. `None` until a worker has observed the
    /// cancellation.
    pub fn latency(&self) -> Option<Duration> {
        match self.inner.latency_ns.load(Ordering::Acquire) {
            u64::MAX => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }
}

/// A shared memory budget metering the runtime's elastic allocations:
/// per-worker undo-journal buffers and helper pack arenas. (Prefetch
/// helpers issue cache hints and allocate nothing; sequential salvage
/// re-executes in place and allocates nothing either — both are metered
/// trivially at zero.)
///
/// Accounting is capacity-growth based: workers reserve the *growth* of
/// their long-lived buffers, which amortize to a steady state, so `used`
/// tracks the peak bytes those arenas pin for the run's lifetime. A
/// refused reservation cancels the run with [`CancelKind::Budget`], which
/// surfaces as `RunError::BudgetExceeded`.
#[derive(Debug, Clone)]
pub struct MemBudget {
    limit: Option<u64>,
    used: Arc<AtomicU64>,
    high: Arc<AtomicU64>,
}

impl Default for MemBudget {
    fn default() -> Self {
        MemBudget::unlimited()
    }
}

impl MemBudget {
    /// No limit: reservations always succeed (the high-water mark is
    /// still tracked).
    pub fn unlimited() -> Self {
        MemBudget {
            limit: None,
            used: Arc::new(AtomicU64::new(0)),
            high: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A hard limit in bytes across all metered allocations of the run.
    pub fn limited(bytes: u64) -> Self {
        MemBudget {
            limit: Some(bytes),
            ..MemBudget::unlimited()
        }
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Try to reserve `bytes`; `false` means the reservation would exceed
    /// the limit (and nothing was reserved).
    pub fn try_reserve(&self, bytes: u64) -> bool {
        if bytes == 0 {
            return true;
        }
        let new = self.used.fetch_add(bytes, Ordering::AcqRel) + bytes;
        if let Some(limit) = self.limit {
            if new > limit {
                self.used.fetch_sub(bytes, Ordering::AcqRel);
                return false;
            }
        }
        self.high.fetch_max(new, Ordering::AcqRel);
        true
    }

    /// Return `bytes` to the budget (for transient reservations).
    ///
    /// Releasing more than is currently reserved is a caller bug (a
    /// mismatched reserve/release pair): it trips a debug assertion, and
    /// in release builds it clamps to zero instead of wrapping `used`
    /// around to ~`u64::MAX` — which would permanently satisfy every
    /// limit check and silently disable the budget.
    pub fn release(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let prev = self
            .used
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                Some(used.saturating_sub(bytes))
            })
            .expect("fetch_update closure never returns None");
        debug_assert!(
            prev >= bytes,
            "MemBudget::release({bytes}) exceeds reserved bytes ({prev}): mismatched release"
        );
    }

    /// Currently reserved bytes.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Acquire)
    }

    /// Peak reserved bytes over the budget's lifetime.
    pub fn high_water(&self) -> u64 {
        self.high.load(Ordering::Acquire)
    }
}

/// Everything governing one run: the runner geometry, the fault
/// tolerance, and the governance primitives (cancel token, deadline,
/// memory budget, observability options). Consumed by
/// `try_run_governed[_sequence]`.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Thread count, chunk geometry, and helper policy.
    pub runner: RunnerConfig,
    /// The fault-recovery ladder configuration.
    pub tolerance: Tolerance,
    /// Whole-run wall-clock budget; expiring fires the cancel token with
    /// [`CancelKind::Deadline`].
    pub deadline: Option<Duration>,
    /// Memory budget for journals and pack arenas.
    pub budget: MemBudget,
    /// The run's cancel token — clone it to cancel from outside.
    pub cancel: CancelToken,
    /// Observability options (event ring).
    pub observe: Observe,
    /// When the leader captures durable checkpoints ([`CkptPolicy::Off`]
    /// by default: zero durability overhead).
    pub ckpt: CkptPolicy,
    /// Where checkpoints go; required iff `ckpt` is not `Off`.
    pub ckpt_sink: Option<CkptSink>,
    /// Silent-data-corruption defense: when committed chunk bytes are
    /// verified ([`VerifyPolicy::Off`] by default: one branch per chunk).
    pub verify: VerifyPolicy,
}

impl RunConfig {
    /// Validate the cross-field governance invariants. The runner's own
    /// geometry checks still run inside `try_run_governed`; this catches
    /// the silent misconfiguration they cannot see: a watchdog window
    /// longer than the run deadline would never fire — every stall would
    /// surface as the blunter `DeadlineExceeded` instead of a diagnosed
    /// `Stalled{chunk}` — so it is refused with a typed diagnostic.
    pub fn try_validate(&self) -> Result<(), RunError> {
        if let (Some(watchdog), Some(deadline)) = (self.tolerance.watchdog, self.deadline) {
            if watchdog > deadline {
                return Err(RunError::InvalidConfig(format!(
                    "watchdog window ({watchdog:?}) exceeds the run deadline ({deadline:?}): \
                     the watchdog could never fire; shrink the window or raise the deadline"
                )));
            }
        }
        match self.ckpt {
            CkptPolicy::Off => {
                if self.ckpt_sink.is_some() {
                    return Err(RunError::InvalidConfig(
                        "a checkpoint sink is configured but the policy is Off: \
                         nothing would ever be written; set a policy or drop the sink"
                            .into(),
                    ));
                }
            }
            CkptPolicy::EveryChunks(0) => {
                return Err(RunError::InvalidConfig(
                    "CkptPolicy::EveryChunks(0) can never be due; use at least 1".into(),
                ));
            }
            CkptPolicy::EveryMillis(0) => {
                return Err(RunError::InvalidConfig(
                    "CkptPolicy::EveryMillis(0) degenerates to every-chunk; \
                     use EveryChunks(1) to say that, or a real interval"
                        .into(),
                ));
            }
            _ => {
                if self.ckpt_sink.is_none() {
                    return Err(RunError::InvalidConfig(format!(
                        "checkpoint policy {:?} has no sink: the run would silently \
                         lose its durability guarantee; attach a CkptSink",
                        self.ckpt
                    )));
                }
            }
        }
        if self.verify == VerifyPolicy::Sampled(0) {
            return Err(RunError::InvalidConfig(
                "VerifyPolicy::Sampled(0) never replays anything (chunk % 0 is \
                 undefined); use Sampled(1) for every chunk or Checksum for \
                 digest-only"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// The armed deadline: a thread that fires the run's [`CancelToken`] when
/// the wall-clock budget expires, disarmed (woken and joined) on drop.
pub(crate) struct Governor {
    done: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Governor {
    /// Arm a governor that cancels via `cancel` after `deadline`.
    pub(crate) fn arm(cancel: &CancelToken, deadline: Duration) -> Governor {
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let done2 = done.clone();
        let cancel = cancel.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*done2;
            let mut finished = lock_recover(lock);
            let armed_at = Instant::now();
            loop {
                if *finished {
                    return;
                }
                let elapsed = armed_at.elapsed();
                if elapsed >= deadline {
                    break;
                }
                let (g, _) = cvar
                    .wait_timeout(finished, deadline - elapsed)
                    .unwrap_or_else(|e| e.into_inner());
                finished = g;
            }
            drop(finished);
            cancel.cancel_with(
                CancelKind::Deadline { after: deadline },
                &format!("run deadline of {deadline:?} expired"),
            );
        });
        Governor {
            done,
            handle: Some(handle),
        }
    }
}

impl Drop for Governor {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.done;
        *lock_recover(lock) = true;
        cvar.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cancel_wins_and_later_calls_are_noops() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.state(), None);
        assert!(t.cancel("first"));
        assert!(!t.cancel("second"));
        assert!(t.is_cancelled());
        let s = t.state().unwrap();
        assert_eq!(s.kind, CancelKind::User);
        assert_eq!(s.reason, "first");
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel_with(
            CancelKind::Budget {
                needed: 64,
                limit: 32,
            },
            "over budget",
        );
        assert!(t.is_cancelled());
        assert!(matches!(
            t.state().unwrap().kind,
            CancelKind::Budget {
                needed: 64,
                limit: 32
            }
        ));
    }

    #[test]
    fn latency_is_recorded_once_by_the_first_observer() {
        let t = CancelToken::new();
        t.note_observed();
        assert_eq!(t.latency(), None, "no cancel: nothing to observe");
        t.cancel("stop");
        assert_eq!(t.latency(), None, "not yet observed");
        t.note_observed();
        let first = t.latency().expect("observed");
        std::thread::sleep(Duration::from_millis(2));
        t.note_observed();
        assert_eq!(t.latency(), Some(first), "only the first observer stamps");
    }

    #[test]
    fn budget_meters_and_refuses_over_limit() {
        let b = MemBudget::limited(100);
        assert!(b.try_reserve(60));
        assert!(b.try_reserve(40));
        assert_eq!(b.used(), 100);
        assert!(!b.try_reserve(1), "101 > 100 must be refused");
        assert_eq!(b.used(), 100, "refused reservation reserves nothing");
        assert_eq!(b.high_water(), 100);
        b.release(50);
        assert_eq!(b.used(), 50);
        assert!(b.try_reserve(30));
        assert_eq!(b.high_water(), 100, "high-water is a peak, not current");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "exceeds reserved bytes"))]
    fn mismatched_release_saturates_instead_of_wrapping() {
        let b = MemBudget::limited(100);
        assert!(b.try_reserve(10));
        // Releasing more than is reserved is a caller bug: debug builds
        // assert; release builds clamp `used` to zero so the budget keeps
        // metering instead of wrapping to ~u64::MAX and never refusing
        // another reservation.
        b.release(11);
        assert_eq!(b.used(), 0, "saturated, not wrapped");
        assert!(b.try_reserve(100), "budget still functional");
        assert!(!b.try_reserve(1), "limit still enforced after saturation");
    }

    #[test]
    fn unlimited_budget_tracks_high_water() {
        let b = MemBudget::unlimited();
        assert!(b.try_reserve(1 << 40));
        assert_eq!(b.high_water(), 1 << 40);
        assert_eq!(b.limit(), None);
    }

    #[test]
    fn governor_fires_the_deadline() {
        let t = CancelToken::new();
        let g = Governor::arm(&t, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(40));
        assert!(t.is_cancelled());
        assert!(matches!(
            t.state().unwrap().kind,
            CancelKind::Deadline { .. }
        ));
        drop(g);
    }

    #[test]
    fn disarmed_governor_never_fires() {
        let t = CancelToken::new();
        let g = Governor::arm(&t, Duration::from_secs(3600));
        drop(g); // must join promptly, not hang for an hour
        assert!(!t.is_cancelled());
    }

    #[test]
    fn validate_rejects_watchdog_longer_than_deadline() {
        let cfg = RunConfig {
            tolerance: Tolerance {
                watchdog: Some(Duration::from_secs(10)),
                retry: None,
                salvage: true,
            },
            deadline: Some(Duration::from_secs(1)),
            ..RunConfig::default()
        };
        match cfg.try_validate() {
            Err(RunError::InvalidConfig(msg)) => {
                assert!(msg.contains("watchdog"), "{msg}");
                assert!(msg.contains("deadline"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let ok = RunConfig {
            tolerance: Tolerance {
                watchdog: Some(Duration::from_millis(100)),
                retry: None,
                salvage: true,
            },
            deadline: Some(Duration::from_secs(1)),
            ..RunConfig::default()
        };
        assert!(ok.try_validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_checkpoint_policies() {
        for ckpt in [CkptPolicy::EveryChunks(0), CkptPolicy::EveryMillis(0)] {
            let cfg = RunConfig {
                ckpt,
                ..RunConfig::default()
            };
            assert!(
                matches!(cfg.try_validate(), Err(RunError::InvalidConfig(_))),
                "{ckpt:?} must be refused"
            );
        }
    }

    #[test]
    fn validate_rejects_degenerate_sampled_verify() {
        let cfg = RunConfig {
            verify: VerifyPolicy::Sampled(0),
            ..RunConfig::default()
        };
        match cfg.try_validate() {
            Err(RunError::InvalidConfig(m)) => assert!(m.contains("Sampled(0)"), "{m}"),
            other => panic!("Sampled(0) must be refused, got {other:?}"),
        }
        let ok = RunConfig {
            verify: VerifyPolicy::Sampled(1),
            ..RunConfig::default()
        };
        assert!(ok.try_validate().is_ok());
    }

    #[test]
    fn verify_policy_replay_schedule() {
        assert!(!VerifyPolicy::Off.armed());
        assert!(VerifyPolicy::Checksum.armed());
        assert!(!VerifyPolicy::Checksum.replays(0));
        assert!(VerifyPolicy::EveryChunk.replays(7));
        let s = VerifyPolicy::Sampled(3);
        assert!(s.replays(0) && s.replays(3) && !s.replays(4));
        assert!(
            !VerifyPolicy::Sampled(0).replays(0),
            "degenerate k never divides"
        );
    }

    #[test]
    fn validate_rejects_policy_without_sink_and_sink_without_policy() {
        let cfg = RunConfig {
            ckpt: CkptPolicy::EveryChunks(1),
            ..RunConfig::default()
        };
        match cfg.try_validate() {
            Err(RunError::InvalidConfig(m)) => assert!(m.contains("sink"), "{m}"),
            other => panic!("policy without sink must be refused, got {other:?}"),
        }

        let dir =
            std::env::temp_dir().join(format!("cascade-govern-validate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = crate::ckpt::CkptWriter::create(
            &dir,
            "w",
            crate::ckpt::CkptMeta {
                loop_index: 0,
                iters: 8,
                iters_per_chunk: 2,
            },
            &[0; 4],
        )
        .unwrap();
        let cfg = RunConfig {
            ckpt_sink: Some(CkptSink::new(writer)),
            ..RunConfig::default()
        };
        match cfg.try_validate() {
            Err(RunError::InvalidConfig(m)) => assert!(m.contains("Off"), "{m}"),
            other => panic!("sink without policy must be refused, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

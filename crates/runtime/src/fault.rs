//! Deterministic fault injection for exercising the runtime's failure
//! paths: wrap any [`RealKernel`] in a [`FaultyKernel`] and a [`FaultPlan`]
//! chooses exactly which chunks panic, stall, or slow down.
//!
//! Design points that keep injected faults compatible with salvage (see
//! `docs/ROBUSTNESS.md`):
//!
//! * **Most faults fire before the chunk body.** An injected panic
//!   interrupts the chunk *before* the inner kernel writes anything, so
//!   re-executing the chunk from its start (the salvage path) is
//!   bitwise-correct, and [`FaultyKernel`] reports
//!   [`RealKernel::panics_before_mutation`] — wrap only kernels that do
//!   not panic on their own, or that promise fail-stop themselves. The
//!   exception is [`FaultKind::PanicMidMutation`], which deliberately
//!   executes a prefix of the chunk before panicking to leave torn
//!   partial writes behind: a plan containing one makes the wrapper
//!   truthfully *deny* fail-stop, so recovery is only possible through
//!   the journal-rollback transaction layer (or refused, for
//!   unjournalable inner kernels).
//! * **Faults fire once.** Each planned chunk trips at most one time, so
//!   the sequential salvage (or a retry) does not re-trigger the fault it
//!   is recovering from.
//! * **Stalls are finite.** A stall sleeps for a fixed duration and then
//!   runs the body, so every worker eventually returns and the supervisor
//!   can always join the pool — the watchdog may well declare the worker
//!   dead in the meantime (the `LateCompletion` path), but nothing hangs.

use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::Mutex;
use std::time::Duration;

use crate::kernel::RealKernel;

/// What an injected fault does when its chunk starts executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before the chunk body runs (a crashed worker).
    Panic,
    /// Execute the first `after_iters` iterations of the chunk, then
    /// panic — a crash *mid-mutation* that leaves torn partial writes in
    /// shared memory. Recovering from this requires the chunk
    /// transaction layer (undo-journal rollback); a fail-stop promise
    /// cannot cover it, so a plan containing one revokes
    /// [`RealKernel::panics_before_mutation`].
    PanicMidMutation {
        /// Iterations of the chunk to execute before panicking (clamped
        /// to the chunk length; 0 degenerates to a fail-stop panic but
        /// is still reported as mid-mutation).
        after_iters: u64,
    },
    /// Sleep for the duration, then run the body (a worker stuck long
    /// enough for the watchdog to declare it dead, yet finite so the pool
    /// always drains).
    Stall(Duration),
    /// Sleep briefly, then run the body (a slow worker that should *not*
    /// trip a well-tuned watchdog).
    Slowdown(Duration),
    /// Execute the chunk **and commit it normally**, but XOR one byte of
    /// shared memory partway through — silent data corruption. Nothing
    /// panics, nothing stalls: without the verification layer
    /// (`VerifyPolicy`, `docs/ROBUSTNESS.md` "Silent data corruption")
    /// the wrong bytes flow straight into the committed prefix. The flip
    /// lands via [`RealKernel::corrupt_byte`] either *inside* the chunk's
    /// analyzer-computed write footprint (`in_footprint`, caught by
    /// replay verification) or *outside* every write footprint of the
    /// loop (caught only by the arena scrubber).
    SilentBitFlip {
        /// Iterations of the chunk to execute before flipping (clamped to
        /// the chunk length; the remainder executes after the flip, so a
        /// small value lets later iterations legitimately overwrite the
        /// flip — use at least the chunk length to guarantee the
        /// corruption survives to commit).
        after_iters: u64,
        /// Which byte to flip: an index into the chunk's journal-layout
        /// write footprint (`in_footprint`) or a search start in the
        /// arena (outside), both taken modulo the respective size.
        offset: u64,
        /// XOR mask applied to the byte (0 degenerates to a no-op flip).
        xor: u8,
        /// Flip inside the chunk's write footprint (`true`) or outside
        /// every write footprint of the loop (`false`).
        in_footprint: bool,
    },
}

/// Which chunks of a run misbehave, and how. The plan is keyed by chunk
/// index; under the runner's round-robin ownership the executing thread is
/// `chunk % nthreads`, so [`FaultPlan::chunk_owned_by`] converts a
/// (thread, turn) target into the chunk to plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    iters_per_chunk: u64,
    faults: HashMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan. `iters_per_chunk` must match the
    /// [`crate::runner::RunnerConfig::iters_per_chunk`] the run will use —
    /// it is how the kernel maps an iteration range back to a chunk index.
    pub fn new(iters_per_chunk: u64) -> Self {
        assert!(iters_per_chunk >= 1, "chunks must be non-empty");
        FaultPlan {
            iters_per_chunk,
            faults: HashMap::new(),
        }
    }

    /// Plan `kind` for `chunk` (builder style).
    pub fn inject(mut self, chunk: u64, kind: FaultKind) -> Self {
        self.faults.insert(chunk, kind);
        self
    }

    /// The chunk that worker `thread` (of `nthreads`, round-robin
    /// ownership) executes on its `turn`-th turn — plan a fault there to
    /// target a specific (thread, chunk) point.
    pub fn chunk_owned_by(thread: u64, turn: u64, nthreads: u64) -> u64 {
        thread + turn * nthreads
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Does any planned fault interrupt a chunk mid-mutation? If so, a
    /// [`FaultyKernel`] running this plan cannot promise fail-stop
    /// panics.
    pub fn has_mid_mutation(&self) -> bool {
        self.faults
            .values()
            .any(|k| matches!(k, FaultKind::PanicMidMutation { .. }))
    }

    /// The chunk an execution range starting at `iter` belongs to.
    fn chunk_of(&self, iter: u64) -> u64 {
        iter / self.iters_per_chunk
    }
}

/// A [`RealKernel`] wrapper that injects the faults of a [`FaultPlan`] at
/// the start of the planned chunks' execution phases.
#[derive(Debug)]
pub struct FaultyKernel<K> {
    inner: K,
    plan: FaultPlan,
    fired: Mutex<HashSet<u64>>,
}

impl<K> FaultyKernel<K> {
    /// Wrap `inner` so the chunks named in `plan` misbehave.
    pub fn new(inner: K, plan: FaultPlan) -> Self {
        FaultyKernel {
            inner,
            plan,
            fired: Mutex::new(HashSet::new()),
        }
    }

    /// The chunks whose faults actually fired, sorted.
    pub fn fired(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.fired.lock().unwrap().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Unwrap the inner kernel (e.g. to inspect its data after a run).
    pub fn into_inner(self) -> K {
        self.inner
    }

    /// Fire the planned fault for the chunk containing `start_iter`, at
    /// most once per chunk. Returns how much of the chunk body the
    /// execute path may still run: all of it, or only a prefix (the
    /// mid-mutation fault, which executes that prefix and then panics).
    fn trip(&self, start_iter: u64) -> Trip {
        let chunk = self.plan.chunk_of(start_iter);
        let Some(kind) = self.plan.faults.get(&chunk) else {
            return Trip::Clean;
        };
        {
            let mut fired = self.fired.lock().unwrap();
            if !fired.insert(chunk) {
                return Trip::Clean; // fire once: salvage must not re-trip it
            }
        }
        match *kind {
            FaultKind::Panic => panic!("injected fault: panic at chunk {chunk}"),
            FaultKind::PanicMidMutation { after_iters } => Trip::Prefix(after_iters),
            FaultKind::Stall(d) | FaultKind::Slowdown(d) => {
                std::thread::sleep(d);
                Trip::Clean
            }
            FaultKind::SilentBitFlip {
                after_iters,
                offset,
                xor,
                in_footprint,
            } => Trip::Flip {
                after_iters,
                offset,
                xor,
                in_footprint,
            },
        }
    }
}

/// What an execute path does after [`FaultyKernel::trip`].
enum Trip {
    /// No interruption (no fault planned, already fired, or a sleep that
    /// has finished): run the whole body.
    Clean,
    /// Run only the first `n` iterations of the range, then panic.
    Prefix(u64),
    /// Run the first `after_iters` iterations, XOR a byte via
    /// [`RealKernel::corrupt_byte`], then run the rest — and return
    /// normally, as if nothing happened.
    Flip {
        after_iters: u64,
        offset: u64,
        xor: u8,
        in_footprint: bool,
    },
}

impl<K: RealKernel> RealKernel for FaultyKernel<K> {
    fn iters(&self) -> u64 {
        self.inner.iters()
    }

    unsafe fn execute(&self, range: Range<u64>) {
        match self.trip(range.start) {
            // SAFETY: forwarded under the caller's exclusivity guarantee.
            Trip::Clean => unsafe { self.inner.execute(range) },
            Trip::Prefix(n) => {
                let split = (range.start + n).min(range.end);
                // SAFETY: forwarded prefix under the same guarantee.
                unsafe { self.inner.execute(range.start..split) };
                panic!("injected fault: panic mid-mutation at iteration {split}");
            }
            Trip::Flip {
                after_iters,
                offset,
                xor,
                in_footprint,
            } => {
                let split = (range.start.saturating_add(after_iters)).min(range.end);
                // SAFETY: forwarded under the caller's exclusivity
                // guarantee; the flip happens while the claim is held, so
                // no concurrent reader observes the torn byte.
                unsafe {
                    self.inner.execute(range.start..split);
                    self.inner
                        .corrupt_byte(range.clone(), offset, xor, in_footprint);
                    self.inner.execute(split..range.end);
                }
            }
        }
    }

    fn prefetch_iter(&self, i: u64) {
        self.inner.prefetch_iter(i)
    }

    fn prefetch_bytes_per_iter(&self) -> u64 {
        self.inner.prefetch_bytes_per_iter()
    }

    fn pack_iter(&self, i: u64, buf: &mut Vec<u8>) -> bool {
        self.inner.pack_iter(i, buf)
    }

    unsafe fn execute_packed(&self, range: Range<u64>, buf: &[u8]) {
        match self.trip(range.start) {
            // SAFETY: forwarded under the caller's exclusivity guarantee.
            Trip::Clean => unsafe { self.inner.execute_packed(range, buf) },
            Trip::Prefix(n) => {
                let split = (range.start + n).min(range.end);
                // The prefix runs *unpacked*, which is bitwise-identical:
                // under the claim, every value the pack captured is still
                // exactly what memory holds (packs read only data that
                // committed chunks wrote, or that no iteration writes).
                // SAFETY: forwarded prefix under the same guarantee.
                unsafe { self.inner.execute(range.start..split) };
                panic!("injected fault: panic mid-mutation at iteration {split}");
            }
            Trip::Flip {
                after_iters,
                offset,
                xor,
                in_footprint,
            } => {
                let split = (range.start.saturating_add(after_iters)).min(range.end);
                // Both halves run *unpacked* (bitwise-identical, see the
                // mid-mutation arm above) so the flip can land between
                // iterations exactly as in the plain execute path.
                // SAFETY: forwarded under the caller's exclusivity
                // guarantee.
                unsafe {
                    self.inner.execute(range.start..split);
                    self.inner
                        .corrupt_byte(range.clone(), offset, xor, in_footprint);
                    self.inner.execute(split..range.end);
                }
            }
        }
    }

    fn helper_horizon(&self) -> Option<u64> {
        self.inner.helper_horizon()
    }

    /// Injected panics fire strictly before the inner body (see module
    /// docs) — *unless* the plan contains a mid-mutation fault, which
    /// exists precisely to break that promise. Either way the promise is
    /// void if the *inner* kernel panics mid-body on its own.
    fn panics_before_mutation(&self) -> bool {
        !self.plan.has_mid_mutation()
    }

    fn journal_range_exact(&self) -> bool {
        // Fault injection never widens the write-set, so the inner
        // kernel's exactness promise carries over.
        self.inner.journal_range_exact()
    }

    unsafe fn journal_capture(&self, range: Range<u64>, buf: &mut Vec<u8>) -> bool {
        // Forwarded (the trait default would wrongly deny journaling):
        // the write-set of the wrapper is the write-set of the inner
        // kernel — an injected fault only truncates execution.
        // SAFETY: forwarded under the caller's exclusivity guarantee.
        unsafe { self.inner.journal_capture(range, buf) }
    }

    unsafe fn journal_rollback(&self, range: Range<u64>, buf: &[u8]) {
        // SAFETY: forwarded under the caller's exclusivity guarantee.
        unsafe { self.inner.journal_rollback(range, buf) }
    }

    unsafe fn replay_footprint(&self, range: Range<u64>, pre_image: &[u8]) -> Option<Vec<u8>> {
        // Forwarded to the *inner* kernel, bypassing `trip` entirely:
        // replays are the verification read path and must be clean even
        // when the original execution of the range flipped a byte (the
        // fire-once set already contains the chunk anyway).
        // SAFETY: forwarded under the caller's committed-range guarantee.
        unsafe { self.inner.replay_footprint(range, pre_image) }
    }

    unsafe fn corrupt_byte(
        &self,
        range: Range<u64>,
        offset: u64,
        xor: u8,
        in_footprint: bool,
    ) -> bool {
        // SAFETY: forwarded under the caller's exclusivity guarantee.
        unsafe { self.inner.corrupt_byte(range, offset, xor, in_footprint) }
    }

    unsafe fn scrub_digest(&self) -> Option<u64> {
        // SAFETY: forwarded under the caller's quiescence guarantee.
        unsafe { self.inner.scrub_digest() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::UnsafeCell;
    use std::time::Instant;

    struct Counter(UnsafeCell<Vec<u64>>);
    // SAFETY: mutation only via `execute` under the trait's exclusivity
    // contract (single-threaded in these tests).
    unsafe impl Sync for Counter {}
    impl RealKernel for Counter {
        fn iters(&self) -> u64 {
            // SAFETY: length read; execute never resizes.
            unsafe { (*self.0.get()).len() as u64 }
        }
        unsafe fn execute(&self, range: Range<u64>) {
            // SAFETY: exclusive per contract.
            let v = unsafe { &mut *self.0.get() };
            for i in range {
                v[i as usize] += 1;
            }
        }
        unsafe fn corrupt_byte(
            &self,
            range: Range<u64>,
            offset: u64,
            xor: u8,
            in_footprint: bool,
        ) -> bool {
            if !in_footprint {
                return false; // this toy kernel only targets its own writes
            }
            // SAFETY: exclusive per contract.
            let v = unsafe { &mut *self.0.get() };
            let i = range.start + offset % (range.end - range.start);
            v[i as usize] ^= xor as u64;
            true
        }
    }

    #[test]
    fn faults_fire_once_per_chunk() {
        let plan = FaultPlan::new(10).inject(1, FaultKind::Panic);
        let k = FaultyKernel::new(Counter(UnsafeCell::new(vec![0; 40])), plan);
        // First touch of chunk 1 panics...
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: single-threaded.
            unsafe { k.execute(10..20) }
        }));
        assert!(r.is_err());
        assert_eq!(k.fired(), vec![1]);
        // ...and the retry (the salvage path) runs clean, exactly once.
        // SAFETY: single-threaded.
        unsafe { k.execute(10..20) };
        let counts = k.into_inner().0.into_inner();
        assert!(counts[10..20].iter().all(|&c| c == 1), "{counts:?}");
        assert!(counts[..10].iter().all(|&c| c == 0));
    }

    #[test]
    fn unplanned_chunks_run_untouched() {
        let plan = FaultPlan::new(10).inject(3, FaultKind::Panic);
        let k = FaultyKernel::new(Counter(UnsafeCell::new(vec![0; 40])), plan);
        // SAFETY: single-threaded.
        unsafe { k.execute(0..10) };
        assert!(k.fired().is_empty());
        assert_eq!(k.iters(), 40);
    }

    #[test]
    fn stall_sleeps_then_executes() {
        let plan = FaultPlan::new(10).inject(0, FaultKind::Stall(Duration::from_millis(30)));
        let k = FaultyKernel::new(Counter(UnsafeCell::new(vec![0; 10])), plan);
        let t0 = Instant::now();
        // SAFETY: single-threaded.
        unsafe { k.execute(0..10) };
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert!(k.into_inner().0.into_inner().iter().all(|&c| c == 1));
    }

    #[test]
    fn mid_mutation_fault_executes_a_prefix_then_panics() {
        let plan = FaultPlan::new(10).inject(1, FaultKind::PanicMidMutation { after_iters: 4 });
        assert!(plan.has_mid_mutation());
        let k = FaultyKernel::new(Counter(UnsafeCell::new(vec![0; 40])), plan);
        assert!(
            !k.panics_before_mutation(),
            "a mid-mutation plan must revoke the fail-stop promise"
        );
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: single-threaded.
            unsafe { k.execute(10..20) }
        }));
        assert!(r.is_err());
        assert_eq!(k.fired(), vec![1]);
        {
            // SAFETY: single-threaded, no execute outstanding.
            let counts = unsafe { &*k.inner.0.get() };
            assert!(
                counts[10..14].iter().all(|&c| c == 1),
                "the prefix mutated: {counts:?}"
            );
            assert!(
                counts[14..20].iter().all(|&c| c == 0),
                "the suffix did not: {counts:?}"
            );
        }
        // The fault fired; re-execution (retry / salvage) runs clean.
        // SAFETY: single-threaded.
        unsafe { k.execute(10..20) };
        let counts = k.into_inner().0.into_inner();
        assert!(
            counts[10..14].iter().all(|&c| c == 2),
            "torn prefix re-ran: {counts:?}"
        );
        assert!(counts[14..20].iter().all(|&c| c == 1));
    }

    #[test]
    fn mid_mutation_prefix_is_clamped_to_the_chunk() {
        let plan = FaultPlan::new(10).inject(0, FaultKind::PanicMidMutation { after_iters: 99 });
        let k = FaultyKernel::new(Counter(UnsafeCell::new(vec![0; 10])), plan);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: single-threaded.
            unsafe { k.execute(0..10) }
        }));
        assert!(r.is_err(), "still panics even with the whole chunk run");
        assert!(k.into_inner().0.into_inner().iter().all(|&c| c == 1));
    }

    #[test]
    fn silent_bit_flip_executes_fully_then_corrupts_without_panicking() {
        let plan = FaultPlan::new(10).inject(
            1,
            FaultKind::SilentBitFlip {
                after_iters: u64::MAX, // flip after the whole chunk body
                offset: 3,
                xor: 0xFF,
                in_footprint: true,
            },
        );
        assert!(!plan.has_mid_mutation(), "a flip is not a panic");
        let k = FaultyKernel::new(Counter(UnsafeCell::new(vec![0; 40])), plan);
        assert!(k.panics_before_mutation(), "the fail-stop promise stands");
        // SAFETY: single-threaded.
        unsafe { k.execute(10..20) };
        assert_eq!(k.fired(), vec![1], "the flip fired — and nothing panicked");
        // Second touch (a replay / salvage) is clean: fire-once.
        // SAFETY: single-threaded.
        unsafe { k.execute(10..20) };
        let counts = k.into_inner().0.into_inner();
        // First touch: count 1, then XOR (1 ^ 0xFF = 254); second, clean
        // touch increments to 255.
        assert_eq!(counts[13], (1 ^ 0xFF) + 1, "offset 3 was XORed once");
        assert!(
            counts[10..20]
                .iter()
                .enumerate()
                .all(|(i, &c)| i == 3 || c == 2),
            "every other element executed twice, uncorrupted: {counts:?}"
        );
    }

    #[test]
    fn thread_targeting_maps_to_round_robin_ownership() {
        // Thread 2 of 3 executes chunks 2, 5, 8, ...
        assert_eq!(FaultPlan::chunk_owned_by(2, 0, 3), 2);
        assert_eq!(FaultPlan::chunk_owned_by(2, 1, 3), 5);
        let plan = FaultPlan::new(4).inject(5, FaultKind::Panic);
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
    }
}

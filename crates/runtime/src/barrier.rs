//! A poisonable barrier for the persistent-pool sequence runner.
//!
//! `std::sync::Barrier` deadlocks the survivors when one participant dies:
//! the barrier keeps waiting for an arrival that will never come. The
//! sequence runner instead uses this [`FtBarrier`], which any participant
//! can [`FtBarrier::poison`] — every current waiter wakes immediately and
//! every future wait returns [`BarrierOutcome::Poisoned`], so the pool
//! drains promptly after a fault instead of hanging between loops.

use std::sync::{Condvar, Mutex};

/// How a barrier wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// All participants arrived; this caller is the generation's leader
    /// (exactly one per generation, like `BarrierWaitResult::is_leader`).
    Leader,
    /// All participants arrived; another caller leads this generation.
    Follower,
    /// The barrier was poisoned (a participant died); stop using it.
    Poisoned,
}

impl BarrierOutcome {
    /// Convenience mirror of `std`'s `BarrierWaitResult::is_leader`.
    pub fn is_leader(self) -> bool {
        matches!(self, BarrierOutcome::Leader)
    }
}

#[derive(Debug)]
struct State {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// A cyclic barrier for `n` participants that survives participant death.
#[derive(Debug)]
pub struct FtBarrier {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl FtBarrier {
    /// A barrier for `n` participants (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        FtBarrier {
            n,
            state: Mutex::new(State {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until all `n` participants arrive or the barrier is poisoned.
    pub fn wait(&self) -> BarrierOutcome {
        let mut st = self.state.lock().unwrap();
        if st.poisoned {
            return BarrierOutcome::Poisoned;
        }
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return BarrierOutcome::Leader;
        }
        let gen = st.generation;
        loop {
            st = self.cv.wait(st).unwrap();
            if st.poisoned {
                return BarrierOutcome::Poisoned;
            }
            if st.generation != gen {
                return BarrierOutcome::Follower;
            }
        }
    }

    /// Poison the barrier: wake every waiter with
    /// [`BarrierOutcome::Poisoned`] and make all future waits return it
    /// immediately.
    pub fn poison(&self) {
        let mut st = self.state.lock().unwrap();
        st.poisoned = true;
        self.cv.notify_all();
    }

    /// Has the barrier been poisoned?
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().unwrap().poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn rendezvous_has_exactly_one_leader_per_generation() {
        let b = FtBarrier::new(4);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        if b.wait().is_leader() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            leaders.load(Ordering::Relaxed),
            10,
            "one leader per generation"
        );
    }

    #[test]
    fn poison_unblocks_waiters_and_future_waits() {
        let b = FtBarrier::new(3);
        let poisoned_seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    if b.wait() == BarrierOutcome::Poisoned {
                        poisoned_seen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // The third participant dies instead of arriving.
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                b.poison();
            });
        });
        assert_eq!(
            poisoned_seen.load(Ordering::Relaxed),
            2,
            "both waiters must wake poisoned"
        );
        assert_eq!(
            b.wait(),
            BarrierOutcome::Poisoned,
            "future waits return immediately"
        );
    }

    #[test]
    fn single_participant_always_leads() {
        let b = FtBarrier::new(1);
        assert!(b.wait().is_leader());
        assert!(b.wait().is_leader());
    }
}

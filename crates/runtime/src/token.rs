//! The control-transfer mechanism: a shared chunk counter.
//!
//! The paper (§3.3, footnote 2): "Transferring control requires only that
//! a shared-memory flag be set and that the target processor see its new
//! value." The flag here is a single cache-padded atomic holding the index
//! of the chunk currently licensed to execute. The processor finishing
//! chunk `j` stores `j+1` with `Release`; the owner of chunk `j+1` spins
//! with `Acquire` loads. The Release/Acquire pair is what makes the data
//! written by chunk `j` visible to chunk `j+1` — it is the entire
//! correctness argument for mutating shared arrays from rotating threads.
//!
//! ## Failure model
//!
//! The token is also the runtime's failure-propagation channel (see
//! `docs/ROBUSTNESS.md`). A token can be **poisoned** — set to a reserved
//! counter value no real chunk index reaches — carrying a structured
//! [`PoisonCause`] diagnostic (who poisoned it, at which chunk, why).
//! Waits come in two flavours: the classic unbounded [`Token::wait_for`]
//! (panics on poison), and the bounded [`Token::wait_for_deadline`] that
//! returns a [`WaitOutcome`] so callers can implement watchdogs instead of
//! spinning forever behind a dead token holder.
//!
//! ## Claimed execution (the recovery protocol)
//!
//! For in-cascade fault recovery the grant alone is not enough: when chunk
//! ownership can be *remapped* at runtime (a failed worker's chunks handed
//! to survivors), two workers may transiently wait for the same chunk. The
//! token therefore distinguishes a **granted** chunk (counter holds `j`)
//! from a **claimed** one (counter holds `j | EXEC_BIT`): a worker wins the
//! right to execute `j` with the [`Token::try_claim`] compare-and-swap,
//! publishes its writes with [`Token::try_advance`] (`j | EXEC_BIT` →
//! `j + 1`), and — only while the chunk is *pristine* (a fail-stop panic
//! before any mutation, or partial writes rolled back from the undo
//! journal) — can relinquish an unexecuted claim with
//! [`Token::try_unclaim`] so a healthy worker re-claims the chunk. Every transition is a CAS, so exactly one
//! executor exists per chunk, a poisoned token can never be resurrected,
//! and remapping races are benign by construction. The state machine is
//! exhaustively model-checked in `cascade_rt::check`.
//!
//! ## Checksummed handoffs
//!
//! When online verification is armed (`VerifyPolicy` in
//! `cascade_rt::govern`), the executor publishes an `fnv64` digest of its
//! chunk's committed write footprint *before* the `try_advance` Release —
//! alongside the existing release-timestamp stamp — so the downstream
//! claimant's Acquire through the claim CAS makes the digest (and the
//! full verification packet) visible before the next chunk executes. The
//! digest itself rides a Relaxed store: the token's Release/Acquire edge
//! is the only ordering needed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Lock a mutex, recovering the guard when the mutex was poisoned by a
/// panicking holder. Every runtime-internal mutex guards plain data whose
/// invariants hold between statements (fault logs, roster membership,
/// backoff stamps), so a panic mid-critical-section cannot leave it torn —
/// recovering is always sound here, and it keeps one panicking worker from
/// cascading `PoisonError` panics through every survivor that touches the
/// same lock.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pads and aligns a value to 128 bytes (two x86-64 prefetch-pair lines)
/// so the token never false-shares a cache line with neighbouring state.
/// Local replacement for `crossbeam::utils::CachePadded` — the offline
/// build vendors no external crates.
#[derive(Debug, Default)]
#[repr(align(128))]
pub(crate) struct CachePadded<T>(pub(crate) T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Why a token was poisoned: the diagnostic behind [`POISONED`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoisonCause {
    /// A worker panicked while the cascade was running.
    Panicked {
        /// Worker thread index (0-based) that panicked.
        thread: u64,
        /// Chunk the worker owned (or was about to own) when it panicked.
        chunk: u64,
        /// The panic payload, stringified when possible.
        message: String,
    },
    /// The progress watchdog saw no token movement for its whole window.
    Stalled {
        /// The chunk the token was stuck on.
        chunk: u64,
        /// How long the token sat on that chunk before poisoning.
        waited: Duration,
    },
    /// The run was cancelled cooperatively (user cancel, run deadline, or
    /// memory-budget refusal — the governance layer in `cascade_rt::govern`
    /// records which).
    Cancelled {
        /// Human-readable reason recorded by the canceller.
        reason: String,
    },
    /// Online verification caught silent data corruption and the
    /// tolerance offered no recovery path (see `docs/ROBUSTNESS.md`,
    /// "Silent data corruption"): the corrupted chunk was rolled back to
    /// its pre-image before poisoning, so the committed prefix returned
    /// with the typed error never contains a corrupted chunk.
    Corrupted {
        /// The blamed executor, or `None` when the corruption landed
        /// outside every chunk's write footprint (arena-scrubber
        /// detection; no chunk wrote there, so blame is unassignable).
        thread: Option<u64>,
        /// The corrupted chunk, or `None` for out-of-footprint drift.
        chunk: Option<u64>,
        /// Exact loop-local sequential resume point after the rollback:
        /// every iteration below it is committed and uncorrupted.
        resume_at: u64,
    },
    /// Poisoned via the legacy diagnostic-free [`Token::poison`].
    Unspecified,
}

impl std::fmt::Display for PoisonCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoisonCause::Panicked {
                thread,
                chunk,
                message,
            } => {
                write!(
                    f,
                    "worker thread {thread} panicked on chunk {chunk}: {message}"
                )
            }
            PoisonCause::Stalled { chunk, waited } => {
                write!(
                    f,
                    "no progress on chunk {chunk} for {waited:?} (stall declared)"
                )
            }
            PoisonCause::Cancelled { reason } => {
                write!(f, "run cancelled: {reason}")
            }
            PoisonCause::Corrupted {
                thread,
                chunk,
                resume_at,
            } => match (thread, chunk) {
                (Some(t), Some(c)) => write!(
                    f,
                    "silent corruption in chunk {c} blamed on worker {t} \
                     (rolled back; clean through iteration {resume_at})"
                ),
                _ => write!(
                    f,
                    "silent corruption outside every chunk's write footprint \
                     (clean through iteration {resume_at})"
                ),
            },
            PoisonCause::Unspecified => write!(f, "poisoned without diagnostic"),
        }
    }
}

/// Result of a bounded wait ([`Token::wait_for_deadline`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The chunk was granted; carries the spin count (contention metric).
    Granted {
        /// Spin iterations before the grant was observed.
        spins: u64,
    },
    /// The token was poisoned; carries the diagnostic.
    Poisoned(PoisonCause),
    /// The deadline passed without grant or poison.
    TimedOut {
        /// Time actually spent waiting.
        waited: Duration,
    },
}

/// A cascaded-execution token: the index of the chunk allowed to execute.
#[derive(Debug, Default)]
pub struct Token {
    counter: CachePadded<AtomicU64>,
    cause: Mutex<Option<PoisonCause>>,
}

/// Counter value marking a poisoned token (a worker panicked or stalled
/// while holding it). No real chunk index can reach this value.
pub const POISONED: u64 = u64::MAX;

/// High bit marking the current chunk as *claimed for execution*: between
/// the winning [`Token::try_claim`] and the [`Token::try_advance`] that
/// publishes the chunk's writes, the counter holds `chunk | EXEC_BIT`.
/// [`POISONED`] also has this bit set; it is excluded everywhere by its
/// reserved value. Real chunk indices must stay below this bit.
pub const EXEC_BIT: u64 = 1 << 63;

/// What the token's raw counter currently encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenView {
    /// Chunk `j` is granted and unclaimed: its owner may claim it.
    Granted(u64),
    /// Chunk `j` is claimed: exactly one worker is executing it.
    Claimed(u64),
    /// The token is poisoned; see [`Token::poison_cause`].
    Poisoned,
}

impl Token {
    /// A token granting chunk 0.
    pub fn new() -> Self {
        Token::default()
    }

    /// Mark the token poisoned: every current and future waiter panics (or
    /// observes [`WaitOutcome::Poisoned`]) instead of spinning forever.
    /// Called when a worker panics mid-chunk, so the failure propagates
    /// instead of deadlocking the remaining workers.
    pub fn poison(&self) {
        self.poison_with(PoisonCause::Unspecified);
    }

    /// Poison with a diagnostic. The first cause wins; later callers (for
    /// instance several waiters declaring the same stall concurrently)
    /// keep the original diagnostic. Returns `true` when `cause` was the
    /// one installed — lets the winning caller alone record a fault event.
    pub fn poison_with(&self, cause: PoisonCause) -> bool {
        let installed = {
            let mut slot = lock_recover(&self.cause);
            if slot.is_none() {
                *slot = Some(cause);
                true
            } else {
                false
            }
        };
        self.counter.store(POISONED, Ordering::Release);
        installed
    }

    /// Has the token been poisoned?
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.counter.load(Ordering::Acquire) == POISONED
    }

    /// The poison diagnostic, if the token is poisoned.
    pub fn poison_cause(&self) -> Option<PoisonCause> {
        if !self.is_poisoned() {
            return None;
        }
        Some(
            lock_recover(&self.cause)
                .clone()
                .unwrap_or(PoisonCause::Unspecified),
        )
    }

    /// The chunk currently licensed to execute (Acquire: pairs with
    /// [`Token::release_to`] so the previous chunk's writes are visible).
    #[inline]
    pub fn current(&self) -> u64 {
        self.counter.load(Ordering::Acquire)
    }

    /// Non-blocking check whether `chunk` may execute now.
    #[inline]
    pub fn is_granted(&self, chunk: u64) -> bool {
        self.current() == chunk
    }

    /// Spin until `chunk` is granted. Returns the number of spin
    /// iterations (a coarse contention metric).
    ///
    /// # Panics
    ///
    /// Panics if the token is poisoned (another worker panicked or was
    /// declared stalled) — spinning forever would deadlock the pool.
    pub fn wait_for(&self, chunk: u64) -> u64 {
        match self.wait_for_deadline(chunk, None) {
            WaitOutcome::Granted { spins } => spins,
            WaitOutcome::Poisoned(cause) => {
                panic!("cascade token poisoned: {cause}")
            }
            WaitOutcome::TimedOut { .. } => unreachable!("no deadline given"),
        }
    }

    /// Spin until `chunk` is granted, the token is poisoned, or `deadline`
    /// (when given) passes — the bounded wait underlying the runtime's
    /// progress watchdog. Never panics.
    pub fn wait_for_deadline(&self, chunk: u64, deadline: Option<Instant>) -> WaitOutcome {
        debug_assert_ne!(chunk, POISONED, "reserved chunk index");
        let started = deadline.map(|_| Instant::now());
        let mut spins = 0u64;
        loop {
            let cur = self.current();
            if cur == chunk {
                return WaitOutcome::Granted { spins };
            }
            if cur == POISONED {
                return WaitOutcome::Poisoned(
                    self.poison_cause().unwrap_or(PoisonCause::Unspecified),
                );
            }
            std::hint::spin_loop();
            spins += 1;
            // On oversubscribed hosts (for instance this crate's tests on a
            // single-CPU machine) pure spinning would starve the token
            // holder; yield periodically. The deadline is also only
            // checked here: Instant::now() per spin would dominate.
            if spins.is_multiple_of(1024) {
                if let (Some(deadline), Some(started)) = (deadline, started) {
                    let now = Instant::now();
                    if now >= deadline {
                        return WaitOutcome::TimedOut {
                            waited: now.duration_since(started),
                        };
                    }
                }
                std::thread::yield_now();
            }
        }
    }

    /// Pass control to `next` (Release: publishes every write made while
    /// holding the token).
    #[inline]
    pub fn release_to(&self, next: u64) {
        self.counter.store(next, Ordering::Release);
    }

    /// Pass control from `held` to `next` only if the token still grants
    /// `held` — fails (returning `false`) when the token was poisoned in
    /// the meantime, so a worker declared dead by the watchdog can never
    /// resurrect the token by overwriting [`POISONED`] with a plain store.
    #[inline]
    pub fn try_release(&self, held: u64, next: u64) -> bool {
        self.counter
            .compare_exchange(held, next, Ordering::Release, Ordering::Acquire)
            .is_ok()
    }

    /// The raw counter value (Acquire). Decode with [`Token::decode`].
    #[inline]
    pub fn raw(&self) -> u64 {
        self.counter.load(Ordering::Acquire)
    }

    /// The chunk index encoded in a raw counter value, with the claim bit
    /// stripped. Meaningless for [`POISONED`].
    #[inline]
    pub fn chunk_index(raw: u64) -> u64 {
        raw & !EXEC_BIT
    }

    /// Decode a raw counter value into its protocol state.
    #[inline]
    pub fn decode(raw: u64) -> TokenView {
        if raw == POISONED {
            TokenView::Poisoned
        } else if raw & EXEC_BIT != 0 {
            TokenView::Claimed(raw & !EXEC_BIT)
        } else {
            TokenView::Granted(raw)
        }
    }

    /// The lowest not-yet-completed chunk (the cascade's progress point),
    /// or `None` when the token is poisoned. A claimed chunk is still in
    /// flight, so it counts as the position.
    #[inline]
    pub fn position(&self) -> Option<u64> {
        match Token::decode(self.raw()) {
            TokenView::Poisoned => None,
            TokenView::Granted(j) | TokenView::Claimed(j) => Some(j),
        }
    }

    /// Claim granted chunk `chunk` for execution: CAS `chunk` →
    /// `chunk | EXEC_BIT`. Exactly one claimant wins even when ownership
    /// remapping makes several workers race for the same chunk; the
    /// Acquire on success pairs with the previous chunk's
    /// [`Token::try_advance`] Release so its writes are visible.
    #[inline]
    pub fn try_claim(&self, chunk: u64) -> bool {
        debug_assert_eq!(chunk & EXEC_BIT, 0, "chunk index overflows claim bit");
        self.counter
            .compare_exchange(chunk, chunk | EXEC_BIT, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Publish claimed chunk `chunk` as complete and grant `chunk + 1`:
    /// CAS `chunk | EXEC_BIT` → `chunk + 1` (Release). Fails — returning
    /// `false` — when the token was poisoned while the chunk executed, so
    /// a worker the watchdog declared dead can never resurrect the token
    /// ([`crate::runner::FaultEvent::LateCompletion`]).
    #[inline]
    pub fn try_advance(&self, chunk: u64) -> bool {
        self.counter
            .compare_exchange(
                chunk | EXEC_BIT,
                chunk + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Relinquish claimed-but-unexecuted chunk `chunk`: CAS
    /// `chunk | EXEC_BIT` → `chunk`, re-granting it so a surviving worker
    /// can re-claim. Only sound when the chunk is pristine — the claimant
    /// wrote nothing (fail-stop panic before mutation) or its partial
    /// writes were rolled back from the undo journal *before* this call
    /// (rollback happens-before the re-execution claim); the runner gates
    /// this on [`crate::kernel::RealKernel::panics_before_mutation`] and
    /// [`crate::kernel::RealKernel::journal_rollback`]. Fails when the
    /// token was poisoned in the meantime.
    #[inline]
    pub fn try_unclaim(&self, chunk: u64) -> bool {
        self.counter
            .compare_exchange(chunk | EXEC_BIT, chunk, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_chunk_zero() {
        let t = Token::new();
        assert!(t.is_granted(0));
        assert!(!t.is_granted(1));
    }

    #[test]
    fn release_advances_grant() {
        let t = Token::new();
        t.release_to(1);
        assert_eq!(t.current(), 1);
        assert!(t.is_granted(1));
    }

    #[test]
    fn wait_for_returns_immediately_when_granted() {
        let t = Token::new();
        assert_eq!(t.wait_for(0), 0);
    }

    #[test]
    fn bounded_wait_times_out() {
        let t = Token::new();
        let deadline = Instant::now() + Duration::from_millis(20);
        match t.wait_for_deadline(5, Some(deadline)) {
            WaitOutcome::TimedOut { waited } => {
                assert!(
                    waited >= Duration::from_millis(20),
                    "returned early: {waited:?}"
                )
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn bounded_wait_reports_poison_cause() {
        let t = Token::new();
        t.poison_with(PoisonCause::Stalled {
            chunk: 3,
            waited: Duration::from_millis(7),
        });
        match t.wait_for_deadline(5, None) {
            WaitOutcome::Poisoned(PoisonCause::Stalled { chunk: 3, .. }) => {}
            other => panic!("expected stall diagnostic, got {other:?}"),
        }
        // First cause wins.
        t.poison_with(PoisonCause::Unspecified);
        assert!(matches!(
            t.poison_cause(),
            Some(PoisonCause::Stalled { .. })
        ));
    }

    #[test]
    fn try_release_refuses_poisoned_token() {
        let t = Token::new();
        assert!(t.try_release(0, 1));
        t.poison();
        assert!(
            !t.try_release(1, 2),
            "CAS release must not resurrect a poisoned token"
        );
        assert!(t.is_poisoned());
    }

    #[test]
    fn claim_protocol_round_trip() {
        let t = Token::new();
        assert_eq!(Token::decode(t.raw()), TokenView::Granted(0));
        assert!(t.try_claim(0), "owner claims the granted chunk");
        assert!(!t.try_claim(0), "a second claimant must lose the CAS");
        assert_eq!(Token::decode(t.raw()), TokenView::Claimed(0));
        assert_eq!(t.position(), Some(0), "a claimed chunk is still in flight");
        assert!(t.try_advance(0));
        assert_eq!(Token::decode(t.raw()), TokenView::Granted(1));
        assert_eq!(t.position(), Some(1));
    }

    #[test]
    fn unclaim_regrants_for_retry() {
        let t = Token::new();
        assert!(t.try_claim(0));
        assert!(t.try_unclaim(0), "fail-stop panic relinquishes the claim");
        assert_eq!(Token::decode(t.raw()), TokenView::Granted(0));
        assert!(t.try_claim(0), "a survivor re-claims the retried chunk");
        assert!(t.try_advance(0));
        assert_eq!(t.current(), 1);
    }

    #[test]
    fn poison_defeats_every_cas_transition() {
        let t = Token::new();
        assert!(t.try_claim(0));
        t.poison();
        assert!(!t.try_advance(0), "advance must not resurrect poison");
        assert!(!t.try_unclaim(0), "unclaim must not resurrect poison");
        assert!(!t.try_claim(0));
        assert_eq!(t.position(), None);
        assert!(t.is_poisoned());
    }

    #[test]
    fn exactly_one_claimant_under_contention() {
        // Many threads race to claim each chunk of a short cascade; the
        // CAS must admit exactly one executor per chunk.
        use std::sync::atomic::AtomicU64;
        const CHUNKS: u64 = 50;
        let t = Token::new();
        let wins: Vec<AtomicU64> = (0..CHUNKS).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| loop {
                    let raw = t.raw();
                    match Token::decode(raw) {
                        TokenView::Poisoned => unreachable!(),
                        TokenView::Granted(j) if j >= CHUNKS => break,
                        TokenView::Granted(j) => {
                            if t.try_claim(j) {
                                wins[j as usize].fetch_add(1, Ordering::Relaxed);
                                assert!(t.try_advance(j));
                            }
                        }
                        TokenView::Claimed(_) => std::hint::spin_loop(),
                    }
                });
            }
        });
        for (j, w) in wins.iter().enumerate() {
            assert_eq!(w.load(Ordering::Relaxed), 1, "chunk {j} executors");
        }
    }

    #[test]
    fn token_serializes_two_threads() {
        // Two threads alternate chunks 0..100; a shared (non-atomic would
        // be UB, so atomic relaxed) log must come out strictly ordered.
        use std::sync::atomic::AtomicUsize;
        let t = Token::new();
        let log: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let next_slot = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (t, log, next_slot) = (&t, &log, &next_slot);
            for me in 0..2u64 {
                s.spawn(move || {
                    let mut chunk = me;
                    while chunk < 100 {
                        t.wait_for(chunk);
                        let slot = next_slot.fetch_add(1, Ordering::Relaxed);
                        log[slot].store(chunk as usize, Ordering::Relaxed);
                        t.release_to(chunk + 1);
                        chunk += 2;
                    }
                });
            }
        });
        for (i, entry) in log.iter().enumerate() {
            assert_eq!(
                entry.load(Ordering::Relaxed),
                i,
                "chunks must execute in order"
            );
        }
    }

    #[test]
    fn release_publishes_data_writes() {
        // The Release/Acquire pairing must carry non-atomic payload writes.
        let t = Token::new();
        let mut payload = 0u64;
        let p = &mut payload as *mut u64 as usize;
        std::thread::scope(|s| {
            s.spawn(|| {
                // SAFETY: exclusive access while holding chunk 0; the
                // Release store in release_to publishes the write.
                unsafe { *(p as *mut u64) = 42 };
                t.release_to(1);
            });
            s.spawn(|| {
                t.wait_for(1);
                // SAFETY: Acquire load observed chunk 1, so the write
                // above happens-before this read.
                let v = unsafe { *(p as *const u64) };
                assert_eq!(v, 42);
            });
        });
    }
}

//! The control-transfer mechanism: a shared chunk counter.
//!
//! The paper (§3.3, footnote 2): "Transferring control requires only that
//! a shared-memory flag be set and that the target processor see its new
//! value." The flag here is a single cache-padded atomic holding the index
//! of the chunk currently licensed to execute. The processor finishing
//! chunk `j` stores `j+1` with `Release`; the owner of chunk `j+1` spins
//! with `Acquire` loads. The Release/Acquire pair is what makes the data
//! written by chunk `j` visible to chunk `j+1` — it is the entire
//! correctness argument for mutating shared arrays from rotating threads.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// A cascaded-execution token: the index of the chunk allowed to execute.
#[derive(Debug, Default)]
pub struct Token {
    counter: CachePadded<AtomicU64>,
}

/// Counter value marking a poisoned token (a worker panicked while
/// holding it). No real chunk index can reach this value.
pub const POISONED: u64 = u64::MAX;

impl Token {
    /// A token granting chunk 0.
    pub fn new() -> Self {
        Token::default()
    }

    /// Mark the token poisoned: every current and future waiter panics
    /// instead of spinning forever. Called by the runner when a worker
    /// panics mid-chunk, so the panic propagates instead of deadlocking
    /// the remaining workers.
    pub fn poison(&self) {
        self.counter.store(POISONED, Ordering::Release);
    }

    /// Has the token been poisoned?
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.counter.load(Ordering::Acquire) == POISONED
    }

    /// The chunk currently licensed to execute (Acquire: pairs with
    /// [`Token::release_to`] so the previous chunk's writes are visible).
    #[inline]
    pub fn current(&self) -> u64 {
        self.counter.load(Ordering::Acquire)
    }

    /// Non-blocking check whether `chunk` may execute now.
    #[inline]
    pub fn is_granted(&self, chunk: u64) -> bool {
        self.current() == chunk
    }

    /// Spin until `chunk` is granted. Returns the number of spin
    /// iterations (a coarse contention metric).
    ///
    /// # Panics
    ///
    /// Panics if the token is poisoned (another worker panicked while
    /// holding it) — spinning forever would deadlock the pool.
    pub fn wait_for(&self, chunk: u64) -> u64 {
        debug_assert_ne!(chunk, POISONED, "reserved chunk index");
        let mut spins = 0u64;
        loop {
            let cur = self.current();
            if cur == chunk {
                return spins;
            }
            if cur == POISONED {
                panic!("cascade token poisoned: another worker panicked");
            }
            std::hint::spin_loop();
            spins += 1;
            // On oversubscribed hosts (for instance this crate's tests on a
            // single-CPU machine) pure spinning would starve the token
            // holder; yield periodically.
            if spins.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
    }

    /// Pass control to `next` (Release: publishes every write made while
    /// holding the token).
    #[inline]
    pub fn release_to(&self, next: u64) {
        self.counter.store(next, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_chunk_zero() {
        let t = Token::new();
        assert!(t.is_granted(0));
        assert!(!t.is_granted(1));
    }

    #[test]
    fn release_advances_grant() {
        let t = Token::new();
        t.release_to(1);
        assert_eq!(t.current(), 1);
        assert!(t.is_granted(1));
    }

    #[test]
    fn wait_for_returns_immediately_when_granted() {
        let t = Token::new();
        assert_eq!(t.wait_for(0), 0);
    }

    #[test]
    fn token_serializes_two_threads() {
        // Two threads alternate chunks 0..100; a shared (non-atomic would
        // be UB, so atomic relaxed) log must come out strictly ordered.
        use std::sync::atomic::AtomicUsize;
        let t = Token::new();
        let log: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let next_slot = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (t, log, next_slot) = (&t, &log, &next_slot);
            for me in 0..2u64 {
                s.spawn(move || {
                    let mut chunk = me;
                    while chunk < 100 {
                        t.wait_for(chunk);
                        let slot = next_slot.fetch_add(1, Ordering::Relaxed);
                        log[slot].store(chunk as usize, Ordering::Relaxed);
                        t.release_to(chunk + 1);
                        chunk += 2;
                    }
                });
            }
        });
        for (i, entry) in log.iter().enumerate() {
            assert_eq!(entry.load(Ordering::Relaxed), i, "chunks must execute in order");
        }
    }

    #[test]
    fn release_publishes_data_writes() {
        // The Release/Acquire pairing must carry non-atomic payload writes.
        let t = Token::new();
        let mut payload = 0u64;
        let p = &mut payload as *mut u64 as usize;
        std::thread::scope(|s| {
            s.spawn(|| {
                // SAFETY: exclusive access while holding chunk 0; the
                // Release store in release_to publishes the write.
                unsafe { *(p as *mut u64) = 42 };
                t.release_to(1);
            });
            s.spawn(|| {
                t.wait_for(1);
                // SAFETY: Acquire load observed chunk 1, so the write
                // above happens-before this read.
                let v = unsafe { *(p as *const u64) };
                assert_eq!(v, 42);
            });
        });
    }
}

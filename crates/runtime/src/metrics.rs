//! Phase-level observability for the real-thread runtime.
//!
//! `PhaseRecorder` (crate-private) is the always-on counter core behind
//! `RunStats::metrics`: each worker owns one recorder, and every phase
//! change (`PhaseRecorder::transition`) takes **a single timestamp**
//! that simultaneously closes the previous phase and opens the next one.
//! Per-phase totals therefore telescope — their sum equals the worker's
//! wall time *exactly*, by construction, with no gaps and no overlaps.
//! That identity is what the metrics property tests pin down.
//!
//! The opt-in event ring ([`Observe::events`]) additionally keeps every
//! phase interval as a timestamped [`PhaseEventNs`] (bounded by
//! [`Observe::max_events`] per worker), which surfaces in
//! `CascadeMetrics::events` with the same schema the simulator derives
//! from its `ChunkEvent` timeline.

use std::time::Instant;

use cascade_core::{LatencyStats, PhaseKind};

/// Observability options for a cascaded run. The counter core (per-phase
/// totals, handoff latencies, byte counts) is always on — this only
/// controls the optional timestamped event ring.
#[derive(Debug, Clone)]
pub struct Observe {
    /// Record a [`PhaseEventNs`] per phase interval (off by default: the
    /// ring costs one `Vec` push per transition).
    pub events: bool,
    /// Per-worker ring capacity; recording stops at the cap so a long
    /// run cannot exhaust memory. Events lost to the cap are *counted*
    /// and surfaced as `events_dropped` in the metrics report — a
    /// truncated timeline is flagged, never silent.
    pub max_events: usize,
}

impl Default for Observe {
    fn default() -> Self {
        Observe {
            events: false,
            max_events: 1 << 16,
        }
    }
}

impl Observe {
    /// Counter core plus the timestamped event ring.
    pub fn with_events() -> Self {
        Observe {
            events: true,
            ..Observe::default()
        }
    }
}

/// One phase interval of one worker, in integer nanoseconds since the
/// run origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseEventNs {
    /// What the worker was doing.
    pub kind: PhaseKind,
    /// Chunk the phase was about, when attributable.
    pub chunk: Option<u64>,
    /// Interval start (ns since the run origin).
    pub start_ns: u64,
    /// Interval end.
    pub end_ns: u64,
}

/// Exact integer count / sum / min / max of nanosecond samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NsStats {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (u128: immune to overflow).
    pub sum_ns: u128,
    /// Smallest sample (0 when `count == 0`).
    pub min_ns: u64,
    /// Largest sample (0 when `count == 0`).
    pub max_ns: u64,
}

impl NsStats {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min_ns = v;
            self.max_ns = v;
        } else {
            self.min_ns = self.min_ns.min(v);
            self.max_ns = self.max_ns.max(v);
        }
        self.count += 1;
        self.sum_ns += v as u128;
    }

    /// Convert to the cross-engine [`LatencyStats`] shape.
    pub fn to_latency(self) -> LatencyStats {
        LatencyStats {
            count: self.count,
            sum: self.sum_ns as f64,
            min: self.min_ns as f64,
            max: self.max_ns as f64,
        }
    }
}

fn kind_idx(k: PhaseKind) -> usize {
    match k {
        PhaseKind::Helper => 0,
        PhaseKind::Spin => 1,
        PhaseKind::Execute => 2,
        PhaseKind::Retry => 3,
        PhaseKind::Other => 4,
    }
}

/// Per-worker phase clock. See the module docs for the partition
/// guarantee.
pub(crate) struct PhaseRecorder {
    origin: Instant,
    started: Instant,
    last: Instant,
    kind: PhaseKind,
    chunk: Option<u64>,
    totals: [u128; 5],
    events: Vec<PhaseEventNs>,
    record_events: bool,
    max_events: usize,
    /// Phase intervals not recorded because the ring hit `max_events`.
    dropped: u64,
}

impl PhaseRecorder {
    /// Start the clock in [`PhaseKind::Other`] (worker startup).
    pub(crate) fn new(origin: Instant, obs: &Observe) -> Self {
        let now = Instant::now();
        PhaseRecorder {
            origin,
            started: now,
            last: now,
            kind: PhaseKind::Other,
            chunk: None,
            totals: [0; 5],
            events: Vec::new(),
            record_events: obs.events,
            max_events: obs.max_events,
            dropped: 0,
        }
    }

    /// Close the current phase and open `next`, with one shared
    /// timestamp. Returns `(boundary_ns, closed_ns)`: the boundary's
    /// offset from the run origin and the closed phase's duration.
    pub(crate) fn transition(&mut self, next: PhaseKind, chunk: Option<u64>) -> (u64, u64) {
        let now = Instant::now();
        let closed = now.duration_since(self.last).as_nanos();
        self.totals[kind_idx(self.kind)] += closed;
        if self.record_events {
            if self.events.len() < self.max_events {
                self.events.push(PhaseEventNs {
                    kind: self.kind,
                    chunk: self.chunk,
                    start_ns: self.last.duration_since(self.origin).as_nanos() as u64,
                    end_ns: now.duration_since(self.origin).as_nanos() as u64,
                });
            } else {
                // The ring is full: stop recording but *count* what was
                // lost, so a truncated timeline is visible in the report
                // instead of silently reading as complete.
                self.dropped += 1;
            }
        }
        self.last = now;
        self.kind = next;
        self.chunk = chunk;
        (
            now.duration_since(self.origin).as_nanos() as u64,
            closed as u64,
        )
    }

    /// Stop the clock and write the phase totals, wall time, and event
    /// ring into `stats`. The partition identity
    /// `helper + spin + exec + retry + other == wall` holds exactly.
    pub(crate) fn finish(
        mut self,
        mut stats: super::runner::ThreadStats,
    ) -> super::runner::ThreadStats {
        self.transition(PhaseKind::Other, None);
        stats.helper_ns = self.totals[kind_idx(PhaseKind::Helper)];
        stats.spin_ns = self.totals[kind_idx(PhaseKind::Spin)];
        stats.exec_ns = self.totals[kind_idx(PhaseKind::Execute)];
        stats.retry_ns = self.totals[kind_idx(PhaseKind::Retry)];
        stats.other_ns = self.totals[kind_idx(PhaseKind::Other)];
        stats.wall_ns = self.last.duration_since(self.started).as_nanos();
        stats.events = self.events;
        stats.events_dropped = self.dropped;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_stats_tracks_extremes_exactly() {
        let mut s = NsStats::default();
        s.record(7);
        s.record(3);
        s.record(11);
        assert_eq!((s.count, s.sum_ns, s.min_ns, s.max_ns), (3, 21, 3, 11));
        let l = s.to_latency();
        assert_eq!(l.count, 3);
        assert_eq!(l.sum, 21.0);
    }

    #[test]
    fn recorder_totals_partition_wall_exactly() {
        let origin = Instant::now();
        let mut rec = PhaseRecorder::new(origin, &Observe::with_events());
        rec.transition(PhaseKind::Helper, Some(0));
        std::thread::sleep(std::time::Duration::from_millis(1));
        rec.transition(PhaseKind::Spin, Some(0));
        rec.transition(PhaseKind::Execute, Some(0));
        std::thread::sleep(std::time::Duration::from_millis(1));
        let stats = rec.finish(Default::default());
        let sum = stats.helper_ns + stats.spin_ns + stats.exec_ns + stats.retry_ns + stats.other_ns;
        assert_eq!(sum, stats.wall_ns, "phases must tile the wall exactly");
        // The event ring tiles the same interval: contiguous, in order.
        assert!(!stats.events.is_empty());
        for w in stats.events.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "ring must be gap-free");
        }
    }

    #[test]
    fn event_ring_respects_capacity() {
        let origin = Instant::now();
        let obs = Observe {
            events: true,
            max_events: 2,
        };
        let mut rec = PhaseRecorder::new(origin, &obs);
        for i in 0..10 {
            rec.transition(PhaseKind::Helper, Some(i));
        }
        let stats = rec.finish(Default::default());
        assert_eq!(stats.events.len(), 2);
        // Every interval past the cap is counted, not silently lost:
        // the 10 transitions and the finish each close an interval
        // (the recorder opens one at construction), 2 kept, 9 dropped.
        assert_eq!(stats.events_dropped, 9);
    }
}

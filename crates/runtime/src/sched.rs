//! Plan-driven execution: run a [`TransformPlan`]'s partition on real
//! threads — DOALL sub-loops as a static range split across the worker
//! pool, DOACROSS sub-loops as a pipelined post/wait stage, and
//! `Sequential` residues cascaded with the existing token runtime.
//!
//! ## The DOACROSS post/wait protocol
//!
//! Chunks are assigned round-robin (chunk `c` belongs to worker
//! `c % nthreads`); each worker executes its own chunks in ascending
//! order, iteration by iteration. Every worker publishes a *committed
//! frontier* in a cache-line-padded `AtomicU64`: `posts[w] = f` means
//! every iteration owned by `w` below `f` is committed (workers commit
//! in order, so one counter suffices). The store is `Release`, issued
//! after each iteration's writes.
//!
//! Iteration `j` of a sub-loop with carried lag `L` may only start once
//! **every** iteration `≤ j − L` is committed (all carried dependences
//! span at least `L` iterations, so the furthest-back read of `j` is
//! satisfied). The gate spins with `Acquire` loads until, for every
//! worker `w`, `posts[w]` covers the last `w`-owned iteration at or
//! below `j − L` — checking only the single counter owning `j − L`
//! would admit `j` while an *older* chunk's tail is still uncommitted
//! (the classic DOACROSS off-by-a-chunk bug; the model in
//! [`crate::check`] catches exactly this family). The Release store /
//! Acquire load pair makes every committed iteration's writes visible
//! before the gated iteration reads them.
//!
//! Governance (cancel/deadline/budget) is polled inside gate spins and
//! at iteration boundaries; a watchdog window declares a stall when a
//! gate sees no frontier movement for the whole window. Faults roll
//! back the interrupted iteration via its undo journal and drain the
//! stage; the supervisor then salvages the uncommitted remainder
//! sequentially (ascending order satisfies every lag trivially).
//!
//! Sub-loop order is the plan's topological order, enforced with the
//! poisonable [`FtBarrier`]: the supervisor and all workers rendezvous
//! before and after every sub-loop, and a terminal error poisons the
//! barrier so the pool drains instead of hanging.
//!
//! ## Journaling in plan mode
//!
//! Cascaded chunks are journaled per chunk while exactly one thread
//! runs; planned stages execute concurrently, so a chunk-granular
//! capture could read bytes another worker is writing. Stages journal
//! only when the kernel's write footprints are *range-exact*
//! ([`RealKernel::journal_range_exact`]): each footprint covers exactly
//! the bytes the range writes, so disjoint ranges have disjoint
//! journals. DOALL stages then capture per chunk (independent
//! iterations ⇒ disjoint chunk footprints); DOACROSS stages capture per
//! iteration (concurrent iterations sit closer than `L`, aliasing
//! write sets at least `L` apart, so a capture never races a writer).
//! Journals are retained for the whole stage: a cancelled stage is
//! rolled back entry-by-entry in descending order, restoring the exact
//! stage-entry state so `committed_iters` stays a clean prefix of the
//! fissioned sequence. Unjournalable stages fall back to *completing*
//! on cancellation (mirroring the cascade's unjournalable chunk rule).

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cascade_analyze::plan::{Schedule, TransformPlan};
use cascade_core::CascadeMetrics;
use cascade_trace::LoopSpec;

use crate::barrier::{BarrierOutcome, FtBarrier};
use crate::ckpt::CkptPolicy;
use crate::govern::{CancelKind, CancelState, CancelToken, Governor, RunConfig};
use crate::kernel::RealKernel;
use crate::metrics::NsStats;
use crate::runner::{try_run_governed, FaultEvent, RunError, RunStats, ThreadStats};
use crate::token::lock_recover;

/// A committed-iteration frontier on its own cache line, so DOACROSS
/// post stores never false-share with a neighbour's gate spins.
// Atomics justification (scripts/lint_atomics.sh): the post/wait
// protocol publishes each worker's committed frontier with `Release`
// stores and reads it with `Acquire` loads — the pair is the
// happens-before edge that makes committed writes visible to gated
// readers. No Relaxed orderings are used in this module.
#[repr(align(128))]
#[derive(Debug, Default)]
struct PadCounter(AtomicU64);

/// Materialize a plan's partition as one standalone [`LoopSpec`] per
/// sub-loop: every pure read is kept by every sub-loop (the interpreter
/// folds the shared read set into the accumulator for each statement),
/// while each write-mode anchor lands only in its own sub-loop, all in
/// original `refs` order so the accumulator fold is unchanged. Hoisting
/// is cleared — a fissioned residue runs as a plain loop.
pub fn fission_specs(spec: &LoopSpec, plan: &TransformPlan) -> Vec<LoopSpec> {
    plan.partition
        .iter()
        .enumerate()
        .map(|(g, sub)| {
            let anchors: Vec<usize> = sub
                .statements
                .iter()
                .filter_map(|&s| plan.statements[s].anchor)
                .collect();
            let mut refs = Vec::new();
            for (k, r) in spec.refs.iter().enumerate() {
                if r.mode.is_read_only() || anchors.contains(&k) {
                    let mut r = r.clone();
                    r.hoistable = false;
                    refs.push(r);
                }
            }
            LoopSpec {
                name: format!("{} [fission {g}]", spec.name),
                iters: spec.iters,
                refs,
                compute: spec.compute,
                hoistable_compute: 0.0,
                hoist_result_bytes: 0,
            }
        })
        .collect()
}

/// The deterministic *most-adversarial* DOACROSS replay order: simulate
/// the post/wait protocol (round-robin chunks of `iters_per_chunk`,
/// in-order execution within each worker) and, at every step, execute
/// the **largest** admissible next iteration across all workers.
///
/// The gate admits iteration `j` once every iteration `≤ j − window`
/// is committed. `window` equal to the sub-loop's carried lag is the
/// legal protocol: the returned order is then provably
/// dependence-respecting, and replaying it must be bitwise-identical
/// to ascending order. `window = lag + 1` demands one predecessor
/// commit *fewer* — the "wait for `lag − 1`" off-by-one — and the
/// greedy-max scheduler immediately exploits it, yielding an order
/// that runs a reader before its writer. The lag-violation regression
/// test replays both through the real interpreter.
pub fn doacross_order(iters: u64, iters_per_chunk: u64, workers: usize, window: u64) -> Vec<u64> {
    assert!(workers >= 1 && iters_per_chunk >= 1);
    let n = workers as u64;
    // Each worker's next owned iteration; `u64::MAX` = exhausted.
    let next_chunk = |w: u64, from: u64| -> u64 {
        // Smallest chunk index >= from owned by w.
        let mut c = from;
        while c % n != w {
            c += 1;
        }
        c
    };
    let mut next: Vec<u64> = (0..n)
        .map(|w| {
            let c = next_chunk(w, 0);
            if c * iters_per_chunk < iters {
                c * iters_per_chunk
            } else {
                u64::MAX
            }
        })
        .collect();
    let mut committed = vec![false; iters as usize];
    // Frontier: all iterations < frontier committed.
    let mut frontier = 0u64;
    let mut order = Vec::with_capacity(iters as usize);
    while order.len() < iters as usize {
        // Largest admissible next iteration wins — the schedule a
        // too-lax gate allows and an adversarial machine would pick.
        let mut pick: Option<(u64, usize)> = None;
        for (w, &j) in next.iter().enumerate() {
            if j == u64::MAX {
                continue;
            }
            let admissible = j < window || frontier > j - window;
            if admissible && pick.is_none_or(|(pj, _)| j > pj) {
                pick = Some((j, w));
            }
        }
        let (j, w) = pick.expect("the smallest uncommitted iteration is always admissible");
        order.push(j);
        committed[j as usize] = true;
        while frontier < iters && committed[frontier as usize] {
            frontier += 1;
        }
        // Advance worker w to its next owned iteration.
        let cur_chunk = j / iters_per_chunk;
        let nj = j + 1;
        next[w] = if nj < iters && nj / iters_per_chunk == cur_chunk {
            nj
        } else {
            let c = next_chunk(w as u64, cur_chunk + 1);
            if c * iters_per_chunk < iters {
                c * iters_per_chunk
            } else {
                u64::MAX
            }
        };
    }
    order
}

/// Per-worker statistics of one planned (DOALL or DOACROSS) stage.
#[derive(Debug, Default, Clone)]
pub struct PlannedThread {
    /// Chunks this worker fully committed.
    pub chunks: u64,
    /// Nanoseconds inside kernel execution.
    pub exec_ns: u128,
    /// Nanoseconds blocked in post/wait gate spins (0 for DOALL).
    pub stall_ns: u128,
    /// Whole wall time of this worker's stage share.
    pub wall_ns: u128,
    /// Gate evaluations whose dependence iteration lay in a *different*
    /// chunk — the structural post/wait count, independent of timing.
    pub post_waits: u64,
    /// Bytes captured into retained undo journals.
    pub journal_bytes: u64,
    /// Nanoseconds capturing (and, on fault, rolling back) journals.
    pub journal_ns: u128,
    /// Journal entries rolled back after a mid-body fault.
    pub rollbacks: u64,
    /// Per-chunk execution durations (count == `chunks`).
    pub chunk_exec: NsStats,
}

/// Statistics of one executed sub-loop of the plan.
#[derive(Debug, Clone)]
pub struct SubLoopStats {
    /// Index in the plan's partition (= execution order).
    pub index: usize,
    /// The schedule the sub-loop ran under.
    pub schedule: Schedule,
    /// Iterations executed (the full loop trip count).
    pub iters: u64,
    /// Chunks committed by the worker pool (or the token runtime for a
    /// `Sequential` sub-loop). Salvaged iterations are not chunked.
    pub chunks: u64,
    /// Structural post/wait gate count (DOACROSS stages only).
    pub post_waits: u64,
    /// Nanoseconds all workers spent blocked in gate spins.
    pub post_wait_stall_ns: u128,
    /// Whether a fault degraded this sub-loop to sequential salvage.
    pub degraded: bool,
    /// Per-worker stage statistics (empty for `Sequential` sub-loops).
    pub threads: Vec<PlannedThread>,
    /// The token runtime's stats for a `Sequential` sub-loop.
    pub run: Option<RunStats>,
}

/// Whole-run statistics of a plan-driven execution.
#[derive(Debug, Clone)]
pub struct PlannedStats {
    /// Wall-clock duration across all sub-loops.
    pub elapsed: Duration,
    /// Total iterations executed (sub-loop count × trip count).
    pub iters: u64,
    /// Total chunks committed across all sub-loops.
    pub chunks: u64,
    /// Per-sub-loop breakdown, in execution order.
    pub sub_loops: Vec<SubLoopStats>,
    /// Abnormal events observed, in order.
    pub faults: Vec<FaultEvent>,
    /// Whether any sub-loop fell back to sequential salvage.
    pub degraded: bool,
    /// Cancel latency in nanoseconds (0 when never cancelled).
    pub cancel_latency_ns: u64,
    /// Peak bytes reserved from the run's memory budget.
    pub budget_high_water: u64,
}

fn merge_ns(into: &mut NsStats, from: &NsStats) {
    if from.count == 0 {
        return;
    }
    if into.count == 0 {
        *into = *from;
        return;
    }
    into.count += from.count;
    into.sum_ns += from.sum_ns;
    into.min_ns = into.min_ns.min(from.min_ns);
    into.max_ns = into.max_ns.max(from.max_ns);
}

impl PlannedStats {
    /// Total structural post/wait gate count across all sub-loops.
    pub fn post_waits(&self) -> u64 {
        self.sub_loops.iter().map(|s| s.post_waits).sum()
    }

    /// Total nanoseconds blocked in post/wait gate spins.
    pub fn post_wait_stall_ns(&self) -> u128 {
        self.sub_loops.iter().map(|s| s.post_wait_stall_ns).sum()
    }

    /// The observability report, in the same [`CascadeMetrics`] schema
    /// as cascaded and simulated runs: planned stages map execution to
    /// the Execute phase and gate spins to the Spin phase (everything
    /// else is Other, keeping the exact phase partition), `Sequential`
    /// sub-loops merge the token runtime's per-thread stats, and the
    /// planned side counters (`sub_loops`, `post_waits`,
    /// `post_wait_stall`) ride alongside.
    pub fn metrics(&self) -> CascadeMetrics {
        let nthreads = self
            .sub_loops
            .iter()
            .map(|s| {
                s.threads
                    .len()
                    .max(s.run.as_ref().map_or(0, |r| r.threads.len()))
            })
            .max()
            .unwrap_or(0);
        let mut threads = vec![ThreadStats::default(); nthreads];
        for sub in &self.sub_loops {
            for (t, pt) in sub.threads.iter().enumerate() {
                let ts = &mut threads[t];
                ts.chunks += pt.chunks;
                ts.exec_ns += pt.exec_ns;
                ts.spin_ns += pt.stall_ns;
                // Carve the remainder as Other so the exact partition
                // helper+spin+exec+retry+other == wall holds by
                // construction.
                let other = pt.wall_ns.saturating_sub(pt.exec_ns + pt.stall_ns);
                ts.other_ns += other;
                ts.wall_ns += pt.exec_ns + pt.stall_ns + other;
                ts.journal_bytes += pt.journal_bytes;
                ts.journal_ns += pt.journal_ns;
                ts.rollbacks += pt.rollbacks;
                merge_ns(&mut ts.chunk_exec, &pt.chunk_exec);
            }
            if let Some(run) = &sub.run {
                for (t, s) in run.threads.iter().enumerate() {
                    let ts = &mut threads[t];
                    ts.chunks += s.chunks;
                    ts.helper_iters += s.helper_iters;
                    ts.helper_complete += s.helper_complete;
                    ts.exec_ns += s.exec_ns;
                    ts.helper_ns += s.helper_ns;
                    ts.spin_ns += s.spin_ns;
                    ts.retry_ns += s.retry_ns;
                    ts.other_ns += s.other_ns;
                    ts.wall_ns += s.wall_ns;
                    ts.jump_outs += s.jump_outs;
                    ts.horizon_stalls += s.horizon_stalls;
                    ts.packed_bytes += s.packed_bytes;
                    ts.prefetched_bytes += s.prefetched_bytes;
                    ts.handoffs += s.handoffs;
                    ts.rollbacks += s.rollbacks;
                    ts.journal_bytes += s.journal_bytes;
                    ts.journal_ns += s.journal_ns;
                    ts.ckpt_count += s.ckpt_count;
                    ts.ckpt_bytes += s.ckpt_bytes;
                    ts.ckpt_ns += s.ckpt_ns;
                    ts.verified_chunks += s.verified_chunks;
                    ts.verify_ns += s.verify_ns;
                    ts.events_dropped += s.events_dropped;
                    merge_ns(&mut ts.takeover, &s.takeover);
                    merge_ns(&mut ts.chunk_exec, &s.chunk_exec);
                }
            }
        }
        let rs = RunStats {
            elapsed: self.elapsed,
            chunks: self.chunks,
            iters: self.iters,
            threads,
            degraded: self.degraded,
            faults: self.faults.clone(),
            retries: 0,
            quarantined: 0,
            cancel_latency_ns: self.cancel_latency_ns,
            budget_high_water: self.budget_high_water,
            scrubs: self
                .sub_loops
                .iter()
                .filter_map(|s| s.run.as_ref())
                .map(|r| r.scrubs)
                .sum(),
        };
        let mut m = rs.metrics();
        m.sub_loops = self.sub_loops.len() as u64;
        m.post_waits = self.post_waits();
        m.post_wait_stall = self.post_wait_stall_ns() as f64;
        m
    }
}

/// A retained undo-journal entry of a planned stage.
struct JournalEntry {
    range: Range<u64>,
    buf: Vec<u8>,
    reserved: u64,
}

/// First fault observed in a stage (first cause wins).
struct StageFault {
    thread: u64,
    chunk: u64,
    message: String,
    /// The interrupted range could not be rolled back and the kernel
    /// makes no fail-stop promise: partial writes may remain.
    torn: bool,
    /// `Some(waited)` for a watchdog-declared gate stall.
    stall: Option<Duration>,
}

/// What one worker hands the supervisor at a stage's end barrier.
#[derive(Default)]
struct WorkerStage {
    committed: Vec<Range<u64>>,
    journals: Vec<JournalEntry>,
    events: Vec<FaultEvent>,
    stats: PlannedThread,
}

/// Shared per-stage coordination state, reset by the supervisor between
/// sub-loops (the barrier provides the happens-before edge).
struct StageShared {
    halt: AtomicBool,
    /// A journaling-enabled stage hit an uncapturable range: the
    /// stage-wide rollback guarantee is void, cancel must complete
    /// instead.
    unjournaled: AtomicBool,
    posts: Vec<PadCounter>,
    fault: Mutex<Option<StageFault>>,
    slots: Vec<Mutex<Option<WorkerStage>>>,
}

impl StageShared {
    fn new(n: usize) -> Self {
        StageShared {
            halt: AtomicBool::new(false),
            unjournaled: AtomicBool::new(false),
            posts: (0..n).map(|_| PadCounter::default()).collect(),
            fault: Mutex::new(None),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn record_fault(&self, f: StageFault) {
        let mut slot = lock_recover(&self.fault);
        if slot.is_none() {
            *slot = Some(f);
        }
        self.halt.store(true, Ordering::Release);
    }
}

fn chunk_range(c_idx: u64, c: u64, iters: u64) -> Range<u64> {
    (c_idx * c)..((c_idx + 1) * c).min(iters)
}

/// The frontier `posts[w]` must reach before every `w`-owned iteration
/// `≤ d` is known committed, under round-robin chunk ownership.
fn gate_target(w: u64, d: u64, c: u64, n: u64, iters: u64) -> u64 {
    let e = d / c; // chunk containing the dependence iteration
    if e % n == w {
        return d + 1;
    }
    // Largest chunk below e owned by w; a full chunk must be committed.
    let delta = (e % n + n - w) % n; // 1..n
    if e < delta {
        0
    } else {
        ((e - delta + 1) * c).min(iters)
    }
}

/// Worker context for one planned stage.
struct StageCtx<'a> {
    me: usize,
    nthreads: usize,
    shared: &'a StageShared,
    cfg: &'a RunConfig,
    journaling: bool,
}

impl StageCtx<'_> {
    /// Poll governance at a boundary: returns `true` when the stage
    /// must halt (cancelled externally or by a peer's fault).
    fn should_halt(&self) -> bool {
        if self.shared.halt.load(Ordering::Acquire) {
            return true;
        }
        if self.cfg.cancel.is_cancelled() {
            self.cfg.cancel.note_observed();
            self.shared.halt.store(true, Ordering::Release);
            return true;
        }
        false
    }

    /// Capture the undo journal for `range`, metering the buffer
    /// against the run's memory budget. `None` means the stage must
    /// halt (the reservation was refused and the run is now cancelled).
    ///
    /// # Safety
    ///
    /// `range` must be owned by this worker under the stage's schedule
    /// (DOALL chunk or DOACROSS iteration), so no concurrent writer
    /// overlaps the range-exact footprint being read.
    unsafe fn capture<K: RealKernel>(
        &self,
        kernel: &K,
        range: Range<u64>,
        ws: &mut WorkerStage,
    ) -> Option<bool> {
        if !self.journaling {
            return Some(false);
        }
        let t0 = Instant::now();
        let mut buf = Vec::new();
        // SAFETY: forwarded under the caller's ownership guarantee.
        let ok = unsafe { kernel.journal_capture(range.clone(), &mut buf) };
        ws.stats.journal_ns += t0.elapsed().as_nanos();
        if !ok {
            // The stage can no longer promise a full rollback.
            self.shared.unjournaled.store(true, Ordering::Release);
            return Some(false);
        }
        let bytes = buf.len() as u64;
        if !self.cfg.budget.try_reserve(bytes) {
            self.cfg.cancel.cancel_with(
                CancelKind::Budget {
                    needed: bytes,
                    limit: self.cfg.budget.limit().unwrap_or(0),
                },
                "journal reservation refused by the memory budget",
            );
            self.cfg.cancel.note_observed();
            self.shared.halt.store(true, Ordering::Release);
            return None;
        }
        ws.stats.journal_bytes += bytes;
        ws.journals.push(JournalEntry {
            range,
            buf,
            reserved: bytes,
        });
        Some(true)
    }

    /// Roll back the most recent journal entry (the interrupted range)
    /// and drop it from the retained set. Returns the restored byte
    /// count when a rollback happened.
    ///
    /// # Safety
    ///
    /// Caller still "holds" the interrupted range: no other worker
    /// executes or journals it, and its range-exact footprint is
    /// disjoint from every concurrently active range.
    unsafe fn rollback_last<K: RealKernel>(
        &self,
        kernel: &K,
        ws: &mut WorkerStage,
        range: &Range<u64>,
    ) -> Option<u64> {
        let last = ws.journals.last()?;
        if last.range != *range {
            return None;
        }
        let entry = ws.journals.pop().expect("just observed");
        let bytes = entry.buf.len() as u64;
        let t0 = Instant::now();
        // SAFETY: forwarded under the caller's ownership guarantee.
        unsafe { kernel.journal_rollback(entry.range.clone(), &entry.buf) };
        ws.stats.journal_ns += t0.elapsed().as_nanos();
        ws.stats.rollbacks += 1;
        self.cfg.budget.release(entry.reserved);
        Some(bytes)
    }
}

/// One worker's share of a DOALL stage: a contiguous slice of the
/// global chunk list, executed with no synchronization beyond the
/// stage barriers.
fn run_doall<K: RealKernel>(ctx: &StageCtx<'_>, kernel: &K) -> WorkerStage {
    let mut ws = WorkerStage::default();
    let t_stage = Instant::now();
    let iters = kernel.iters();
    let c = ctx.cfg.runner.iters_per_chunk;
    let m = iters.div_ceil(c);
    let n = ctx.nthreads as u64;
    let t = ctx.me as u64;
    let lo = t * m / n;
    let hi = (t + 1) * m / n;
    for c_idx in lo..hi {
        if ctx.should_halt() {
            break;
        }
        let range = chunk_range(c_idx, c, iters);
        // SAFETY: chunk ranges are disjoint across workers; the
        // journaling gate guarantees range-exact footprints.
        let journaled = match unsafe { ctx.capture(kernel, range.clone(), &mut ws) } {
            Some(j) => j,
            None => break, // budget refusal cancelled the run
        };
        let t0 = Instant::now();
        let r = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: no other worker executes this range (static
            // split); previous stages' writes are visible through the
            // stage-start barrier.
            unsafe { kernel.execute(range.clone()) }
        }));
        let exec = t0.elapsed().as_nanos();
        match r {
            Ok(()) => {
                ws.stats.exec_ns += exec;
                ws.stats.chunks += 1;
                ws.stats.chunk_exec.record(exec as u64);
                ws.committed.push(range);
            }
            Err(payload) => {
                ws.stats.exec_ns += exec;
                let rolled = if journaled {
                    // SAFETY: the interrupted chunk is still exclusively
                    // ours; its footprint is disjoint from live chunks.
                    unsafe { ctx.rollback_last(kernel, &mut ws, &range) }
                } else {
                    None
                };
                if let Some(bytes) = rolled {
                    ws.events.push(FaultEvent::ChunkRolledBack {
                        thread: t,
                        chunk: c_idx,
                        bytes,
                    });
                }
                let torn = rolled.is_none() && !kernel.panics_before_mutation();
                ctx.shared.record_fault(StageFault {
                    thread: t,
                    chunk: c_idx,
                    message: crate::runner::panic_message(payload.as_ref()),
                    torn,
                    stall: None,
                });
                break;
            }
        }
    }
    ws.stats.wall_ns = t_stage.elapsed().as_nanos();
    ws
}

/// One worker's share of a DOACROSS stage: its round-robin chunks,
/// iteration-at-a-time, gated on the committed frontiers of every
/// worker and posting its own frontier with `Release` after each
/// iteration.
fn run_doacross<K: RealKernel>(ctx: &StageCtx<'_>, kernel: &K, lag: u64) -> WorkerStage {
    let mut ws = WorkerStage::default();
    let t_stage = Instant::now();
    let iters = kernel.iters();
    let c = ctx.cfg.runner.iters_per_chunk;
    let m = iters.div_ceil(c);
    let n = ctx.nthreads as u64;
    let me = ctx.me as u64;
    let watchdog = ctx.cfg.tolerance.watchdog;
    'chunks: for c_idx in (me..m).step_by(ctx.nthreads.max(1)) {
        let range = chunk_range(c_idx, c, iters);
        let mut chunk_exec = 0u128;
        let mut committed_to = range.start;
        for j in range.clone() {
            if ctx.should_halt() {
                break;
            }
            // Gate: every iteration <= j - lag must be committed.
            if j >= lag {
                let d = j - lag;
                if d / c != c_idx {
                    ws.stats.post_waits += 1;
                }
                let mut waited: Option<Instant> = None;
                let mut window_start = Instant::now();
                let mut last_snapshot: Option<u64> = None;
                let mut spins = 0u32;
                'gate: loop {
                    let mut satisfied = true;
                    let mut snapshot = 0u64;
                    for w in 0..n {
                        let target = gate_target(w, d, c, n, iters);
                        let have = ctx.shared.posts[w as usize].0.load(Ordering::Acquire);
                        snapshot = snapshot.wrapping_add(have);
                        if have < target {
                            satisfied = false;
                        }
                    }
                    if satisfied {
                        break 'gate;
                    }
                    // Any frontier movement resets the watchdog window;
                    // a whole window with frozen frontiers is a stall.
                    if last_snapshot != Some(snapshot) {
                        last_snapshot = Some(snapshot);
                        window_start = Instant::now();
                    }
                    if waited.is_none() {
                        waited = Some(Instant::now());
                    }
                    spins = spins.wrapping_add(1);
                    if spins.is_multiple_of(64) {
                        if ctx.should_halt() {
                            break 'gate;
                        }
                        std::thread::yield_now();
                        if let Some(w) = watchdog {
                            if window_start.elapsed() >= w {
                                ctx.shared.record_fault(StageFault {
                                    thread: me,
                                    chunk: c_idx,
                                    message: format!(
                                        "post/wait gate for iteration {j} saw no frontier \
                                         movement for {w:?}"
                                    ),
                                    torn: false,
                                    stall: Some(w),
                                });
                                break 'gate;
                            }
                        }
                    }
                    std::hint::spin_loop();
                }
                if let Some(t0) = waited {
                    ws.stats.stall_ns += t0.elapsed().as_nanos();
                }
                if ctx.shared.halt.load(Ordering::Acquire) {
                    break;
                }
            }
            let it = j..j + 1;
            // SAFETY: the gate proves every aliasing predecessor
            // committed (visible via Acquire); successors within `lag`
            // have disjoint single-iteration footprints.
            let journaled = match unsafe { ctx.capture(kernel, it.clone(), &mut ws) } {
                Some(jn) => jn,
                None => break,
            };
            let t0 = Instant::now();
            let r = catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: iteration j is exclusively ours; the gate's
                // Acquire loads give happens-before from every
                // committed dependence.
                unsafe { kernel.execute(it.clone()) }
            }));
            let exec = t0.elapsed().as_nanos();
            ws.stats.exec_ns += exec;
            chunk_exec += exec;
            match r {
                Ok(()) => {
                    // Publish the committed frontier: everything below
                    // j + 1 that we own is now visible.
                    ctx.shared.posts[ctx.me].0.store(j + 1, Ordering::Release);
                    committed_to = j + 1;
                }
                Err(payload) => {
                    let rolled = if journaled {
                        // SAFETY: iteration j is still exclusively ours.
                        unsafe { ctx.rollback_last(kernel, &mut ws, &it) }
                    } else {
                        None
                    };
                    if let Some(bytes) = rolled {
                        ws.events.push(FaultEvent::ChunkRolledBack {
                            thread: me,
                            chunk: c_idx,
                            bytes,
                        });
                    }
                    let torn = rolled.is_none() && !kernel.panics_before_mutation();
                    ctx.shared.record_fault(StageFault {
                        thread: me,
                        chunk: c_idx,
                        message: crate::runner::panic_message(payload.as_ref()),
                        torn,
                        stall: None,
                    });
                    break;
                }
            }
        }
        if committed_to > range.start {
            ws.committed.push(range.start..committed_to);
        }
        if committed_to == range.end {
            ws.stats.chunks += 1;
            ws.stats.chunk_exec.record(chunk_exec as u64);
        } else {
            break 'chunks;
        }
    }
    ws.stats.wall_ns = t_stage.elapsed().as_nanos();
    ws
}

/// Execute `gaps` (ascending) on the supervisor thread with per-gap
/// undo capture and a single retry, so a second pending injected fault
/// degrades to a typed error instead of unwinding through the scope.
/// Ascending order satisfies every carried lag trivially: all of a
/// gap's dependences are committed or salvaged before it runs.
fn salvage_ranges<K: RealKernel>(
    kernel: &K,
    gaps: &[Range<u64>],
    supervisor: u64,
    iters_per_chunk: u64,
    faults: &mut Vec<FaultEvent>,
) -> Result<(), RunError> {
    for gap in gaps {
        let mut attempts = 0u32;
        loop {
            let mut buf = Vec::new();
            // SAFETY: every worker joined the end barrier — the
            // supervisor is the only executor, so a transient capture
            // of the gap's footprint cannot race anything.
            let captured = unsafe { kernel.journal_capture(gap.clone(), &mut buf) };
            let r = catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: exclusive access (see above).
                unsafe { kernel.execute(gap.clone()) }
            }));
            match r {
                Ok(()) => break,
                Err(payload) => {
                    let chunk = gap.start / iters_per_chunk;
                    faults.push(FaultEvent::WorkerPanicked {
                        thread: supervisor,
                        chunk,
                        message: crate::runner::panic_message(payload.as_ref()),
                    });
                    if captured {
                        // SAFETY: exclusive access (see above).
                        unsafe { kernel.journal_rollback(gap.clone(), &buf) };
                        faults.push(FaultEvent::ChunkRolledBack {
                            thread: supervisor,
                            chunk,
                            bytes: buf.len() as u64,
                        });
                    } else if !kernel.panics_before_mutation() {
                        return Err(RunError::WorkerPanicked {
                            thread: supervisor,
                            chunk,
                        });
                    }
                    attempts += 1;
                    if attempts > 1 {
                        return Err(RunError::WorkerPanicked {
                            thread: supervisor,
                            chunk,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Ascending complement of `committed` within `0..iters`.
fn uncommitted_gaps(committed: &mut [Range<u64>], iters: u64) -> Vec<Range<u64>> {
    committed.sort_by_key(|r| r.start);
    let mut gaps = Vec::new();
    let mut cur = 0u64;
    for r in committed.iter() {
        if r.start > cur {
            gaps.push(cur..r.start);
        }
        cur = cur.max(r.end);
    }
    if cur < iters {
        gaps.push(cur..iters);
    }
    gaps
}

fn cancel_error_planned(cancel: &CancelToken, committed_iters: u64) -> RunError {
    match cancel.state() {
        Some(CancelState {
            kind: CancelKind::Deadline { after },
            ..
        }) => RunError::DeadlineExceeded {
            deadline: after,
            committed_iters,
        },
        Some(CancelState {
            kind: CancelKind::Budget { needed, limit },
            ..
        }) => RunError::BudgetExceeded {
            needed,
            limit,
            committed_iters,
        },
        Some(CancelState {
            kind: CancelKind::User,
            reason,
        }) => RunError::Cancelled {
            reason,
            committed_iters,
        },
        None => RunError::Cancelled {
            reason: "cancelled".into(),
            committed_iters,
        },
    }
}

/// Add the planned-run committed prefix to a sequential sub-run's
/// governance error (its `committed_iters` is loop-local).
fn offset_committed(e: RunError, prior: u64) -> RunError {
    match e {
        RunError::Cancelled {
            reason,
            committed_iters,
        } => RunError::Cancelled {
            reason,
            committed_iters: committed_iters + prior,
        },
        RunError::DeadlineExceeded {
            deadline,
            committed_iters,
        } => RunError::DeadlineExceeded {
            deadline,
            committed_iters: committed_iters + prior,
        },
        RunError::BudgetExceeded {
            needed,
            limit,
            committed_iters,
        } => RunError::BudgetExceeded {
            needed,
            limit,
            committed_iters: committed_iters + prior,
        },
        other => other,
    }
}

/// Execute a [`TransformPlan`]'s partition on real threads: one kernel
/// per sub-loop (in partition order, e.g. from [`fission_specs`]
/// materialized through [`crate::SpecProgram`]), with `Parallel`
/// sub-loops run as DOALL, `DoAcross` sub-loops as pipelined post/wait
/// stages, and `Sequential` sub-loops cascaded via
/// [`try_run_governed`]. The result is bitwise-identical to running
/// the sub-loops sequentially in plan order — which the plan's replay
/// oracle has already proved bitwise-identical to the original loop.
///
/// Governance composes: the shared [`CancelToken`] and deadline drain
/// the pool at post/wait and chunk boundaries with journaled rollback
/// of the in-flight sub-loop, so governance errors carry a clean
/// `committed_iters` prefix **of the fissioned sequence** (completed
/// sub-loops count their full trip; the cancelled sub-loop is rolled
/// back to its start, or completed when unjournalable). Faults inside
/// a stage roll back the interrupted range and degrade the sub-loop to
/// sequential salvage under a salvaging/retrying
/// [`Tolerance`](crate::runner::Tolerance), or
/// surface as typed errors under fail-fast.
///
/// Durable checkpoints are not supported in plan mode
/// (`InvalidConfig`); helper policies are inapplicable (planned stages
/// have no token waits) and ignored.
pub fn try_run_planned<K: RealKernel>(
    kernels: &[K],
    plan: &TransformPlan,
    cfg: &RunConfig,
) -> Result<PlannedStats, RunError> {
    cfg.try_validate()?;
    if cfg.runner.nthreads < 1 {
        return Err(RunError::InvalidConfig("need at least one thread".into()));
    }
    if cfg.runner.iters_per_chunk < 1 {
        return Err(RunError::InvalidConfig("chunks must be non-empty".into()));
    }
    if cfg.runner.poll_batch < 1 {
        return Err(RunError::InvalidConfig(
            "poll batch must be positive".into(),
        ));
    }
    if !matches!(cfg.ckpt, CkptPolicy::Off) {
        return Err(RunError::InvalidConfig(
            "durable checkpoints are not supported in plan mode; use --mode cascade".into(),
        ));
    }
    if kernels.is_empty() {
        return Err(RunError::InvalidConfig("no sub-loop kernels".into()));
    }
    if kernels.len() != plan.partition.len() {
        return Err(RunError::InvalidConfig(format!(
            "{} kernels for a partition of {} sub-loops",
            kernels.len(),
            plan.partition.len()
        )));
    }
    for (g, sub) in plan.partition.iter().enumerate() {
        if let Schedule::DoAcross { lag } = sub.schedule {
            if lag < 2 {
                return Err(RunError::InvalidConfig(format!(
                    "sub-loop {g}: DoAcross lag {lag} < 2 (lag 1 is Sequential)"
                )));
            }
        }
    }

    let _governor = cfg.deadline.map(|d| Governor::arm(&cfg.cancel, d));
    let n = cfg.runner.nthreads;
    let shared = StageShared::new(n);
    let barrier = FtBarrier::new(n + 1);
    let schedules: Vec<Schedule> = plan.partition.iter().map(|s| s.schedule).collect();
    let journaling: Vec<bool> = kernels.iter().map(|k| k.journal_range_exact()).collect();
    let start = Instant::now();

    std::thread::scope(|scope| {
        for me in 0..n {
            let shared = &shared;
            let barrier = &barrier;
            let schedules = &schedules;
            let journaling = &journaling;
            scope.spawn(move || {
                for (g, sched) in schedules.iter().enumerate() {
                    if barrier.wait() == BarrierOutcome::Poisoned {
                        return;
                    }
                    let ctx = StageCtx {
                        me,
                        nthreads: n,
                        shared,
                        cfg,
                        journaling: journaling[g],
                    };
                    let ws = match sched {
                        Schedule::Sequential => WorkerStage::default(),
                        Schedule::Parallel => {
                            let r = catch_unwind(AssertUnwindSafe(|| run_doall(&ctx, &kernels[g])));
                            r.unwrap_or_else(|payload| {
                                shared.record_fault(StageFault {
                                    thread: me as u64,
                                    chunk: 0,
                                    message: crate::runner::panic_message(payload.as_ref()),
                                    torn: true,
                                    stall: None,
                                });
                                WorkerStage::default()
                            })
                        }
                        Schedule::DoAcross { lag } => {
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                run_doacross(&ctx, &kernels[g], *lag)
                            }));
                            r.unwrap_or_else(|payload| {
                                shared.record_fault(StageFault {
                                    thread: me as u64,
                                    chunk: 0,
                                    message: crate::runner::panic_message(payload.as_ref()),
                                    torn: true,
                                    stall: None,
                                });
                                WorkerStage::default()
                            })
                        }
                    };
                    *lock_recover(&shared.slots[me]) = Some(ws);
                    if barrier.wait() == BarrierOutcome::Poisoned {
                        return;
                    }
                }
            });
        }

        // ------------------------- supervisor -------------------------
        let mut sub_stats: Vec<SubLoopStats> = Vec::with_capacity(kernels.len());
        let mut faults: Vec<FaultEvent> = Vec::new();
        let mut degraded = false;
        let mut prior_iters = 0u64;

        let fail = |e: RunError| -> Result<PlannedStats, RunError> {
            barrier.poison();
            Err(e)
        };

        for (g, sched) in schedules.iter().enumerate() {
            let kernel = &kernels[g];
            let iters = kernel.iters();
            // Governance check between sub-loops.
            if cfg.cancel.is_cancelled() {
                cfg.cancel.note_observed();
                return fail(cancel_error_planned(&cfg.cancel, prior_iters));
            }
            // Reset stage state; the start barrier publishes it.
            for p in &shared.posts {
                p.0.store(0, Ordering::Release);
            }
            shared.halt.store(false, Ordering::Release);
            shared.unjournaled.store(false, Ordering::Release);
            *lock_recover(&shared.fault) = None;
            if barrier.wait() == BarrierOutcome::Poisoned {
                return Err(RunError::InvalidConfig("barrier poisoned".into()));
            }

            if matches!(sched, Schedule::Sequential) {
                // Cascade the residue with the token runtime. The
                // planned-level governor owns the deadline; checkpoints
                // stay off (validated above).
                let sub_cfg = RunConfig {
                    runner: cfg.runner.clone(),
                    tolerance: cfg.tolerance.clone(),
                    deadline: None,
                    budget: cfg.budget.clone(),
                    cancel: cfg.cancel.clone(),
                    observe: Default::default(),
                    ckpt: CkptPolicy::Off,
                    ckpt_sink: None,
                    // Verification rides the token cascade: the residue's
                    // handoffs are verified; DOALL/DOACROSS stages have no
                    // sequential handoff to checksum.
                    verify: cfg.verify,
                };
                let res = try_run_governed(kernel, &sub_cfg);
                if barrier.wait() == BarrierOutcome::Poisoned {
                    return Err(RunError::InvalidConfig("barrier poisoned".into()));
                }
                // Drain worker slots (they are empty for Sequential).
                for s in &shared.slots {
                    lock_recover(s).take();
                }
                match res {
                    Ok(stats) => {
                        degraded |= stats.degraded;
                        faults.extend(stats.faults.iter().cloned());
                        sub_stats.push(SubLoopStats {
                            index: g,
                            schedule: *sched,
                            iters,
                            chunks: stats.chunks,
                            post_waits: 0,
                            post_wait_stall_ns: 0,
                            degraded: stats.degraded,
                            threads: Vec::new(),
                            run: Some(stats),
                        });
                        prior_iters += iters;
                        continue;
                    }
                    Err(e) => return fail(offset_committed(e, prior_iters)),
                }
            }

            // Parallel / DoAcross: the pool executed while we waited.
            if barrier.wait() == BarrierOutcome::Poisoned {
                return Err(RunError::InvalidConfig("barrier poisoned".into()));
            }
            let mut stages: Vec<WorkerStage> = shared
                .slots
                .iter()
                .map(|s| lock_recover(s).take().unwrap_or_default())
                .collect();
            let fault = lock_recover(&shared.fault).take();
            let mut committed: Vec<Range<u64>> =
                stages.iter().flat_map(|ws| ws.committed.clone()).collect();
            // Worker-local events (rollbacks) precede the outcome ones.
            for ws in &mut stages {
                faults.append(&mut ws.events);
            }
            let release_stage_journals = |stages: &mut Vec<WorkerStage>| {
                for ws in stages.iter_mut() {
                    for e in ws.journals.drain(..) {
                        cfg.budget.release(e.reserved);
                    }
                }
            };

            let mut stage_degraded = false;
            if let Some(f) = fault {
                let typed = match f.stall {
                    Some(waited) => {
                        faults.push(FaultEvent::StallDeclared {
                            chunk: f.chunk,
                            waited,
                        });
                        RunError::Stalled {
                            chunk: f.chunk,
                            waited,
                        }
                    }
                    None => {
                        faults.push(FaultEvent::WorkerPanicked {
                            thread: f.thread,
                            chunk: f.chunk,
                            message: f.message.clone(),
                        });
                        RunError::WorkerPanicked {
                            thread: f.thread,
                            chunk: f.chunk,
                        }
                    }
                };
                if f.torn {
                    release_stage_journals(&mut stages);
                    return fail(typed);
                }
                let tol = &cfg.tolerance;
                if !(tol.salvage || tol.retry.is_some()) {
                    release_stage_journals(&mut stages);
                    return fail(typed);
                }
                // Sequential salvage of the uncommitted remainder, in
                // ascending order: every remaining iteration's
                // dependences are committed or salvaged before it.
                let gaps = uncommitted_gaps(&mut committed, iters);
                let salvaged: u64 = gaps.iter().map(|r| r.end - r.start).sum();
                if salvaged > 0 {
                    let from_chunk = gaps[0].start / cfg.runner.iters_per_chunk;
                    if let Err(e) = salvage_ranges(
                        kernel,
                        &gaps,
                        n as u64,
                        cfg.runner.iters_per_chunk,
                        &mut faults,
                    ) {
                        release_stage_journals(&mut stages);
                        return fail(e);
                    }
                    faults.push(FaultEvent::Salvaged {
                        from_chunk,
                        iters: salvaged,
                    });
                }
                stage_degraded = true;
                degraded = true;
            } else if cfg.cancel.is_cancelled() {
                cfg.cancel.note_observed();
                if journaling[g] && !shared.unjournaled.load(Ordering::Acquire) {
                    // Roll the whole stage back, newest range first:
                    // the arena returns to the exact sub-loop entry
                    // state, and committed_iters stays the prefix of
                    // completed sub-loops.
                    let mut entries: Vec<JournalEntry> = stages
                        .iter_mut()
                        .flat_map(|ws| ws.journals.drain(..))
                        .collect();
                    entries.sort_by_key(|e| e.range.start);
                    for e in entries.iter().rev() {
                        // SAFETY: all workers joined via the barrier;
                        // exclusive access, descending restore order.
                        unsafe { kernel.journal_rollback(e.range.clone(), &e.buf) };
                    }
                    for e in entries {
                        cfg.budget.release(e.reserved);
                    }
                    return fail(cancel_error_planned(&cfg.cancel, prior_iters));
                }
                // Unjournalable stage: complete it instead (the
                // cascade's unjournalable-chunk rule, lifted to a
                // stage), then report the cancel with the stage
                // counted as committed.
                let gaps = uncommitted_gaps(&mut committed, iters);
                if let Err(e) = salvage_ranges(
                    kernel,
                    &gaps,
                    n as u64,
                    cfg.runner.iters_per_chunk,
                    &mut faults,
                ) {
                    release_stage_journals(&mut stages);
                    return fail(e);
                }
                release_stage_journals(&mut stages);
                return fail(cancel_error_planned(&cfg.cancel, prior_iters + iters));
            }

            release_stage_journals(&mut stages);
            let threads: Vec<PlannedThread> = stages.iter().map(|ws| ws.stats.clone()).collect();
            sub_stats.push(SubLoopStats {
                index: g,
                schedule: *sched,
                iters,
                chunks: threads.iter().map(|t| t.chunks).sum(),
                post_waits: threads.iter().map(|t| t.post_waits).sum(),
                post_wait_stall_ns: threads.iter().map(|t| t.stall_ns).sum(),
                degraded: stage_degraded,
                threads,
                run: None,
            });
            prior_iters += iters;
        }

        let chunks = sub_stats.iter().map(|s| s.chunks).sum();
        Ok(PlannedStats {
            elapsed: start.elapsed(),
            iters: prior_iters,
            chunks,
            sub_loops: sub_stats,
            faults,
            degraded,
            cancel_latency_ns: cfg.cancel.latency().map_or(0, |d| d.as_nanos() as u64),
            budget_high_water: cfg.budget.high_water(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doall_split_covers_every_chunk_exactly_once() {
        for n in 1..=5usize {
            for m in [0u64, 1, 3, 7, 16] {
                let mut seen = vec![0u32; m as usize];
                for t in 0..n as u64 {
                    let lo = t * m / n as u64;
                    let hi = (t + 1) * m / n as u64;
                    for c in lo..hi {
                        seen[c as usize] += 1;
                    }
                }
                assert!(seen.iter().all(|&s| s == 1), "n={n} m={m}: {seen:?}");
            }
        }
    }

    #[test]
    fn gate_target_covers_every_owned_iteration_at_or_below_d() {
        let (c, n, iters) = (4u64, 3u64, 40u64);
        for d in 0..iters {
            for w in 0..n {
                let target = gate_target(w, d, c, n, iters);
                // target is the smallest frontier proving every w-owned
                // iteration <= d committed: check by brute force.
                let owned_at_or_below: Vec<u64> = (0..=d).filter(|i| (i / c) % n == w).collect();
                let needed = owned_at_or_below.last().map_or(0, |&i| i + 1);
                assert!(
                    target >= needed,
                    "w={w} d={d}: target {target} < needed {needed}"
                );
                // And target never demands an iteration above iters or
                // beyond what in-order execution can satisfy.
                assert!(target <= iters.max(d + 1), "w={w} d={d}: target {target}");
            }
        }
    }

    #[test]
    fn doacross_order_with_the_legal_window_is_a_permutation_respecting_lag() {
        for (iters, c, n, lag) in [(24u64, 4u64, 3usize, 2u64), (17, 3, 2, 3), (12, 6, 4, 2)] {
            let order = doacross_order(iters, c, n, lag);
            assert_eq!(order.len(), iters as usize);
            let mut pos = vec![usize::MAX; iters as usize];
            for (at, &j) in order.iter().enumerate() {
                assert_eq!(pos[j as usize], usize::MAX, "iteration {j} twice");
                pos[j as usize] = at;
            }
            // Every dependence at distance >= lag is respected.
            for j in lag..iters {
                for d in lag..=j {
                    assert!(
                        pos[(j - d) as usize] < pos[j as usize],
                        "iters={iters} c={c} n={n} lag={lag}: {} after {j}",
                        j - d
                    );
                }
            }
        }
    }

    #[test]
    fn doacross_order_with_one_fewer_commit_demanded_breaks_the_lag() {
        // window = lag + 1 demands one predecessor commit fewer; the
        // greedy-max schedule then runs iteration `lag` before 0.
        let (iters, c, n, lag) = (16u64, 3u64, 2usize, 3u64);
        let order = doacross_order(iters, c, n, lag + 1);
        let mut pos = vec![usize::MAX; iters as usize];
        for (at, &j) in order.iter().enumerate() {
            pos[j as usize] = at;
        }
        let violated = (lag..iters).any(|j| pos[(j - lag) as usize] > pos[j as usize]);
        assert!(
            violated,
            "the lax window must admit a lag violation: {order:?}"
        );
    }
}

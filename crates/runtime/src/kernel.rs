//! The kernel contract between a real loop body and the cascade runner.

use std::ops::Range;

/// A loop body executable under cascaded execution on real threads.
///
/// Implementations typically keep their mutable state behind an
/// `UnsafeCell` (see [`crate::interp::SpecProgram`]): the runner guarantees
/// that `execute`/`execute_packed` calls are serialized by the token
/// protocol, with Release/Acquire edges between consecutive chunks, so the
/// implementation may soundly mutate shared state during those calls.
pub trait RealKernel: Sync {
    /// Total iteration count of the loop.
    fn iters(&self) -> u64;

    /// Execute iterations `range` of the loop body.
    ///
    /// # Safety
    ///
    /// The caller must guarantee exclusivity: no other `execute` /
    /// `execute_packed` call may be concurrent with this one, and all
    /// previous chunks' effects must be visible (happens-before). The
    /// cascade runner establishes both via [`crate::token::Token`].
    unsafe fn execute(&self, range: Range<u64>);

    /// Prefetch the operands of iteration `i` into this thread's caches.
    /// Called concurrently with other threads' execution phases; must not
    /// perform demand reads of data any loop iteration writes.
    fn prefetch_iter(&self, i: u64) {
        let _ = i;
    }

    /// Bytes of operand data one [`RealKernel::prefetch_iter`] call
    /// covers — the unit behind the prefetch-byte accounting in the
    /// observability report (`RunStats::metrics`). The default (0) means
    /// the kernel does not report prefetch volume; kernels overriding
    /// `prefetch_iter` should return the per-iteration footprint their
    /// hints actually touch.
    fn prefetch_bytes_per_iter(&self) -> u64 {
        0
    }

    /// Append the packed (sequential-buffer) form of iteration `i`'s
    /// read-only operands to `buf`. Returns `false` when this kernel does
    /// not support restructuring (the runner then falls back to prefetch).
    /// Must read only data that no iteration of the loop writes.
    fn pack_iter(&self, i: u64, buf: &mut Vec<u8>) -> bool {
        let _ = (i, buf);
        false
    }

    /// Execute iterations `range` consuming `buf`, which holds exactly the
    /// bytes appended by `pack_iter` for each iteration of `range` in
    /// order. Results must be bitwise identical to [`RealKernel::execute`]
    /// over the same range.
    ///
    /// # Safety
    ///
    /// Same exclusivity contract as [`RealKernel::execute`].
    unsafe fn execute_packed(&self, range: Range<u64>, buf: &[u8]) {
        let _ = buf;
        // SAFETY: forwarded under the caller's own exclusivity guarantee.
        unsafe { self.execute(range) }
    }

    /// The helper-horizon constraint of this kernel: `Some(lag)` means a
    /// helper (prefetch or pack) may only touch iteration `i` while
    /// `i < committed + lag`, where `committed` is the first iteration of
    /// the chunk the token currently licenses (everything below it is
    /// executed and visible through the token's Release/Acquire pair).
    /// `None` means helpers are unrestricted.
    ///
    /// This is how loops with loop-carried reads (lag ≥ 1 flow
    /// dependences, e.g. a first-order recurrence) run safely on real
    /// threads: the helper never reads a value the concurrent execution
    /// phase could still produce. Verdicts come from the `cascade-analyze`
    /// static analysis (see `docs/ANALYSIS.md`).
    fn helper_horizon(&self) -> Option<u64> {
        None
    }

    /// Whether any panic raised by `execute` / `execute_packed` is
    /// guaranteed to happen *before* the call mutates shared state
    /// (fail-stop panics). The runner's salvage path re-executes an
    /// interrupted chunk from its start, which is only bitwise-sound when
    /// the interrupted attempt left no partial writes behind — either via
    /// this promise, or because the runner rolled the chunk's undo
    /// journal back (see [`RealKernel::journal_capture`]). Kernels that
    /// can make neither guarantee keep the conservative default and
    /// recovery is refused after a mid-body panic (see
    /// `docs/ROBUSTNESS.md`).
    fn panics_before_mutation(&self) -> bool {
        false
    }

    /// Capture the undo journal of chunk `range`: replace `buf`'s
    /// contents with the *current* bytes of every location
    /// `execute(range)` / `execute_packed(range, ..)` may write — the
    /// chunk's write-set, typically bounded by the `cascade-analyze`
    /// footprints (`cascade_analyze::write_set`). Returns `false` when
    /// this kernel cannot bound its write-set (the chunk is
    /// unjournalable and the runner falls back to the fail-stop gate).
    /// The call must only read; the chunk body has not run yet.
    ///
    /// # Safety
    ///
    /// Same exclusivity contract as [`RealKernel::execute`]: the caller
    /// holds the chunk's claim, so no concurrent writer exists while the
    /// snapshot is taken.
    unsafe fn journal_capture(&self, range: Range<u64>, buf: &mut Vec<u8>) -> bool {
        let _ = (range, buf);
        false
    }

    /// Whether this kernel's undo-journal footprints are *range-exact*:
    /// `journal_capture(range, ..)` reads exactly the bytes
    /// `execute(range)` writes — no padding bytes, no gap bytes between
    /// strided elements — so disjoint iteration ranges always have
    /// disjoint journal footprints. The plan-driven scheduler
    /// ([`crate::sched::try_run_planned`]) only journals DOALL and
    /// DOACROSS stages under this promise: concurrent workers capture
    /// and write disjoint ranges, and a non-exact footprint (e.g. an
    /// interval over a stride-2 write whose gap bytes another chunk
    /// owns) would make the capture itself a data race. The
    /// conservative default (`false`) disables stage journaling; the
    /// stage then falls back to the fail-stop gate on faults and to
    /// *completing* on cancellation.
    fn journal_range_exact(&self) -> bool {
        false
    }

    /// Restore the bytes captured by a prior successful
    /// `journal_capture(range, buf)`, returning the chunk's write-set to
    /// its exact pre-chunk state bitwise. The runner calls this after an
    /// execution-phase panic, while still holding the chunk's claim, so
    /// the rollback happens-before any re-execution claim.
    ///
    /// # Safety
    ///
    /// Same exclusivity contract as [`RealKernel::execute`]; `buf` must
    /// be the unmodified output of a `journal_capture` call over the
    /// same `range` on this kernel, taken before the interrupted
    /// execution attempt.
    unsafe fn journal_rollback(&self, range: Range<u64>, buf: &[u8]) {
        let _ = (range, buf);
        unreachable!("journal_rollback without a successful journal_capture");
    }

    /// Re-execute the *committed* chunk `range` against a journaled
    /// private view and return the resulting write-set bytes in
    /// journal layout (the byte order of [`RealKernel::journal_capture`]).
    /// `pre_image` is the undo journal captured over the same `range`
    /// before the chunk ran: the replay seeds a private overlay of the
    /// chunk's write footprint from it, executes every iteration of
    /// `range` routing all footprint loads/stores through the overlay
    /// (loads outside the footprint read shared memory, which the chunk
    /// never writes), and returns the overlay. Shared memory is **never
    /// written** — this is the verification read path of the
    /// silent-data-corruption defense (`docs/ROBUSTNESS.md`).
    ///
    /// Returns `None` when this kernel cannot replay (the conservative
    /// default; verification then degrades to digest comparison).
    ///
    /// # Safety
    ///
    /// `range` must be committed (no concurrent `execute` may overlap its
    /// write footprint) and `pre_image` must be the unmodified output of
    /// a `journal_capture(range, ..)` taken before the chunk executed.
    unsafe fn replay_footprint(&self, range: Range<u64>, pre_image: &[u8]) -> Option<Vec<u8>> {
        let _ = (range, pre_image);
        None
    }

    /// Corrupt one byte of shared memory by XOR — the fault-injection hook
    /// behind `FaultKind::SilentBitFlip`, never called by the runtime
    /// itself. With `in_footprint`, `offset` indexes (mod the footprint
    /// size) into the journal-layout write footprint of `range`, so the
    /// flip lands on bytes the chunk legitimately wrote; otherwise the
    /// flip targets a byte *outside* the loop's whole write footprint
    /// (starting the search at `offset` mod the arena size). Returns
    /// `false` when this kernel cannot target the requested scope (no
    /// resolvable footprint, or no byte outside it).
    ///
    /// # Safety
    ///
    /// Same exclusivity contract as [`RealKernel::execute`]: the caller
    /// holds the chunk's claim, so no concurrent reader can observe the
    /// torn write.
    unsafe fn corrupt_byte(
        &self,
        range: Range<u64>,
        offset: u64,
        xor: u8,
        in_footprint: bool,
    ) -> bool {
        let _ = (range, offset, xor, in_footprint);
        false
    }

    /// An `fnv64` digest over the bytes *outside* the loop's whole write
    /// footprint — the arena scrubber of the silent-data-corruption
    /// defense. Any drift between two scrubs brackets an out-of-footprint
    /// corruption: no iteration of the loop may write there. `None` (the
    /// default) when the kernel cannot bound its footprint; the scrubber
    /// is then disabled.
    ///
    /// # Safety
    ///
    /// The caller must guarantee quiescence: no `execute` /
    /// `execute_packed` call may be concurrent with the scrub (the
    /// runner scrubs from the supervisor, outside worker lifetimes).
    unsafe fn scrub_digest(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::UnsafeCell;

    /// A minimal kernel: out[i] = a[i] + b[i].
    struct AddKernel {
        a: Vec<f64>,
        b: Vec<f64>,
        out: UnsafeCell<Vec<f64>>,
    }
    // SAFETY: `out` is only mutated through `execute`, whose contract
    // requires external serialization.
    unsafe impl Sync for AddKernel {}

    impl RealKernel for AddKernel {
        fn iters(&self) -> u64 {
            self.a.len() as u64
        }
        unsafe fn execute(&self, range: Range<u64>) {
            // SAFETY: contract gives exclusive access.
            let out = unsafe { &mut *self.out.get() };
            for i in range {
                out[i as usize] = self.a[i as usize] + self.b[i as usize];
            }
        }
    }

    #[test]
    fn default_packed_execution_falls_back_to_execute() {
        let k = AddKernel {
            a: vec![1.0; 8],
            b: vec![2.0; 8],
            out: UnsafeCell::new(vec![0.0; 8]),
        };
        assert!(!k.pack_iter(0, &mut Vec::new()));
        // SAFETY: single-threaded test, trivially exclusive.
        unsafe { k.execute_packed(0..8, &[]) };
        let out = unsafe { &*k.out.get() };
        assert!(out.iter().all(|&v| v == 3.0));
    }
}

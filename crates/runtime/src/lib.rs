//! # cascade-rt — cascaded execution on real threads
//!
//! The paper's runtime system, for real shared-memory machines: rotating
//! token-serialized execution of one sequential loop across `std::thread`
//! workers, with helper phases that prefetch (x86-64 `prefetcht0`
//! intrinsics) or pack read-only operands into thread-local sequential
//! buffers while waiting.
//!
//! This container exposes a single CPU, so the runtime cannot demonstrate
//! the paper's wall-clock speedups here; the quantitative reproduction
//! lives in the `cascade-core` simulators. What the runtime demonstrates —
//! and what its tests pin down — is the *correctness* of the protocol:
//! cascaded execution of order-sensitive loops (floating-point
//! read-modify-write scatters) is bitwise identical to sequential
//! execution for any thread count, chunk size, and helper policy, because
//! exactly one thread executes at a time and token passing forms
//! Release/Acquire edges between consecutive chunks.
//!
//! ```
//! use cascade_rt::{run_cascaded, run_sequential, RtPolicy, RunnerConfig, SpecProgram};
//! use cascade_synth::{Synth, Variant};
//!
//! let s = Synth::build(1 << 14, Variant::Dense, 7);
//! let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
//! let kernel = prog.kernel(0);
//! let stats = run_cascaded(&kernel, &RunnerConfig {
//!     nthreads: 2, iters_per_chunk: 1024, policy: RtPolicy::Restructure, poll_batch: 64,
//! });
//! assert_eq!(stats.chunks, 16);
//! ```

//! ## Fault tolerance
//!
//! The runtime also has a failure model (described in
//! `docs/ROBUSTNESS.md`): bounded token waits with a progress watchdog,
//! token poisoning with structured diagnostics, typed errors via
//! [`try_run_cascaded`] / [`try_run_cascaded_sequence`], deterministic
//! fault injection ([`FaultyKernel`]), and a graceful sequential fallback
//! that salvages a faulted run into a bitwise-correct result.
//!
//! ## In-cascade recovery
//!
//! Above salvage sits a recovery ladder ([`Tolerance::retry`], see
//! [`runner`] docs): a faulted chunk is re-executed on a healthy worker,
//! the failed thread is quarantined in a [`HealthRegistry`] (heartbeats,
//! strikes with exponential backoff), and its remaining chunks are
//! remapped across survivors so the run finishes cascaded instead of
//! `degraded`. The token/poison/retry protocol backing this is modeled as
//! an explicit state machine in [`check`] and exhaustively explored with
//! the `interleave` shim — the eight invariants (exactly-one executor,
//! no lost or resurrected token, first-cause-wins poisoning, no chunk
//! re-executed after mutation, no torn state observable after rollback,
//! cancellation never observable as torn state, exactly one terminal
//! outcome per run, checkpoint capture happens-before token handoff)
//! hold on every reachable interleaving.
//!
//! ## Run governance
//!
//! A *healthy* run can be stopped too ([`govern`]): a shared
//! [`CancelToken`] checked at chunk-claim and helper-pass boundaries, a
//! whole-run deadline that arms a governor thread, and a [`MemBudget`]
//! metering journal and pack arenas. [`try_run_governed`] /
//! [`try_run_governed_sequence`] drain cancelled runs with bitwise-clean
//! state and return typed errors carrying the exact sequential resume
//! point (`committed_iters`).
//!
//! ## Plan-driven execution
//!
//! The [`sched`] module executes a `cascade-analyze`
//! [`TransformPlan`](cascade_analyze::plan::TransformPlan) instead of
//! ignoring it: [`try_run_planned`] runs each `Parallel` sub-loop as a
//! DOALL static range split, each `DoAcross { lag }` sub-loop as a
//! pipelined post/wait stage over padded per-worker committed-iteration
//! counters (Release/Acquire publication), and cascades `Sequential`
//! residues with the token runtime — in the plan's topological order,
//! fenced by the poisonable [`FtBarrier`]. Governance, journaled
//! rollback, and sequential salvage compose per stage; the DOACROSS
//! post/wait protocol is modeled and exhaustively explored in
//! [`check`].
//!
//! ## Durable runs
//!
//! The [`ckpt`] module makes the resume point survive process death: the
//! leader's commit path persists crash-consistent checkpoints (full base
//! arena snapshot plus write-set deltas from the PR 5 journaling
//! machinery, all fsync'd and atomically renamed) under a [`CkptPolicy`]
//! on [`RunConfig`]. A SIGKILLed run restores bitwise via
//! [`ckpt::load`] / [`Checkpoint::into_program`] and finishes from
//! `committed_iters` — `cascade chaos --kill` gates this end to end.
//!
//! ## Verified execution
//!
//! Crashes announce themselves; silent data corruption does not. Under a
//! [`VerifyPolicy`] (on [`RunConfig`]) every chunk commit publishes an
//! `fnv64` digest of the chunk's analyzer-computed write footprint with
//! the token handoff, and the claimant of the next chunk *verifies* its
//! predecessor — digest compare always, journaled private re-execution
//! under `EveryChunk`/`Sampled` — before its own execution phase begins,
//! so corruption is detected online, never after the run. A confirmed
//! mismatch triggers the blame-and-recover protocol: a sequential
//! tiebreak re-execution convicts the guilty worker (corruption strikes
//! in [`HealthRegistry`], roster quarantine on repeat), the chunk is
//! rolled back via its undo journal and repaired in place, and the run
//! continues bitwise-correct. Between loops an arena scrubber checksums
//! bytes *outside* every footprint. The protocol's ordering claims are
//! model-checked ([`check`]): verification happens-before downstream
//! commit visibility, a corrupted chunk is never part of a committed
//! prefix, and blame never quarantines an innocent worker under a
//! single-fault assumption. `cascade chaos --corrupt` gates detection
//! end to end; `VerifyPolicy::Off` (the default) costs one never-true
//! branch per commit and claim.

#![warn(missing_docs)]

pub mod barrier;
pub mod check;
pub mod ckpt;
pub mod fault;
pub mod govern;
pub mod health;
pub mod interp;
pub mod kernel;
pub mod metrics;
pub mod prefetch;
pub mod runner;
pub mod sched;
pub mod token;

pub use barrier::{BarrierOutcome, FtBarrier};
pub use ckpt::{Checkpoint, CkptError, CkptMeta, CkptPolicy, CkptRun, CkptSink, CkptWriter};
pub use fault::{FaultKind, FaultPlan, FaultyKernel};
pub use govern::{CancelKind, CancelState, CancelToken, MemBudget, RunConfig, VerifyPolicy};
pub use health::{HealthConfig, HealthRegistry, StrikeVerdict};
pub use interp::{SpecKernel, SpecProgram};
pub use kernel::RealKernel;
pub use metrics::{NsStats, Observe, PhaseEventNs};
pub use prefetch::{prefetch_line, prefetch_range, PREFETCH_STRIDE};
pub use runner::{
    run_cascaded, run_cascaded_sequence, run_sequential, try_run_cascaded,
    try_run_cascaded_observed, try_run_cascaded_sequence, try_run_cascaded_sequence_observed,
    try_run_governed, try_run_governed_sequence, FaultEvent, RetryAbandon, RetryPolicy, RtPolicy,
    RunError, RunStats, RunnerConfig, ThreadStats, Tolerance,
};
pub use sched::{
    doacross_order, fission_specs, try_run_planned, PlannedStats, PlannedThread, SubLoopStats,
};
pub use token::{PoisonCause, Token, TokenView, WaitOutcome, EXEC_BIT, POISONED};

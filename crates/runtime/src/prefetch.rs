//! Cache-line prefetching for helper phases on real hardware.
//!
//! On x86-64 this issues `prefetcht0` through the stable
//! `core::arch::x86_64::_mm_prefetch` intrinsic. A prefetch is
//! architecturally a hint with no language-level read, so it is safe to
//! issue on lines another thread is concurrently writing — exactly what a
//! cascaded helper does when it warms up a scatter target while the token
//! holder is still executing. On other architectures the helper degrades
//! to a no-op rather than risk a racy demand load.

/// Cache line size assumed for prefetch striding (both Table-1 machines
/// use 32-byte L1 lines; modern x86 uses 64 — we stride by the smaller to
/// cover both).
pub const PREFETCH_STRIDE: usize = 32;

/// Hint the hardware to pull the line containing `addr` into the cache
/// hierarchy (temporal, all levels).
#[inline]
pub fn prefetch_line(addr: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: _mm_prefetch is a hint; it performs no dereference and is
    // defined for any address value.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(addr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = addr;
    }
}

/// Prefetch every line of `[addr, addr + bytes)`.
#[inline]
pub fn prefetch_range(addr: *const u8, bytes: usize) {
    let mut p = addr;
    let end = addr.wrapping_add(bytes);
    while p < end {
        prefetch_line(p);
        p = p.wrapping_add(PREFETCH_STRIDE);
    }
    // Make sure the final (possibly partial) line is covered.
    if bytes > 0 {
        prefetch_line(end.wrapping_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_harmless_on_valid_memory() {
        let data = vec![0u8; 4096];
        prefetch_range(data.as_ptr(), data.len());
        prefetch_line(data.as_ptr());
    }

    #[test]
    fn prefetch_zero_bytes_is_a_no_op() {
        let data = [0u8; 8];
        prefetch_range(data.as_ptr(), 0);
    }

    #[test]
    fn prefetch_does_not_fault_on_dangling_hint() {
        // Prefetch is a hint: issuing it for an arbitrary (non-dereferenced)
        // address must not crash. We use a misaligned in-bounds pointer
        // rather than a wild one to stay within documented behaviour.
        let data = [0u8; 64];
        prefetch_line(data.as_ptr().wrapping_add(63));
    }
}

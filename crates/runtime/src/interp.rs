//! Real execution of workload descriptions: a [`SpecProgram`] interprets
//! the same [`LoopSpec`]s the simulator models, against the real bytes of
//! an [`Arena`] — so the runtime, the simulator, and the tests all agree
//! on what a loop *is*.
//!
//! ## Semantics
//!
//! A `LoopSpec` describes reference streams, not arithmetic, so the
//! interpreter fixes a deterministic body for every loop:
//!
//! * 8-byte loops (f64): fold every read operand into an accumulator
//!   (`acc = acc * 0.5 + v`, in `refs` order); each `Write` ref stores
//!   `acc * 0.9 + 0.1`; each `Modify` ref stores
//!   `old * 0.25 + acc * 0.5 + 0.0625`.
//! * 4-byte loops (u32): the same shape with wrapping integer arithmetic.
//!
//! Because floating-point addition is not associative and `Modify` is a
//! read-modify-write, the result is sensitive to iteration *order* — which
//! is precisely what cascaded execution must preserve. Bitwise equality
//! with a sequential run is therefore a strong correctness check of the
//! token protocol.
//!
//! ## Safety model
//!
//! The arena lives in an `UnsafeCell`. Mutation happens only inside
//! [`RealKernel::execute`]/[`RealKernel::execute_packed`], whose contract
//! (enforced by [`crate::runner`]'s token protocol) guarantees exclusivity
//! and happens-before edges. Helper-phase reads (`pack_iter`) touch only
//! arrays the loop never writes — validated at construction — and
//! `prefetch_iter` issues only architectural hints.

use std::cell::UnsafeCell;
use std::collections::HashSet;
use std::ops::Range;

use cascade_trace::{Arena, ArrayId, LoopSpec, Mode, Pattern, Workload};

use crate::kernel::RealKernel;
use crate::prefetch::prefetch_range;

/// A runnable program: workload description + real backing bytes.
pub struct SpecProgram {
    workload: Workload,
    arena: UnsafeCell<Arena>,
}

// SAFETY: all mutation of `arena` flows through `RealKernel::execute*`,
// whose contract requires external serialization with happens-before
// edges; concurrent helper reads are restricted (by `validate_loop`) to
// arrays the running loop never writes.
unsafe impl Sync for SpecProgram {}

impl SpecProgram {
    /// Wrap a workload and its arena, validating that every loop is safe
    /// to run under concurrent helpers (see module docs).
    pub fn new(workload: Workload, arena: Arena) -> Self {
        workload.validate();
        assert_eq!(
            arena.len() as u64,
            workload.space.extent(),
            "arena does not match the workload's address space"
        );
        for spec in &workload.loops {
            Self::validate_loop(spec);
        }
        SpecProgram {
            workload,
            arena: UnsafeCell::new(arena),
        }
    }

    fn validate_loop(spec: &LoopSpec) {
        let written: HashSet<ArrayId> = spec
            .refs
            .iter()
            .filter(|r| r.mode.writes())
            .map(|r| r.array)
            .collect();
        let mut width = None;
        for r in &spec.refs {
            match width {
                None => width = Some(r.bytes),
                Some(w) => assert_eq!(
                    w, r.bytes,
                    "{}: interpreter requires uniform operand width",
                    spec.name
                ),
            }
            assert!(
                r.bytes == 4 || r.bytes == 8,
                "{}: interpreter supports 4- or 8-byte operands",
                spec.name
            );
            if r.mode.is_read_only() {
                assert!(
                    !written.contains(&r.array),
                    "{}: array of read-only ref {} is also written; helpers would race",
                    spec.name,
                    r.name
                );
            }
            if let Pattern::Indirect { index, .. } = r.pattern {
                assert!(
                    !written.contains(&index),
                    "{}: index array of {} is written by the same loop",
                    spec.name,
                    r.name
                );
            }
        }
    }

    /// The wrapped workload (loops, space, indices).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// A kernel for loop `idx`, runnable by [`crate::runner::run_cascaded`].
    pub fn kernel(&self, idx: usize) -> SpecKernel<'_> {
        SpecKernel {
            prog: self,
            spec: &self.workload.loops[idx],
        }
    }

    /// Number of loops.
    pub fn num_loops(&self) -> usize {
        self.workload.loops.len()
    }

    /// Checksum of the arena. Takes `&mut self` so the borrow checker
    /// proves no kernel (and hence no concurrent run) is outstanding.
    pub fn checksum(&mut self) -> u64 {
        self.arena.get_mut().checksum()
    }

    /// Exclusive access to the arena (same `&mut` soundness argument).
    pub fn arena_mut(&mut self) -> &mut Arena {
        self.arena.get_mut()
    }

    /// Consume the program, returning the arena.
    pub fn into_arena(self) -> Arena {
        self.arena.into_inner()
    }

    #[inline]
    fn base(&self) -> *mut u8 {
        // SAFETY of callers: dereferencing derived pointers follows the
        // kernel contract; taking the base address itself is harmless.
        unsafe { (*self.arena.get()).as_ptr() as *mut u8 }
    }
}

/// Decode the next `N`-byte operand at offset `cur` of the packed buffer,
/// reporting underrun with offset/length context instead of a bare slice
/// or `try_into` panic — a corrupted or truncated packed buffer then says
/// exactly *where* it ran dry.
fn take_bytes<const N: usize>(buf: &[u8], cur: usize) -> [u8; N] {
    match buf
        .get(cur..cur + N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
    {
        Some(bytes) => bytes,
        None => panic!(
            "packed buffer underrun: need {N} bytes at offset {cur}, buffer holds {} bytes",
            buf.len()
        ),
    }
}

/// One loop of a [`SpecProgram`], as a [`RealKernel`].
pub struct SpecKernel<'p> {
    prog: &'p SpecProgram,
    spec: &'p LoopSpec,
}

impl<'p> SpecKernel<'p> {
    /// The spec this kernel interprets.
    pub fn spec(&self) -> &LoopSpec {
        self.spec
    }

    /// Resolve the element index of `r` at iteration `i`, reading indirect
    /// indices from the *arena* (real memory, like real generated code
    /// would).
    ///
    /// # Safety
    ///
    /// Index arrays are validated to never be written by this loop, so the
    /// raw read cannot race with the executor.
    #[inline]
    unsafe fn elem_index(&self, pattern: &Pattern, i: u64) -> u64 {
        match *pattern {
            Pattern::Affine { base, stride } => (base + stride * i as i64) as u64,
            Pattern::Indirect {
                index,
                ibase,
                istride,
            } => {
                let pos = (ibase + istride * i as i64) as u64;
                let addr = self.prog.workload.space.addr(index, pos);
                // SAFETY: in-bounds (space layout) and never written by
                // this loop (validated), so no data race.
                unsafe { (self.prog.base().add(addr as usize) as *const u32).read() as u64 }
            }
        }
    }

    /// # Safety: in-bounds read of a location not concurrently written
    /// (either we hold the token, or the array is loop-read-only).
    #[inline]
    unsafe fn load_f64(&self, array: ArrayId, elem: u64) -> f64 {
        let addr = self.prog.workload.space.addr(array, elem);
        unsafe { (self.prog.base().add(addr as usize) as *const f64).read() }
    }

    /// # Safety: exclusive in-bounds write (token held).
    #[inline]
    unsafe fn store_f64(&self, array: ArrayId, elem: u64, v: f64) {
        let addr = self.prog.workload.space.addr(array, elem);
        unsafe { (self.prog.base().add(addr as usize) as *mut f64).write(v) }
    }

    /// # Safety: as [`Self::load_f64`].
    #[inline]
    unsafe fn load_u32(&self, array: ArrayId, elem: u64) -> u32 {
        let addr = self.prog.workload.space.addr(array, elem);
        unsafe { (self.prog.base().add(addr as usize) as *const u32).read() }
    }

    /// # Safety: as [`Self::store_f64`].
    #[inline]
    unsafe fn store_u32(&self, array: ArrayId, elem: u64, v: u32) {
        let addr = self.prog.workload.space.addr(array, elem);
        unsafe { (self.prog.base().add(addr as usize) as *mut u32).write(v) }
    }

    fn is_f64(&self) -> bool {
        self.spec.refs[0].bytes == 8
    }

    /// # Safety: token held (mutates through writes).
    unsafe fn exec_iter_f64(&self, i: u64) {
        let mut acc = 0.0f64;
        for r in &self.spec.refs {
            if r.mode.is_read_only() {
                // SAFETY: loop-read-only array.
                let v = unsafe { self.load_f64(r.array, self.elem_index(&r.pattern, i)) };
                acc = acc * 0.5 + v;
            }
        }
        for r in &self.spec.refs {
            // SAFETY: exclusive writes under the token.
            unsafe {
                match r.mode {
                    Mode::Read => {}
                    Mode::Write => {
                        let e = self.elem_index(&r.pattern, i);
                        self.store_f64(r.array, e, acc * 0.9 + 0.1);
                    }
                    Mode::Modify => {
                        let e = self.elem_index(&r.pattern, i);
                        let old = self.load_f64(r.array, e);
                        self.store_f64(r.array, e, old * 0.25 + acc * 0.5 + 0.0625);
                    }
                }
            }
        }
        std::hint::black_box(acc);
    }

    /// # Safety: token held.
    unsafe fn exec_iter_u32(&self, i: u64) {
        let mut acc = 0u32;
        for r in &self.spec.refs {
            if r.mode.is_read_only() {
                // SAFETY: loop-read-only array.
                let v = unsafe { self.load_u32(r.array, self.elem_index(&r.pattern, i)) };
                acc = acc.wrapping_mul(2_654_435_761).wrapping_add(v);
            }
        }
        for r in &self.spec.refs {
            // SAFETY: exclusive writes under the token.
            unsafe {
                match r.mode {
                    Mode::Read => {}
                    Mode::Write => {
                        let e = self.elem_index(&r.pattern, i);
                        self.store_u32(r.array, e, acc ^ 0x9E37_79B9);
                    }
                    Mode::Modify => {
                        let e = self.elem_index(&r.pattern, i);
                        let old = self.load_u32(r.array, e);
                        self.store_u32(r.array, e, old.wrapping_mul(3).wrapping_add(acc));
                    }
                }
            }
        }
        std::hint::black_box(acc);
    }
}

impl<'p> RealKernel for SpecKernel<'p> {
    fn iters(&self) -> u64 {
        self.spec.iters
    }

    unsafe fn execute(&self, range: Range<u64>) {
        if self.is_f64() {
            for i in range {
                // SAFETY: forwarded contract.
                unsafe { self.exec_iter_f64(i) };
            }
        } else {
            for i in range {
                // SAFETY: forwarded contract.
                unsafe { self.exec_iter_u32(i) };
            }
        }
    }

    fn prefetch_iter(&self, i: u64) {
        let base = self.prog.base() as *const u8;
        for r in &self.spec.refs {
            if let Pattern::Indirect {
                index,
                ibase,
                istride,
            } = r.pattern
            {
                let pos = (ibase + istride * i as i64) as u64;
                let iaddr = self.prog.workload.space.addr(index, pos);
                prefetch_range(base.wrapping_add(iaddr as usize), 4);
            }
            // SAFETY: reading the index value only (never written by this
            // loop); the data target itself is merely hinted.
            let e = unsafe { self.elem_index(&r.pattern, i) };
            let addr = self.prog.workload.space.addr(r.array, e);
            prefetch_range(base.wrapping_add(addr as usize), r.bytes as usize);
        }
    }

    fn pack_iter(&self, i: u64, buf: &mut Vec<u8>) -> bool {
        for r in &self.spec.refs {
            match r.mode {
                Mode::Read => {
                    // SAFETY: loop-read-only array (validated): concurrent
                    // with the executor but disjoint from all its writes.
                    unsafe {
                        let e = self.elem_index(&r.pattern, i);
                        if r.bytes == 8 {
                            buf.extend_from_slice(&self.load_f64(r.array, e).to_le_bytes());
                        } else {
                            buf.extend_from_slice(&self.load_u32(r.array, e).to_le_bytes());
                        }
                    }
                }
                Mode::Write | Mode::Modify => {
                    if let Pattern::Indirect {
                        index,
                        ibase,
                        istride,
                    } = r.pattern
                    {
                        let pos = (ibase + istride * i as i64) as u64;
                        // SAFETY: index arrays are never written (validated).
                        let v = unsafe { self.load_u32(index, pos) };
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        true
    }

    unsafe fn execute_packed(&self, range: Range<u64>, buf: &[u8]) {
        let mut cur = 0usize;
        let f64_loop = self.is_f64();
        for i in range {
            // Recompute the accumulator from the packed operand stream.
            let mut acc_f = 0.0f64;
            let mut acc_u = 0u32;
            let mut idx_cursor: Vec<u64> = Vec::with_capacity(2);
            for r in &self.spec.refs {
                match r.mode {
                    Mode::Read => {
                        if f64_loop {
                            let v = f64::from_le_bytes(take_bytes::<8>(buf, cur));
                            cur += 8;
                            acc_f = acc_f * 0.5 + v;
                        } else {
                            let v = u32::from_le_bytes(take_bytes::<4>(buf, cur));
                            cur += 4;
                            acc_u = acc_u.wrapping_mul(2_654_435_761).wrapping_add(v);
                        }
                    }
                    Mode::Write | Mode::Modify => {
                        if matches!(r.pattern, Pattern::Indirect { .. }) {
                            let v = u32::from_le_bytes(take_bytes::<4>(buf, cur));
                            cur += 4;
                            idx_cursor.push(v as u64);
                        }
                    }
                }
            }
            let mut idx_used = 0usize;
            for r in &self.spec.refs {
                if !r.mode.writes() {
                    continue;
                }
                let e = match r.pattern {
                    Pattern::Affine { base, stride } => (base + stride * i as i64) as u64,
                    Pattern::Indirect { .. } => {
                        let e = idx_cursor[idx_used];
                        idx_used += 1;
                        e
                    }
                };
                // SAFETY: exclusive writes under the token.
                unsafe {
                    if f64_loop {
                        match r.mode {
                            Mode::Write => self.store_f64(r.array, e, acc_f * 0.9 + 0.1),
                            Mode::Modify => {
                                let old = self.load_f64(r.array, e);
                                self.store_f64(r.array, e, old * 0.25 + acc_f * 0.5 + 0.0625);
                            }
                            Mode::Read => unreachable!(),
                        }
                    } else {
                        match r.mode {
                            Mode::Write => self.store_u32(r.array, e, acc_u ^ 0x9E37_79B9),
                            Mode::Modify => {
                                let old = self.load_u32(r.array, e);
                                self.store_u32(r.array, e, old.wrapping_mul(3).wrapping_add(acc_u));
                            }
                            Mode::Read => unreachable!(),
                        }
                    }
                }
            }
            if f64_loop {
                std::hint::black_box(acc_f);
            } else {
                std::hint::black_box(acc_u);
            }
        }
        debug_assert_eq!(cur, buf.len(), "packed buffer fully consumed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_cascaded, RtPolicy, RunnerConfig};
    use cascade_trace::{AddressSpace, IndexStore, StreamRef};

    fn scatter_workload(n: u64) -> (Workload, Arena) {
        let mut space = AddressSpace::new();
        let rho = space.alloc("rho", 8, n / 4);
        let pq = space.alloc("pq", 8, n);
        let ij = space.alloc("ij", 4, n);
        let mut index = IndexStore::new();
        // Colliding scatter: many iterations hit the same element, so the
        // result depends on iteration order (RMW chain).
        index.set(ij, (0..n).map(|i| ((i * 7919) % (n / 4)) as u32).collect());
        let spec = LoopSpec {
            name: "scatter".into(),
            iters: n,
            refs: vec![
                StreamRef {
                    name: "pq(i)",
                    array: pq,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: false,
                },
                StreamRef {
                    name: "rho(ij(i))",
                    array: rho,
                    pattern: Pattern::Indirect {
                        index: ij,
                        ibase: 0,
                        istride: 1,
                    },
                    mode: Mode::Modify,
                    bytes: 8,
                    hoistable: false,
                },
            ],
            compute: 2.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        let w = Workload {
            space,
            index,
            loops: vec![spec],
        };
        let mut arena = Arena::new(&w.space);
        for i in 0..n {
            arena.set_f64(&w.space, pq, i, (i % 13) as f64 * 0.125 + 0.25);
        }
        arena.install_indices(&w.space, &w.index);
        (w, arena)
    }

    fn run_once(policy: RtPolicy, threads: usize, n: u64) -> u64 {
        let (w, arena) = scatter_workload(n);
        let mut prog = SpecProgram::new(w, arena);
        let k = prog.kernel(0);
        run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: threads,
                iters_per_chunk: 257,
                policy,
                poll_batch: 16,
            },
        );
        prog.checksum()
    }

    fn sequential_checksum(n: u64) -> u64 {
        let (w, arena) = scatter_workload(n);
        let mut prog = SpecProgram::new(w, arena);
        let k = prog.kernel(0);
        // SAFETY: single-threaded.
        unsafe { k.execute(0..k.iters()) };
        prog.checksum()
    }

    #[test]
    fn cascaded_scatter_is_bitwise_sequential() {
        let n = 8_192;
        let expected = sequential_checksum(n);
        for policy in [RtPolicy::None, RtPolicy::Prefetch, RtPolicy::Restructure] {
            for threads in [1, 2, 4] {
                let got = run_once(policy, threads, n);
                assert_eq!(got, expected, "policy {policy:?} threads {threads}");
            }
        }
    }

    #[test]
    fn packed_execution_matches_unpacked_exactly() {
        let (w, arena) = scatter_workload(4096);
        let mut p1 = SpecProgram::new(w.clone(), arena.clone());
        let mut p2 = SpecProgram::new(w, arena);
        {
            let k = p1.kernel(0);
            // SAFETY: single-threaded.
            unsafe { k.execute(0..k.iters()) };
        }
        {
            let k = p2.kernel(0);
            let mut buf = Vec::new();
            for i in 0..k.iters() {
                assert!(k.pack_iter(i, &mut buf));
            }
            // SAFETY: single-threaded.
            unsafe { k.execute_packed(0..k.iters(), &buf) };
        }
        assert_eq!(p1.checksum(), p2.checksum());
    }

    #[test]
    #[should_panic(expected = "packed buffer underrun")]
    fn truncated_packed_buffer_reports_underrun_with_context() {
        let (w, arena) = scatter_workload(64);
        let prog = SpecProgram::new(w, arena);
        let k = prog.kernel(0);
        let mut buf = Vec::new();
        for i in 0..4 {
            assert!(k.pack_iter(i, &mut buf));
        }
        buf.truncate(buf.len() - 3); // corrupt: last operand is short
                                     // SAFETY: single-threaded.
        unsafe { k.execute_packed(0..4, &buf) };
    }

    #[test]
    fn prefetch_iter_is_pure() {
        let (w, arena) = scatter_workload(1024);
        let mut prog = SpecProgram::new(w, arena);
        let before = prog.checksum();
        let k = prog.kernel(0);
        for i in 0..k.iters() {
            k.prefetch_iter(i);
        }
        assert_eq!(prog.checksum(), before);
    }

    #[test]
    #[should_panic(expected = "helpers would race")]
    fn read_of_written_array_is_rejected() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 64);
        let spec = LoopSpec {
            name: "inplace".into(),
            iters: 32,
            refs: vec![
                StreamRef {
                    name: "a(i)",
                    array: a,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: false,
                },
                StreamRef {
                    name: "a(i+32)",
                    array: a,
                    pattern: Pattern::Affine {
                        base: 32,
                        stride: 1,
                    },
                    mode: Mode::Write,
                    bytes: 8,
                    hoistable: false,
                },
            ],
            compute: 1.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        let w = Workload {
            space,
            index: IndexStore::new(),
            loops: vec![spec],
        };
        let arena = Arena::new(&w.space);
        SpecProgram::new(w, arena);
    }

    #[test]
    #[should_panic(expected = "uniform operand width")]
    fn mixed_widths_are_rejected() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 64);
        let b = space.alloc("b", 4, 64);
        let spec = LoopSpec {
            name: "mixed".into(),
            iters: 32,
            refs: vec![
                StreamRef {
                    name: "a(i)",
                    array: a,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: false,
                },
                StreamRef {
                    name: "b(i)",
                    array: b,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Write,
                    bytes: 4,
                    hoistable: false,
                },
            ],
            compute: 1.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        let w = Workload {
            space,
            index: IndexStore::new(),
            loops: vec![spec],
        };
        let arena = Arena::new(&w.space);
        SpecProgram::new(w, arena);
    }
}

//! Real execution of workload descriptions: a [`SpecProgram`] interprets
//! the same [`LoopSpec`]s the simulator models, against the real bytes of
//! an [`Arena`] — so the runtime, the simulator, and the tests all agree
//! on what a loop *is*.
//!
//! ## Semantics
//!
//! A `LoopSpec` describes reference streams, not arithmetic, so the
//! interpreter fixes a deterministic body for every loop:
//!
//! * 8-byte loops (f64): fold every read operand into an accumulator
//!   (`acc = acc * 0.5 + v`, in `refs` order); each `Write` ref stores
//!   `acc * 0.9 + 0.1`; each `Modify` ref stores
//!   `old * 0.25 + acc * 0.5 + 0.0625`.
//! * 4-byte loops (u32): the same shape with wrapping integer arithmetic.
//!
//! Because floating-point addition is not associative and `Modify` is a
//! read-modify-write, the result is sensitive to iteration *order* — which
//! is precisely what cascaded execution must preserve. Bitwise equality
//! with a sequential run is therefore a strong correctness check of the
//! token protocol.
//!
//! ## Safety model
//!
//! The arena lives in an `UnsafeCell`. Mutation happens only inside
//! [`RealKernel::execute`]/[`RealKernel::execute_packed`], whose contract
//! (enforced by [`crate::runner`]'s token protocol) guarantees exclusivity
//! and happens-before edges. Helper-phase reads (`pack_iter`) are proven
//! safe at construction by the `cascade-analyze` dependence analysis:
//! either the operand is never written by the loop (`Packable`), or every
//! aliasing write precedes the read by at least `lag` iterations
//! (`HorizonSafe`) and the runner keeps helpers behind the committed
//! horizon via [`RealKernel::helper_horizon`]. `prefetch_iter` issues
//! only architectural hints (plus index-array demand reads, which the
//! analysis proves are never written).

use std::cell::UnsafeCell;
use std::ops::Range;

use cascade_analyze::{analyze_workload, AnalysisError, Footprint, LoopReport, WorkloadReport};
use cascade_core::fnv64;
use cascade_trace::diag::{DiagCode, Diagnostic, Severity};
use cascade_trace::{Arena, ArrayId, LoopSpec, Mode, Pattern, Workload};

use crate::kernel::RealKernel;
use crate::prefetch::prefetch_range;

/// A runnable program: workload description + real backing bytes.
#[derive(Debug)]
pub struct SpecProgram {
    workload: Workload,
    report: WorkloadReport,
    arena: UnsafeCell<Arena>,
}

// SAFETY: all mutation of `arena` flows through `RealKernel::execute*`,
// whose contract requires external serialization with happens-before
// edges; concurrent helper reads are proven race-free by the
// `cascade-analyze` verdicts (Packable) or horizon-gated by the runner
// (HorizonSafe) — `SpecProgram::new` rejects everything else.
unsafe impl Sync for SpecProgram {}

impl SpecProgram {
    /// Wrap a workload and its arena, running the `cascade-analyze`
    /// helper-safety analysis over every loop. Returns the typed findings
    /// ([`AnalysisError`]) instead of panicking when a loop cannot run
    /// under the real-thread interpreter: an `Unsafe` operand verdict, a
    /// malformed spec, an unsupported or mixed operand width, or an arena
    /// that does not match the address space.
    pub fn new(workload: Workload, arena: Arena) -> Result<Self, AnalysisError> {
        let mut report = analyze_workload(&workload);
        if arena.len() as u64 != workload.space.extent() {
            report.diagnostics.push(Diagnostic::loop_level(
                DiagCode::ArenaMismatch,
                Severity::Error,
                "",
                format!(
                    "arena does not match the workload's address space \
                     ({} bytes vs extent {})",
                    arena.len(),
                    workload.space.extent()
                ),
            ));
        }
        let report = report.require_rt()?;
        Ok(SpecProgram {
            workload,
            report,
            arena: UnsafeCell::new(arena),
        })
    }

    /// The wrapped workload (loops, space, indices).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The helper-safety analysis report the program was admitted under.
    pub fn report(&self) -> &WorkloadReport {
        &self.report
    }

    /// The analysis report of loop `idx`.
    pub fn loop_report(&self, idx: usize) -> &LoopReport {
        &self.report.loops[idx]
    }

    /// A kernel for loop `idx`, runnable by [`crate::runner::run_cascaded`].
    pub fn kernel(&self, idx: usize) -> SpecKernel<'_> {
        SpecKernel {
            prog: self,
            spec: &self.workload.loops[idx],
            report: &self.report.loops[idx],
        }
    }

    /// Number of loops.
    pub fn num_loops(&self) -> usize {
        self.workload.loops.len()
    }

    /// Checksum of the arena. Takes `&mut self` so the borrow checker
    /// proves no kernel (and hence no concurrent run) is outstanding.
    pub fn checksum(&mut self) -> u64 {
        self.arena.get_mut().checksum()
    }

    /// Exclusive access to the arena (same `&mut` soundness argument).
    pub fn arena_mut(&mut self) -> &mut Arena {
        self.arena.get_mut()
    }

    /// Consume the program, returning the arena.
    pub fn into_arena(self) -> Arena {
        self.arena.into_inner()
    }

    #[inline]
    fn base(&self) -> *mut u8 {
        // SAFETY of callers: dereferencing derived pointers follows the
        // kernel contract; taking the base address itself is harmless.
        unsafe { (*self.arena.get()).as_ptr() as *mut u8 }
    }
}

/// Decode the next `N`-byte operand at offset `cur` of the packed buffer,
/// reporting underrun with offset/length context instead of a bare slice
/// or `try_into` panic — a corrupted or truncated packed buffer then says
/// exactly *where* it ran dry.
fn take_bytes<const N: usize>(buf: &[u8], cur: usize) -> [u8; N] {
    match buf
        .get(cur..cur + N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
    {
        Some(bytes) => bytes,
        None => panic!(
            "packed buffer underrun: need {N} bytes at offset {cur}, buffer holds {} bytes",
            buf.len()
        ),
    }
}

/// Sort `(lo, hi)` byte intervals and merge overlaps/adjacency into a
/// disjoint ascending list — the shape the replay overlay, the arena
/// scrubber, and the out-of-footprint corruption targeter all share.
fn merge_intervals(fps: &[Footprint]) -> Vec<(u64, u64)> {
    let mut ivals: Vec<(u64, u64)> = fps.iter().map(|f| (f.lo, f.hi)).collect();
    ivals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (lo, hi) in ivals {
        match merged.last_mut() {
            Some(m) if lo <= m.1 => m.1 = m.1.max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// A private view of a committed chunk's write footprint: disjoint,
/// sorted address intervals backed by owned bytes, seeded from the
/// chunk's undo journal. The verification replay
/// ([`RealKernel::replay_footprint`]) routes every footprint access here,
/// so shared memory is never written by a verifier.
struct Overlay {
    /// `(lo, hi, bytes)`, sorted by `lo`, pairwise disjoint.
    segs: Vec<(u64, u64, Vec<u8>)>,
}

impl Overlay {
    /// Build the overlay for `fps` (journal order) seeded from
    /// `pre_image` (journal layout). Overlapping footprints captured the
    /// same pre-chunk bytes, so double-seeding is consistent. `None` when
    /// the pre-image does not match the footprints' total size.
    fn seed(fps: &[Footprint], pre_image: &[u8]) -> Option<Overlay> {
        let mut segs: Vec<(u64, u64, Vec<u8>)> = merge_intervals(fps)
            .into_iter()
            .map(|(lo, hi)| (lo, hi, vec![0u8; (hi - lo) as usize]))
            .collect();
        let mut cur = 0usize;
        for f in fps {
            let len = (f.hi - f.lo) as usize;
            let src = pre_image.get(cur..cur + len)?;
            let seg = segs
                .iter_mut()
                .find(|(lo, hi, _)| f.lo >= *lo && f.hi <= *hi)?;
            let off = (f.lo - seg.0) as usize;
            seg.2[off..off + len].copy_from_slice(src);
            cur += len;
        }
        if cur != pre_image.len() {
            return None;
        }
        Some(Overlay { segs })
    }

    fn seg_idx(&self, addr: u64) -> Option<usize> {
        // `cmp` comparison result aliased so scripts/lint_atomics.sh
        // (which pins atomics-using files by pattern-matching the
        // memory-order path) does not mistake this pure binary search
        // for an atomics site.
        use std::cmp::Ordering as SegCmp;
        self.segs
            .binary_search_by(|(lo, hi, _)| {
                if addr < *lo {
                    SegCmp::Greater
                } else if addr >= *hi {
                    SegCmp::Less
                } else {
                    SegCmp::Equal
                }
            })
            .ok()
    }

    /// The overlay bytes of `[addr, addr + n)`, if covered. An access is
    /// never split across a segment boundary: footprints cover whole
    /// elements of the accessed array, and arrays are disjoint in the
    /// address space.
    fn get(&self, addr: u64, n: u64) -> Option<&[u8]> {
        let i = self.seg_idx(addr)?;
        let (lo, hi, bytes) = &self.segs[i];
        if addr + n > *hi {
            return None;
        }
        let off = (addr - lo) as usize;
        Some(&bytes[off..off + n as usize])
    }

    /// Mutable counterpart of [`Overlay::get`].
    fn get_mut(&mut self, addr: u64, n: u64) -> Option<&mut [u8]> {
        let i = self.seg_idx(addr)?;
        let (lo, hi, bytes) = &mut self.segs[i];
        if addr + n > *hi {
            return None;
        }
        let off = (addr - *lo) as usize;
        Some(&mut bytes[off..off + n as usize])
    }
}

/// One loop of a [`SpecProgram`], as a [`RealKernel`].
pub struct SpecKernel<'p> {
    prog: &'p SpecProgram,
    spec: &'p LoopSpec,
    report: &'p LoopReport,
}

impl<'p> SpecKernel<'p> {
    /// The spec this kernel interprets.
    pub fn spec(&self) -> &LoopSpec {
        self.spec
    }

    /// The helper-safety report of this loop.
    pub fn report(&self) -> &LoopReport {
        self.report
    }

    /// Resolve the element index of `r` at iteration `i`, reading indirect
    /// indices from the *arena* (real memory, like real generated code
    /// would).
    ///
    /// # Safety
    ///
    /// Index arrays are validated to never be written by this loop, so the
    /// raw read cannot race with the executor.
    #[inline]
    unsafe fn elem_index(&self, pattern: &Pattern, i: u64) -> u64 {
        match *pattern {
            Pattern::Affine { base, stride } => (base + stride * i as i64) as u64,
            Pattern::Indirect {
                index,
                ibase,
                istride,
            } => {
                let pos = (ibase + istride * i as i64) as u64;
                let addr = self.prog.workload.space.addr(index, pos);
                // SAFETY: in-bounds (space layout) and never written by
                // this loop (validated), so no data race.
                unsafe { (self.prog.base().add(addr as usize) as *const u32).read() as u64 }
            }
        }
    }

    /// # Safety: in-bounds read of a location not concurrently written
    /// (either we hold the token, or the array is loop-read-only).
    #[inline]
    unsafe fn load_f64(&self, array: ArrayId, elem: u64) -> f64 {
        let addr = self.prog.workload.space.addr(array, elem);
        unsafe { (self.prog.base().add(addr as usize) as *const f64).read() }
    }

    /// # Safety: exclusive in-bounds write (token held).
    #[inline]
    unsafe fn store_f64(&self, array: ArrayId, elem: u64, v: f64) {
        let addr = self.prog.workload.space.addr(array, elem);
        unsafe { (self.prog.base().add(addr as usize) as *mut f64).write(v) }
    }

    /// # Safety: as [`Self::load_f64`].
    #[inline]
    unsafe fn load_u32(&self, array: ArrayId, elem: u64) -> u32 {
        let addr = self.prog.workload.space.addr(array, elem);
        unsafe { (self.prog.base().add(addr as usize) as *const u32).read() }
    }

    /// # Safety: as [`Self::store_f64`].
    #[inline]
    unsafe fn store_u32(&self, array: ArrayId, elem: u64, v: u32) {
        let addr = self.prog.workload.space.addr(array, elem);
        unsafe { (self.prog.base().add(addr as usize) as *mut u32).write(v) }
    }

    fn is_f64(&self) -> bool {
        self.spec.refs[0].bytes == 8
    }

    /// # Safety: token held (mutates through writes).
    unsafe fn exec_iter_f64(&self, i: u64) {
        let mut acc = 0.0f64;
        for r in &self.spec.refs {
            if r.mode.is_read_only() {
                // SAFETY: loop-read-only array.
                let v = unsafe { self.load_f64(r.array, self.elem_index(&r.pattern, i)) };
                acc = acc * 0.5 + v;
            }
        }
        for r in &self.spec.refs {
            // SAFETY: exclusive writes under the token.
            unsafe {
                match r.mode {
                    Mode::Read => {}
                    Mode::Write => {
                        let e = self.elem_index(&r.pattern, i);
                        self.store_f64(r.array, e, acc * 0.9 + 0.1);
                    }
                    Mode::Modify => {
                        let e = self.elem_index(&r.pattern, i);
                        let old = self.load_f64(r.array, e);
                        self.store_f64(r.array, e, old * 0.25 + acc * 0.5 + 0.0625);
                    }
                }
            }
        }
        std::hint::black_box(acc);
    }

    /// The write-ref footprints of `range` in journal order (the byte
    /// layout of [`RealKernel::journal_capture`]), or `None` when any is
    /// unresolvable.
    fn write_footprints(&self, range: Range<u64>) -> Option<Vec<Footprint>> {
        self.spec
            .refs
            .iter()
            .filter(|r| r.mode.writes())
            .map(|r| cascade_analyze::ref_footprint(&self.prog.workload, r, range.clone()))
            .collect()
    }

    /// Replay load: overlay first, shared arena for everything outside
    /// the chunk's write footprint.
    ///
    /// # Safety: the replayed range is committed and no `execute` runs
    /// concurrently (the verifier holds the downstream claim), so the
    /// arena fallback read cannot race a writer.
    unsafe fn ov_load_f64(&self, ov: &Overlay, array: ArrayId, elem: u64) -> f64 {
        let addr = self.prog.workload.space.addr(array, elem);
        match ov.get(addr, 8) {
            Some(b) => f64::from_ne_bytes(b.try_into().expect("8 overlay bytes")),
            // SAFETY: per the method contract.
            None => unsafe { self.load_f64(array, elem) },
        }
    }

    /// # Safety: as [`Self::ov_load_f64`].
    unsafe fn ov_load_u32(&self, ov: &Overlay, array: ArrayId, elem: u64) -> u32 {
        let addr = self.prog.workload.space.addr(array, elem);
        match ov.get(addr, 4) {
            Some(b) => u32::from_ne_bytes(b.try_into().expect("4 overlay bytes")),
            // SAFETY: per the method contract.
            None => unsafe { self.load_u32(array, elem) },
        }
    }

    /// Replay store: lands in the overlay, never in shared memory. Every
    /// write ref's elements lie inside its own footprint by construction,
    /// so a miss is an interpreter bug, not a data condition.
    fn ov_store_f64(&self, ov: &mut Overlay, array: ArrayId, elem: u64, v: f64) {
        let addr = self.prog.workload.space.addr(array, elem);
        ov.get_mut(addr, 8)
            .expect("replay store inside the write footprint")
            .copy_from_slice(&v.to_ne_bytes());
    }

    /// u32 counterpart of [`Self::ov_store_f64`].
    fn ov_store_u32(&self, ov: &mut Overlay, array: ArrayId, elem: u64, v: u32) {
        let addr = self.prog.workload.space.addr(array, elem);
        ov.get_mut(addr, 4)
            .expect("replay store inside the write footprint")
            .copy_from_slice(&v.to_ne_bytes());
    }

    /// One f64 iteration of the verification replay: the same body as
    /// [`Self::exec_iter_f64`] with all footprint accesses routed through
    /// the overlay. Keep the two in lockstep — a divergence here *is* a
    /// false corruption alarm.
    ///
    /// # Safety: as [`Self::ov_load_f64`].
    unsafe fn replay_iter_f64(&self, ov: &mut Overlay, i: u64) {
        let mut acc = 0.0f64;
        for r in &self.spec.refs {
            if r.mode.is_read_only() {
                // SAFETY: committed range, no concurrent writer.
                let v = unsafe { self.ov_load_f64(ov, r.array, self.elem_index(&r.pattern, i)) };
                acc = acc * 0.5 + v;
            }
        }
        for r in &self.spec.refs {
            // SAFETY: index/overlay reads only; stores land in the overlay.
            unsafe {
                match r.mode {
                    Mode::Read => {}
                    Mode::Write => {
                        let e = self.elem_index(&r.pattern, i);
                        self.ov_store_f64(ov, r.array, e, acc * 0.9 + 0.1);
                    }
                    Mode::Modify => {
                        let e = self.elem_index(&r.pattern, i);
                        let old = self.ov_load_f64(ov, r.array, e);
                        self.ov_store_f64(ov, r.array, e, old * 0.25 + acc * 0.5 + 0.0625);
                    }
                }
            }
        }
        std::hint::black_box(acc);
    }

    /// u32 counterpart of [`Self::replay_iter_f64`] (mirrors
    /// [`Self::exec_iter_u32`]).
    ///
    /// # Safety: as [`Self::ov_load_f64`].
    unsafe fn replay_iter_u32(&self, ov: &mut Overlay, i: u64) {
        let mut acc = 0u32;
        for r in &self.spec.refs {
            if r.mode.is_read_only() {
                // SAFETY: committed range, no concurrent writer.
                let v = unsafe { self.ov_load_u32(ov, r.array, self.elem_index(&r.pattern, i)) };
                acc = acc.wrapping_mul(2_654_435_761).wrapping_add(v);
            }
        }
        for r in &self.spec.refs {
            // SAFETY: index/overlay reads only; stores land in the overlay.
            unsafe {
                match r.mode {
                    Mode::Read => {}
                    Mode::Write => {
                        let e = self.elem_index(&r.pattern, i);
                        self.ov_store_u32(ov, r.array, e, acc ^ 0x9E37_79B9);
                    }
                    Mode::Modify => {
                        let e = self.elem_index(&r.pattern, i);
                        let old = self.ov_load_u32(ov, r.array, e);
                        self.ov_store_u32(ov, r.array, e, old.wrapping_mul(3).wrapping_add(acc));
                    }
                }
            }
        }
        std::hint::black_box(acc);
    }

    /// # Safety: token held.
    unsafe fn exec_iter_u32(&self, i: u64) {
        let mut acc = 0u32;
        for r in &self.spec.refs {
            if r.mode.is_read_only() {
                // SAFETY: loop-read-only array.
                let v = unsafe { self.load_u32(r.array, self.elem_index(&r.pattern, i)) };
                acc = acc.wrapping_mul(2_654_435_761).wrapping_add(v);
            }
        }
        for r in &self.spec.refs {
            // SAFETY: exclusive writes under the token.
            unsafe {
                match r.mode {
                    Mode::Read => {}
                    Mode::Write => {
                        let e = self.elem_index(&r.pattern, i);
                        self.store_u32(r.array, e, acc ^ 0x9E37_79B9);
                    }
                    Mode::Modify => {
                        let e = self.elem_index(&r.pattern, i);
                        let old = self.load_u32(r.array, e);
                        self.store_u32(r.array, e, old.wrapping_mul(3).wrapping_add(acc));
                    }
                }
            }
        }
        std::hint::black_box(acc);
    }
}

impl<'p> RealKernel for SpecKernel<'p> {
    fn iters(&self) -> u64 {
        self.spec.iters
    }

    unsafe fn execute(&self, range: Range<u64>) {
        if self.is_f64() {
            for i in range {
                // SAFETY: forwarded contract.
                unsafe { self.exec_iter_f64(i) };
            }
        } else {
            for i in range {
                // SAFETY: forwarded contract.
                unsafe { self.exec_iter_u32(i) };
            }
        }
    }

    fn prefetch_iter(&self, i: u64) {
        let base = self.prog.base() as *const u8;
        for r in &self.spec.refs {
            if let Pattern::Indirect {
                index,
                ibase,
                istride,
            } = r.pattern
            {
                let pos = (ibase + istride * i as i64) as u64;
                let iaddr = self.prog.workload.space.addr(index, pos);
                prefetch_range(base.wrapping_add(iaddr as usize), 4);
            }
            // SAFETY: reading the index value only (never written by this
            // loop); the data target itself is merely hinted.
            let e = unsafe { self.elem_index(&r.pattern, i) };
            let addr = self.prog.workload.space.addr(r.array, e);
            prefetch_range(base.wrapping_add(addr as usize), r.bytes as usize);
        }
    }

    fn helper_horizon(&self) -> Option<u64> {
        self.report.helper_lag()
    }

    fn prefetch_bytes_per_iter(&self) -> u64 {
        // Mirrors `prefetch_iter` exactly: 4 index bytes per indirect
        // stream, plus each stream's data footprint.
        self.spec
            .refs
            .iter()
            .map(|r| {
                let index_bytes = match r.pattern {
                    Pattern::Indirect { .. } => 4,
                    _ => 0,
                };
                index_bytes + r.bytes as u64
            })
            .sum()
    }

    fn pack_iter(&self, i: u64, buf: &mut Vec<u8>) -> bool {
        for r in &self.spec.refs {
            match r.mode {
                Mode::Read => {
                    // SAFETY: the analysis proved this read is either
                    // never written by the loop (Packable) or only by
                    // iterations the horizon gate has already committed
                    // (HorizonSafe + runner-enforced `helper_horizon`).
                    unsafe {
                        let e = self.elem_index(&r.pattern, i);
                        if r.bytes == 8 {
                            buf.extend_from_slice(&self.load_f64(r.array, e).to_le_bytes());
                        } else {
                            buf.extend_from_slice(&self.load_u32(r.array, e).to_le_bytes());
                        }
                    }
                }
                Mode::Write | Mode::Modify => {
                    if let Pattern::Indirect {
                        index,
                        ibase,
                        istride,
                    } = r.pattern
                    {
                        let pos = (ibase + istride * i as i64) as u64;
                        // SAFETY: index arrays are never written (validated).
                        let v = unsafe { self.load_u32(index, pos) };
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        true
    }

    unsafe fn execute_packed(&self, range: Range<u64>, buf: &[u8]) {
        let mut cur = 0usize;
        let f64_loop = self.is_f64();
        for i in range {
            // Recompute the accumulator from the packed operand stream.
            let mut acc_f = 0.0f64;
            let mut acc_u = 0u32;
            let mut idx_cursor: Vec<u64> = Vec::with_capacity(2);
            for r in &self.spec.refs {
                match r.mode {
                    Mode::Read => {
                        if f64_loop {
                            let v = f64::from_le_bytes(take_bytes::<8>(buf, cur));
                            cur += 8;
                            acc_f = acc_f * 0.5 + v;
                        } else {
                            let v = u32::from_le_bytes(take_bytes::<4>(buf, cur));
                            cur += 4;
                            acc_u = acc_u.wrapping_mul(2_654_435_761).wrapping_add(v);
                        }
                    }
                    Mode::Write | Mode::Modify => {
                        if matches!(r.pattern, Pattern::Indirect { .. }) {
                            let v = u32::from_le_bytes(take_bytes::<4>(buf, cur));
                            cur += 4;
                            idx_cursor.push(v as u64);
                        }
                    }
                }
            }
            let mut idx_used = 0usize;
            for r in &self.spec.refs {
                if !r.mode.writes() {
                    continue;
                }
                let e = match r.pattern {
                    Pattern::Affine { base, stride } => (base + stride * i as i64) as u64,
                    Pattern::Indirect { .. } => {
                        let e = idx_cursor[idx_used];
                        idx_used += 1;
                        e
                    }
                };
                // SAFETY: exclusive writes under the token.
                unsafe {
                    if f64_loop {
                        match r.mode {
                            Mode::Write => self.store_f64(r.array, e, acc_f * 0.9 + 0.1),
                            Mode::Modify => {
                                let old = self.load_f64(r.array, e);
                                self.store_f64(r.array, e, old * 0.25 + acc_f * 0.5 + 0.0625);
                            }
                            Mode::Read => unreachable!(),
                        }
                    } else {
                        match r.mode {
                            Mode::Write => self.store_u32(r.array, e, acc_u ^ 0x9E37_79B9),
                            Mode::Modify => {
                                let old = self.load_u32(r.array, e);
                                self.store_u32(r.array, e, old.wrapping_mul(3).wrapping_add(acc_u));
                            }
                            Mode::Read => unreachable!(),
                        }
                    }
                }
            }
            if f64_loop {
                std::hint::black_box(acc_f);
            } else {
                std::hint::black_box(acc_u);
            }
        }
        debug_assert_eq!(cur, buf.len(), "packed buffer fully consumed");
    }

    fn journal_range_exact(&self) -> bool {
        // A write footprint is range-exact when its interval holds only
        // bytes the range itself writes: contiguous affine strides
        // (|stride| == 1, ascending or descending). A wider stride
        // leaves gap bytes inside the interval that another range may
        // own, and an indirect scatter's interval is the whole target
        // array — both would make a concurrent capture race a writer.
        self.spec
            .refs
            .iter()
            .filter(|r| r.mode.writes())
            .all(|r| matches!(r.pattern, Pattern::Affine { stride, .. } if stride.abs() == 1))
    }

    unsafe fn journal_capture(&self, range: Range<u64>, buf: &mut Vec<u8>) -> bool {
        buf.clear();
        for r in self.spec.refs.iter().filter(|r| r.mode.writes()) {
            let Some(fp) = cascade_analyze::ref_footprint(&self.prog.workload, r, range.clone())
            else {
                // Unresolvable write footprint: no journal bound exists.
                // Loops `SpecProgram::new` admits never hit this (rt_ok
                // rejects unsafe write verdicts), but the contract allows
                // it, so degrade to the fail-stop gate rather than panic.
                buf.clear();
                return false;
            };
            let len = (fp.hi - fp.lo) as usize;
            // SAFETY: the footprint is analyzer-bounded inside the arena
            // (past-the-end streams are rejected at construction), and we
            // hold the chunk's claim, so no concurrent writer exists while
            // these bytes are read.
            let bytes =
                unsafe { std::slice::from_raw_parts(self.prog.base().add(fp.lo as usize), len) };
            buf.extend_from_slice(bytes);
        }
        true
    }

    unsafe fn journal_rollback(&self, range: Range<u64>, buf: &[u8]) {
        let mut cur = 0usize;
        for r in self.spec.refs.iter().filter(|r| r.mode.writes()) {
            let fp = cascade_analyze::ref_footprint(&self.prog.workload, r, range.clone())
                .expect("rollback follows a successful capture over the same range");
            let len = (fp.hi - fp.lo) as usize;
            // Overlapping footprints restore safely: every captured byte
            // is pre-chunk state, so repeated restores are idempotent.
            // SAFETY: same in-bounds argument as the capture, and the
            // claim is still held — the interrupted executor is us.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    buf[cur..cur + len].as_ptr(),
                    self.prog.base().add(fp.lo as usize),
                    len,
                );
            }
            cur += len;
        }
        debug_assert_eq!(cur, buf.len(), "journal fully consumed");
    }

    unsafe fn replay_footprint(&self, range: Range<u64>, pre_image: &[u8]) -> Option<Vec<u8>> {
        let fps = self.write_footprints(range.clone())?;
        let mut ov = Overlay::seed(&fps, pre_image)?;
        if self.is_f64() {
            for i in range {
                // SAFETY: committed range per the trait contract; stores
                // land in the overlay only.
                unsafe { self.replay_iter_f64(&mut ov, i) };
            }
        } else {
            for i in range {
                // SAFETY: as above.
                unsafe { self.replay_iter_u32(&mut ov, i) };
            }
        }
        // Read the replayed bytes back out in journal layout, mirroring
        // what `journal_capture` over the committed state would return.
        let mut out = Vec::with_capacity(pre_image.len());
        for f in &fps {
            out.extend_from_slice(ov.get(f.lo, f.hi - f.lo).expect("seeded footprint"));
        }
        Some(out)
    }

    unsafe fn corrupt_byte(
        &self,
        range: Range<u64>,
        offset: u64,
        xor: u8,
        in_footprint: bool,
    ) -> bool {
        if in_footprint {
            let Some(fps) = self.write_footprints(range) else {
                return false;
            };
            let total: u64 = fps.iter().map(|f| f.hi - f.lo).sum();
            if total == 0 {
                return false;
            }
            let mut pos = offset % total;
            for f in &fps {
                let len = f.hi - f.lo;
                if pos < len {
                    // SAFETY: inside an analyzer-bounded footprint (hence
                    // in-bounds), and the caller holds the chunk's claim.
                    unsafe {
                        let p = self.prog.base().add((f.lo + pos) as usize);
                        *p ^= xor;
                    }
                    return true;
                }
                pos -= len;
            }
            unreachable!("pos < total walks into some footprint");
        } else {
            // Target a byte *outside* every write footprint of the whole
            // loop — corruption no per-chunk verifier can see.
            let Some(fps) = self.write_footprints(0..self.spec.iters) else {
                return false;
            };
            let merged = merge_intervals(&fps);
            let len = self.prog.workload.space.extent();
            let mut gaps: Vec<(u64, u64)> = Vec::new();
            let mut cursor = 0u64;
            for (lo, hi) in merged {
                if cursor < lo {
                    gaps.push((cursor, lo));
                }
                cursor = cursor.max(hi);
            }
            if cursor < len {
                gaps.push((cursor, len));
            }
            if gaps.is_empty() {
                return false; // footprints cover the whole arena
            }
            let start = offset % len;
            let addr = gaps
                .iter()
                .find(|(_, hi)| *hi > start)
                .map(|(lo, _)| start.max(*lo))
                .unwrap_or(gaps[0].0); // wrap around
                                       // SAFETY: `addr < len` (inside the arena), claim held.
            unsafe {
                let p = self.prog.base().add(addr as usize);
                *p ^= xor;
            }
            true
        }
    }

    unsafe fn scrub_digest(&self) -> Option<u64> {
        let fps = self.write_footprints(0..self.spec.iters)?;
        let merged = merge_intervals(&fps);
        let len = self.prog.workload.space.extent();
        let mut outside = Vec::new();
        let mut cursor = 0u64;
        let digest_gap = |lo: u64, hi: u64, outside: &mut Vec<u8>| {
            // SAFETY (of the enclosed read): `[lo, hi)` is inside the
            // arena and outside every write footprint; the quiescence
            // contract rules out concurrent writers anyway.
            let bytes = unsafe {
                std::slice::from_raw_parts(self.prog.base().add(lo as usize), (hi - lo) as usize)
            };
            outside.extend_from_slice(bytes);
        };
        for (lo, hi) in merged {
            if cursor < lo {
                digest_gap(cursor, lo, &mut outside);
            }
            cursor = cursor.max(hi);
        }
        if cursor < len {
            digest_gap(cursor, len, &mut outside);
        }
        Some(fnv64(&outside))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, FaultyKernel};
    use crate::runner::{
        run_cascaded, try_run_cascaded, FaultEvent, RtPolicy, RunnerConfig, Tolerance,
    };
    use cascade_trace::{AddressSpace, IndexStore, StreamRef};
    use std::time::Duration;

    fn scatter_workload(n: u64) -> (Workload, Arena) {
        let mut space = AddressSpace::new();
        let rho = space.alloc("rho", 8, n / 4);
        let pq = space.alloc("pq", 8, n);
        let ij = space.alloc("ij", 4, n);
        let mut index = IndexStore::new();
        // Colliding scatter: many iterations hit the same element, so the
        // result depends on iteration order (RMW chain).
        index.set(ij, (0..n).map(|i| ((i * 7919) % (n / 4)) as u32).collect());
        let spec = LoopSpec {
            name: "scatter".into(),
            iters: n,
            refs: vec![
                StreamRef {
                    name: "pq(i)",
                    array: pq,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: false,
                },
                StreamRef {
                    name: "rho(ij(i))",
                    array: rho,
                    pattern: Pattern::Indirect {
                        index: ij,
                        ibase: 0,
                        istride: 1,
                    },
                    mode: Mode::Modify,
                    bytes: 8,
                    hoistable: false,
                },
            ],
            compute: 2.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        let w = Workload {
            space,
            index,
            loops: vec![spec],
        };
        let mut arena = Arena::new(&w.space);
        for i in 0..n {
            arena.set_f64(&w.space, pq, i, (i % 13) as f64 * 0.125 + 0.25);
        }
        arena.install_indices(&w.space, &w.index);
        (w, arena)
    }

    fn run_once(policy: RtPolicy, threads: usize, n: u64) -> u64 {
        let (w, arena) = scatter_workload(n);
        let mut prog = SpecProgram::new(w, arena).unwrap();
        let k = prog.kernel(0);
        run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: threads,
                iters_per_chunk: 257,
                policy,
                poll_batch: 16,
            },
        );
        prog.checksum()
    }

    fn sequential_checksum(n: u64) -> u64 {
        let (w, arena) = scatter_workload(n);
        let mut prog = SpecProgram::new(w, arena).unwrap();
        let k = prog.kernel(0);
        // SAFETY: single-threaded.
        unsafe { k.execute(0..k.iters()) };
        prog.checksum()
    }

    #[test]
    fn cascaded_scatter_is_bitwise_sequential() {
        let n = 8_192;
        let expected = sequential_checksum(n);
        for policy in [RtPolicy::None, RtPolicy::Prefetch, RtPolicy::Restructure] {
            for threads in [1, 2, 4] {
                let got = run_once(policy, threads, n);
                assert_eq!(got, expected, "policy {policy:?} threads {threads}");
            }
        }
    }

    #[test]
    fn packed_execution_matches_unpacked_exactly() {
        let (w, arena) = scatter_workload(4096);
        let mut p1 = SpecProgram::new(w.clone(), arena.clone()).unwrap();
        let mut p2 = SpecProgram::new(w, arena).unwrap();
        {
            let k = p1.kernel(0);
            // SAFETY: single-threaded.
            unsafe { k.execute(0..k.iters()) };
        }
        {
            let k = p2.kernel(0);
            let mut buf = Vec::new();
            for i in 0..k.iters() {
                assert!(k.pack_iter(i, &mut buf));
            }
            // SAFETY: single-threaded.
            unsafe { k.execute_packed(0..k.iters(), &buf) };
        }
        assert_eq!(p1.checksum(), p2.checksum());
    }

    #[test]
    #[should_panic(expected = "packed buffer underrun")]
    fn truncated_packed_buffer_reports_underrun_with_context() {
        let (w, arena) = scatter_workload(64);
        let prog = SpecProgram::new(w, arena).unwrap();
        let k = prog.kernel(0);
        let mut buf = Vec::new();
        for i in 0..4 {
            assert!(k.pack_iter(i, &mut buf));
        }
        buf.truncate(buf.len() - 3); // corrupt: last operand is short
                                     // SAFETY: single-threaded.
        unsafe { k.execute_packed(0..4, &buf) };
    }

    #[test]
    fn prefetch_iter_is_pure() {
        let (w, arena) = scatter_workload(1024);
        let mut prog = SpecProgram::new(w, arena).unwrap();
        let before = prog.checksum();
        let k = prog.kernel(0);
        for i in 0..k.iters() {
            k.prefetch_iter(i);
        }
        assert_eq!(prog.checksum(), before);
    }

    /// The old validator banned *any* read of a written array; the
    /// analyzer proves this disjoint-halves loop is packable and admits
    /// it — and the run stays bitwise-sequential on real threads.
    #[test]
    fn disjoint_read_of_written_array_is_admitted_and_correct() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 64);
        let spec = LoopSpec {
            name: "inplace".into(),
            iters: 32,
            refs: vec![
                StreamRef {
                    name: "a(i)",
                    array: a,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: false,
                },
                StreamRef {
                    name: "a(i+32)",
                    array: a,
                    pattern: Pattern::Affine {
                        base: 32,
                        stride: 1,
                    },
                    mode: Mode::Write,
                    bytes: 8,
                    hoistable: false,
                },
            ],
            compute: 1.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        let w = Workload {
            space,
            index: IndexStore::new(),
            loops: vec![spec],
        };
        let mut arena = Arena::new(&w.space);
        for i in 0..64 {
            arena.set_f64(&w.space, a, i, i as f64 * 0.5 + 1.0);
        }
        let expected = {
            let mut prog = SpecProgram::new(w.clone(), arena.clone()).unwrap();
            let k = prog.kernel(0);
            // SAFETY: single-threaded.
            unsafe { k.execute(0..k.iters()) };
            prog.checksum()
        };
        let mut prog = SpecProgram::new(w, arena).unwrap();
        assert_eq!(
            prog.loop_report(0).find_ref("a(i)").unwrap().verdict,
            cascade_analyze::Verdict::Packable
        );
        assert_eq!(prog.kernel(0).helper_horizon(), None);
        let k = prog.kernel(0);
        run_cascaded(
            &k,
            &RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 4,
                policy: RtPolicy::Restructure,
                poll_batch: 4,
            },
        );
        assert_eq!(prog.checksum(), expected);
    }

    /// A first-order recurrence (read y(i-1), write y(i)) was formerly
    /// unrunnable on real threads; the analyzer classifies the carried
    /// read HorizonSafe{lag: 1} and the horizon-gated runner keeps the
    /// cascaded run bitwise-sequential under every policy.
    #[test]
    fn recurrence_is_horizon_safe_and_bitwise_on_threads() {
        let mut space = AddressSpace::new();
        let n = 4096u64;
        let x = space.alloc("x", 8, n);
        let y = space.alloc("y", 8, n + 1);
        let spec = LoopSpec {
            name: "recurrence".into(),
            iters: n,
            refs: vec![
                StreamRef {
                    name: "x(i)",
                    array: x,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: false,
                },
                StreamRef {
                    name: "y(i-1)",
                    array: y,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: false,
                },
                StreamRef {
                    name: "y(i)",
                    array: y,
                    pattern: Pattern::Affine { base: 1, stride: 1 },
                    mode: Mode::Write,
                    bytes: 8,
                    hoistable: false,
                },
            ],
            compute: 2.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        let w = Workload {
            space,
            index: IndexStore::new(),
            loops: vec![spec],
        };
        let mut arena = Arena::new(&w.space);
        for i in 0..n {
            arena.set_f64(&w.space, x, i, (i % 17) as f64 * 0.25 - 1.0);
        }
        arena.set_f64(&w.space, y, 0, 0.75);
        let expected = {
            let mut prog = SpecProgram::new(w.clone(), arena.clone()).unwrap();
            let k = prog.kernel(0);
            // SAFETY: single-threaded.
            unsafe { k.execute(0..k.iters()) };
            prog.checksum()
        };
        for policy in [RtPolicy::None, RtPolicy::Prefetch, RtPolicy::Restructure] {
            for threads in [2, 4] {
                let mut prog = SpecProgram::new(w.clone(), arena.clone()).unwrap();
                assert_eq!(prog.kernel(0).helper_horizon(), Some(1));
                let k = prog.kernel(0);
                run_cascaded(
                    &k,
                    &RunnerConfig {
                        nthreads: threads,
                        iters_per_chunk: 129,
                        policy,
                        poll_batch: 8,
                    },
                );
                assert_eq!(
                    prog.checksum(),
                    expected,
                    "policy {policy:?} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn mixed_widths_are_rejected() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 64);
        let b = space.alloc("b", 4, 64);
        let spec = LoopSpec {
            name: "mixed".into(),
            iters: 32,
            refs: vec![
                StreamRef {
                    name: "a(i)",
                    array: a,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: false,
                },
                StreamRef {
                    name: "b(i)",
                    array: b,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Write,
                    bytes: 4,
                    hoistable: false,
                },
            ],
            compute: 1.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        let w = Workload {
            space,
            index: IndexStore::new(),
            loops: vec![spec],
        };
        let arena = Arena::new(&w.space);
        let err = SpecProgram::new(w, arena).unwrap_err();
        assert!(err.has_code(cascade_trace::DiagCode::MixedWidth), "{err}");
        assert!(format!("{err}").contains("uniform operand width"), "{err}");
    }

    #[test]
    fn arena_mismatch_is_a_typed_error() {
        let (w, _) = scatter_workload(64);
        let (_, small_arena) = scatter_workload(32);
        let err = SpecProgram::new(w, small_arena).unwrap_err();
        assert!(
            err.has_code(cascade_trace::DiagCode::ArenaMismatch),
            "{err}"
        );
    }

    #[test]
    fn past_the_end_stream_is_rejected() {
        // The interpreter only debug-asserts addresses, so a stream whose
        // elements run past its array would corrupt neighboring arrays in
        // release builds — the analyzer must reject it up front (AN008).
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 48);
        let spec = LoopSpec {
            name: "overshoot".into(),
            iters: 64,
            refs: vec![StreamRef {
                name: "a(i)",
                array: a,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Write,
                bytes: 8,
                hoistable: false,
            }],
            compute: 1.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        let w = Workload {
            space,
            index: IndexStore::new(),
            loops: vec![spec],
        };
        let arena = Arena::new(&w.space);
        let err = SpecProgram::new(w, arena).unwrap_err();
        assert!(err.has_code(cascade_trace::DiagCode::OutOfBounds), "{err}");
    }

    #[test]
    fn journal_rollback_restores_an_interrupted_chunk_bitwise() {
        // Capture the undo journal for a chunk, run only a *prefix* of it
        // (a mid-mutation interruption), then roll back: the whole
        // program state must return to its exact pre-chunk bytes.
        let (w, arena) = scatter_workload(2_048);
        let mut prog = SpecProgram::new(w, arena).unwrap();
        let pristine = prog.checksum();
        let range = 512u64..1024;
        let mut jbuf = Vec::new();
        {
            let k = prog.kernel(0);
            // SAFETY: single-threaded test, trivially exclusive.
            assert!(unsafe { k.journal_capture(range.clone(), &mut jbuf) });
            assert!(!jbuf.is_empty());
            // SAFETY: as above.
            unsafe { k.execute(range.start..range.start + 100) };
        }
        assert_ne!(prog.checksum(), pristine, "the prefix must mutate state");
        {
            let k = prog.kernel(0);
            // SAFETY: single-threaded; `jbuf` is the unmodified capture
            // over the same range.
            unsafe { k.journal_rollback(range.clone(), &jbuf) };
        }
        assert_eq!(prog.checksum(), pristine, "rollback must restore bitwise");
    }

    #[test]
    fn mid_mutation_panic_rolls_back_and_retries_in_cascade() {
        // The acceptance path for journaled recovery: a kernel with *no*
        // fail-stop promise panics after partial writes; the worker rolls
        // the chunk's journal back, hands it to a survivor, and the run
        // finishes cascaded and bitwise-equal to sequential.
        let n = 8_192;
        let expected = sequential_checksum(n);
        let (w, arena) = scatter_workload(n);
        let mut prog = SpecProgram::new(w, arena).unwrap();
        let stats = {
            let plan =
                FaultPlan::new(257).inject(7, FaultKind::PanicMidMutation { after_iters: 100 });
            let k = FaultyKernel::new(prog.kernel(0), plan);
            try_run_cascaded(
                &k,
                &RunnerConfig {
                    nthreads: 3,
                    iters_per_chunk: 257,
                    policy: RtPolicy::None,
                    poll_batch: 4,
                },
                &Tolerance::retrying(Duration::from_millis(50)),
            )
            .expect("journaled retry must recover in-cascade")
        };
        assert!(
            !stats.degraded,
            "retry must stay cascaded, not salvage: {:?}",
            stats.faults
        );
        assert_eq!(stats.retries, 1);
        let rolled = stats
            .faults
            .iter()
            .position(|f| matches!(f, FaultEvent::ChunkRolledBack { chunk: 7, .. }))
            .unwrap_or_else(|| panic!("missing rollback event: {:?}", stats.faults));
        let retried = stats
            .faults
            .iter()
            .position(|f| matches!(f, FaultEvent::ChunkRetried { chunk: 7, .. }))
            .unwrap_or_else(|| panic!("missing retry event: {:?}", stats.faults));
        assert!(
            rolled < retried,
            "rollback must happen-before the re-execution: {:?}",
            stats.faults
        );
        assert_eq!(stats.threads.iter().map(|t| t.rollbacks).sum::<u64>(), 1);
        assert!(stats.threads.iter().map(|t| t.journal_bytes).sum::<u64>() > 0);
        assert_eq!(prog.checksum(), expected, "retried run must be bitwise");
    }

    #[test]
    fn replay_reproduces_committed_bytes_without_touching_shared_memory() {
        // Execute a chunk, then replay it from its pre-image: the replay
        // must reproduce the committed footprint bytes exactly (this is
        // the verification read path) while leaving the arena untouched.
        let (w, arena) = scatter_workload(2_048);
        let mut prog = SpecProgram::new(w, arena).unwrap();
        let range = 512u64..1024;
        let (pre, committed, replayed) = {
            let k = prog.kernel(0);
            let mut pre = Vec::new();
            // SAFETY: single-threaded test, trivially exclusive.
            unsafe {
                assert!(k.journal_capture(range.clone(), &mut pre));
                k.execute(range.clone());
            }
            let mut committed = Vec::new();
            // SAFETY: as above.
            unsafe { assert!(k.journal_capture(range.clone(), &mut committed)) };
            assert_ne!(pre, committed, "the chunk must mutate its footprint");
            // SAFETY: range committed, single-threaded.
            let replayed = unsafe { k.replay_footprint(range.clone(), &pre) }
                .expect("SpecKernel footprints are resolvable");
            (pre, committed, replayed)
        };
        assert_eq!(replayed, committed, "clean replay matches the commit");
        let after = prog.checksum();
        {
            let k = prog.kernel(0);
            // SAFETY: as above.
            let again = unsafe { k.replay_footprint(range.clone(), &pre) }.unwrap();
            assert_eq!(again, replayed, "replay is deterministic");
        }
        assert_eq!(prog.checksum(), after, "replay never writes shared memory");
        // Now corrupt one committed byte: a fresh replay disagrees with
        // what the arena holds — exactly the mismatch the verifier hunts.
        {
            let k = prog.kernel(0);
            // SAFETY: single-threaded.
            unsafe {
                assert!(k.corrupt_byte(range.clone(), 7, 0x40, true));
            }
            let mut now = Vec::new();
            // SAFETY: as above.
            unsafe { assert!(k.journal_capture(range.clone(), &mut now)) };
            assert_ne!(now, replayed, "the flip is visible in the footprint");
        }
    }

    #[test]
    fn out_of_footprint_flip_is_invisible_to_the_chunk_but_moves_the_scrub() {
        let (w, arena) = scatter_workload(1_024);
        let prog = SpecProgram::new(w, arena).unwrap();
        let k = prog.kernel(0);
        // SAFETY: single-threaded throughout.
        unsafe {
            let scrub0 = k.scrub_digest().expect("resolvable footprints");
            let mut fp0 = Vec::new();
            assert!(k.journal_capture(0..k.iters(), &mut fp0));
            assert!(k.corrupt_byte(0..256, 12345, 0x01, false));
            let mut fp1 = Vec::new();
            assert!(k.journal_capture(0..k.iters(), &mut fp1));
            assert_eq!(fp0, fp1, "the flip landed outside every write footprint");
            let scrub1 = k.scrub_digest().unwrap();
            assert_ne!(scrub0, scrub1, "the scrubber sees it");
            // Flip it back: the scrub digest returns to its old value.
            assert!(k.corrupt_byte(0..256, 12345, 0x01, false));
            assert_eq!(k.scrub_digest().unwrap(), scrub0);
        }
    }

    #[test]
    fn mid_mutation_panic_salvages_bitwise_after_rollback() {
        // Salvage-only tolerance: the journaled rollback makes the faulted
        // chunk pristine, so the sequential completion pass re-runs it
        // soundly — `salvage_unsound` no longer fires for journalable
        // kernels.
        let n = 8_192;
        let expected = sequential_checksum(n);
        let (w, arena) = scatter_workload(n);
        let mut prog = SpecProgram::new(w, arena).unwrap();
        let stats = {
            let plan =
                FaultPlan::new(257).inject(7, FaultKind::PanicMidMutation { after_iters: 100 });
            let k = FaultyKernel::new(prog.kernel(0), plan);
            try_run_cascaded(
                &k,
                &RunnerConfig {
                    nthreads: 3,
                    iters_per_chunk: 257,
                    policy: RtPolicy::None,
                    poll_batch: 4,
                },
                &Tolerance::resilient(Duration::from_millis(50)),
            )
            .expect("journaled salvage must recover")
        };
        assert!(stats.degraded);
        assert!(
            stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::ChunkRolledBack { chunk: 7, .. })),
            "missing rollback event: {:?}",
            stats.faults
        );
        assert!(
            stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::Salvaged { from_chunk: 7, .. })),
            "missing salvage event: {:?}",
            stats.faults
        );
        assert_eq!(prog.checksum(), expected, "salvaged run must be bitwise");
    }
}

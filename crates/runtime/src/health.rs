//! Worker health tracking for in-cascade fault recovery: heartbeats,
//! strike counts with exponential backoff, and quarantine.
//!
//! The recovery ladder (see `docs/ROBUSTNESS.md`) needs to distinguish a
//! worker that is *slow* (transient stall: deschedule, long chunk) from
//! one that is *gone* (crashed, wedged). The [`HealthRegistry`] makes that
//! call: each time a watchdog window expires on a suspect worker the
//! detector records a **strike**, and the suspect is granted an
//! exponentially growing backoff window (`base_backoff * 2^strikes`) to
//! show progress. A worker whose **heartbeat** (completed-chunk counter)
//! advances between strikes is healed — its strikes reset. Only when
//! `strike_limit` consecutive no-progress strikes accumulate is the worker
//! **quarantined**: removed from the ownership roster so its remaining
//! chunks are remapped across survivors, never to execute again in this
//! run (or, for a loop sequence, any later loop).
//!
//! All state is atomics plus one timestamp mutex per worker; the hot path
//! (a heartbeat per completed chunk, a quarantine check per poll batch)
//! never takes a lock.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::token::lock_recover;

/// What a detector should do about a suspect worker after a strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrikeVerdict {
    /// Give the suspect this much longer before striking again; the
    /// duration grows exponentially with the strike count.
    Backoff {
        /// How long to extend the watch before the next strike.
        wait: Duration,
        /// `true` when this call recorded a new strike; `false` when it
        /// was rate-limited into an already-open backoff window (so only
        /// one detector records the strike event).
        fresh: bool,
    },
    /// The strike limit is exhausted: quarantine the suspect.
    Quarantine,
}

/// Tuning knobs of the strike/quarantine ladder.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Consecutive no-progress strikes before quarantine.
    pub strike_limit: u32,
    /// First backoff window; doubles per strike.
    pub base_backoff: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            strike_limit: 3,
            base_backoff: Duration::from_millis(10),
        }
    }
}

#[derive(Debug)]
struct WorkerHealth {
    /// Completed-chunk counter: the worker's progress heartbeat.
    heartbeats: AtomicU64,
    /// Consecutive no-progress strikes.
    strikes: AtomicU32,
    /// Heartbeat value observed at the last strike (healing detector).
    beat_at_strike: AtomicU64,
    /// Proven corruption verdicts against this worker (never healed:
    /// wrong bytes are not a transient condition the way a stall is).
    corruption_strikes: AtomicU32,
    quarantined: AtomicBool,
    /// When the current backoff window ends; rate-limits concurrent
    /// detectors so N waiters striking at once count as one strike.
    backoff_until: Mutex<Option<Instant>>,
}

impl WorkerHealth {
    fn new() -> Self {
        WorkerHealth {
            heartbeats: AtomicU64::new(0),
            strikes: AtomicU32::new(0),
            beat_at_strike: AtomicU64::new(0),
            corruption_strikes: AtomicU32::new(0),
            quarantined: AtomicBool::new(false),
            backoff_until: Mutex::new(None),
        }
    }
}

/// Per-run (or per-sequence) health state of every worker thread.
#[derive(Debug)]
pub struct HealthRegistry {
    cfg: HealthConfig,
    workers: Vec<WorkerHealth>,
}

impl HealthRegistry {
    /// A registry for `nthreads` workers, all healthy.
    pub fn new(nthreads: usize, cfg: HealthConfig) -> Self {
        HealthRegistry {
            cfg,
            workers: (0..nthreads).map(|_| WorkerHealth::new()).collect(),
        }
    }

    /// Record progress for worker `t` (called once per completed chunk).
    #[inline]
    pub fn heartbeat(&self, t: u64) {
        self.workers[t as usize]
            .heartbeats
            .fetch_add(1, Ordering::Release);
    }

    /// Completed-chunk count of worker `t`.
    #[inline]
    pub fn heartbeats(&self, t: u64) -> u64 {
        self.workers[t as usize].heartbeats.load(Ordering::Acquire)
    }

    /// Record a no-progress strike against suspect `t`, returning what the
    /// detector should do. Strikes are rate-limited: while a backoff
    /// window is open, concurrent detectors get the remaining window
    /// instead of a fresh strike. A heartbeat since the last strike heals
    /// the suspect (strikes reset) — suspicion must be *consecutive*.
    pub fn strike(&self, t: u64) -> StrikeVerdict {
        let w = &self.workers[t as usize];
        let now = Instant::now();
        // A worker can panic while holding this lock (the injected-fault
        // tests do exactly that); recover instead of letting one fault
        // cascade `PoisonError` panics through every surviving detector.
        let mut until = lock_recover(&w.backoff_until);
        if let Some(deadline) = *until {
            if now < deadline {
                return StrikeVerdict::Backoff {
                    wait: deadline - now,
                    fresh: false,
                };
            }
        }
        let beats = w.heartbeats.load(Ordering::Acquire);
        if beats > w.beat_at_strike.load(Ordering::Acquire) {
            // Progress since the last strike: transient, heal.
            w.strikes.store(0, Ordering::Release);
        }
        w.beat_at_strike.store(beats, Ordering::Release);
        let strikes = w.strikes.fetch_add(1, Ordering::AcqRel) + 1;
        if strikes > self.cfg.strike_limit {
            return StrikeVerdict::Quarantine;
        }
        let backoff = self
            .cfg
            .base_backoff
            .saturating_mul(1u32 << (strikes - 1).min(16));
        *until = Some(now + backoff);
        StrikeVerdict::Backoff {
            wait: backoff,
            fresh: true,
        }
    }

    /// Current strike count of worker `t`.
    pub fn strikes(&self, t: u64) -> u32 {
        self.workers[t as usize].strikes.load(Ordering::Acquire)
    }

    /// Record a *proven* corruption verdict against worker `t` (blame
    /// assigned by the tiebreak re-execution — see `docs/ROBUSTNESS.md`,
    /// "Silent data corruption"). Unlike stall strikes, corruption
    /// strikes never heal: a worker that computed wrong bytes once is
    /// suspect for the rest of the run. Returns `true` when the strike
    /// crossed the repeat threshold and the worker should be quarantined
    /// (the first offense is recovered in place; the second removes the
    /// worker from the roster).
    pub fn corruption_strike(&self, t: u64) -> bool {
        let strikes = self.workers[t as usize]
            .corruption_strikes
            .fetch_add(1, Ordering::AcqRel)
            + 1;
        strikes >= 2
    }

    /// Proven corruption verdicts against worker `t`.
    pub fn corruption_strikes(&self, t: u64) -> u32 {
        self.workers[t as usize]
            .corruption_strikes
            .load(Ordering::Acquire)
    }

    /// Quarantine worker `t`. Returns `true` for the first caller (who
    /// alone records the fault event and remaps the roster).
    pub fn quarantine(&self, t: u64) -> bool {
        !self.workers[t as usize]
            .quarantined
            .swap(true, Ordering::AcqRel)
    }

    /// Is worker `t` quarantined?
    #[inline]
    pub fn is_quarantined(&self, t: u64) -> bool {
        self.workers[t as usize].quarantined.load(Ordering::Acquire)
    }

    /// Number of quarantined workers.
    pub fn quarantined_count(&self) -> u64 {
        self.workers
            .iter()
            .filter(|w| w.quarantined.load(Ordering::Acquire))
            .count() as u64
    }

    /// Thread ids not quarantined, ascending.
    pub fn live(&self) -> Vec<u64> {
        (0..self.workers.len() as u64)
            .filter(|&t| !self.is_quarantined(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> HealthConfig {
        HealthConfig {
            strike_limit: 2,
            base_backoff: Duration::from_millis(1),
        }
    }

    #[test]
    fn strikes_escalate_to_quarantine() {
        let h = HealthRegistry::new(2, fast_cfg());
        match h.strike(1) {
            StrikeVerdict::Backoff { wait, fresh } => {
                assert_eq!(wait, Duration::from_millis(1));
                assert!(fresh);
            }
            v => panic!("expected first backoff, got {v:?}"),
        }
        std::thread::sleep(Duration::from_millis(2));
        match h.strike(1) {
            StrikeVerdict::Backoff { wait, fresh } => {
                assert_eq!(wait, Duration::from_millis(2), "doubles");
                assert!(fresh);
            }
            v => panic!("expected second backoff, got {v:?}"),
        }
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(h.strike(1), StrikeVerdict::Quarantine);
        assert!(h.quarantine(1), "first quarantine call wins");
        assert!(!h.quarantine(1), "second is a no-op");
        assert!(h.is_quarantined(1));
        assert_eq!(h.quarantined_count(), 1);
        assert_eq!(h.live(), vec![0]);
    }

    #[test]
    fn corruption_strikes_quarantine_on_repeat_and_never_heal() {
        let h = HealthRegistry::new(2, fast_cfg());
        assert!(!h.corruption_strike(1), "first offense: recover in place");
        assert_eq!(h.corruption_strikes(1), 1);
        // Progress heals *stall* strikes, never corruption verdicts.
        h.heartbeat(1);
        assert_eq!(h.corruption_strikes(1), 1);
        assert!(h.corruption_strike(1), "second offense: quarantine");
        assert_eq!(h.corruption_strikes(1), 2);
        assert_eq!(h.corruption_strikes(0), 0, "innocent worker untouched");
    }

    #[test]
    fn heartbeat_heals_strikes() {
        let h = HealthRegistry::new(1, fast_cfg());
        assert!(matches!(h.strike(0), StrikeVerdict::Backoff { .. }));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(h.strike(0), StrikeVerdict::Backoff { .. }));
        assert_eq!(h.strikes(0), 2);
        // The suspect makes progress: suspicion resets instead of
        // escalating to quarantine on the next strike.
        h.heartbeat(0);
        std::thread::sleep(Duration::from_millis(5));
        match h.strike(0) {
            StrikeVerdict::Backoff { .. } => {}
            v => panic!("healed worker must not be quarantined, got {v:?}"),
        }
        assert_eq!(h.strikes(0), 1, "strikes reset on progress");
    }

    /// Regression: a worker panicking while it holds `backoff_until`
    /// poisons the mutex; `strike` must recover the guard and keep
    /// functioning instead of turning one fault into a registry-wide
    /// panic cascade.
    #[test]
    fn strike_survives_a_lock_poisoned_by_a_panicking_holder() {
        let h = std::sync::Arc::new(HealthRegistry::new(1, fast_cfg()));
        let h2 = h.clone();
        let _ = std::thread::spawn(move || {
            let _guard = h2.workers[0].backoff_until.lock().unwrap();
            panic!("die holding the backoff lock");
        })
        .join();
        assert!(h.workers[0].backoff_until.is_poisoned());
        match h.strike(0) {
            StrikeVerdict::Backoff { fresh: true, .. } => {}
            v => panic!("strike must survive the poisoned lock, got {v:?}"),
        }
        assert_eq!(h.strikes(0), 1);
    }

    #[test]
    fn concurrent_strikes_within_backoff_count_once() {
        let h = HealthRegistry::new(
            1,
            HealthConfig {
                strike_limit: 2,
                base_backoff: Duration::from_millis(50),
            },
        );
        assert!(matches!(
            h.strike(0),
            StrikeVerdict::Backoff { fresh: true, .. }
        ));
        // A second detector inside the open window must not escalate.
        assert!(matches!(
            h.strike(0),
            StrikeVerdict::Backoff { fresh: false, .. }
        ));
        assert_eq!(h.strikes(0), 1, "rate-limited to one strike per window");
    }
}

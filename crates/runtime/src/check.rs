//! Deterministic model checking of the token/poison/retry protocol.
//!
//! The runner's recovery ladder (see [`crate::runner`]) rests on a small
//! set of CAS transitions over one atomic word: grant → claim → advance,
//! claim → unclaim (retry hand-back), anything → poison. Races between
//! waiters, detectors, recovering workers, and late finishers are exactly
//! where hand-written reasoning fails, so this module writes the protocol
//! down as an explicit state machine ([`Protocol`]) and lets the
//! `interleave` shim enumerate **every** thread interleaving, checking
//! eight invariants in every reachable state:
//!
//! 1. **Exactly-one executor** — no two threads inside a chunk body at
//!    once;
//! 2. **No lost or resurrected token** — the token position never moves
//!    backward, a poisoned token stays poisoned, and a run never
//!    deadlocks with the token still live (a lost hand-off is a terminal
//!    non-accepting state, which the explorer reports as a deadlock);
//! 3. **First-cause-wins poisoning** — concurrent poisoners never
//!    overwrite the first recorded cause;
//! 4. **No chunk executed twice after mutation** — a retry may re-run a
//!    chunk only if its body never started writing (fail-stop faults)
//!    or its partial writes were restored from the undo journal;
//! 5. **No torn state observable after rollback** — a chunk whose
//!    partial writes have not been rolled back is never re-claimed: the
//!    rollback happens-before any re-execution claim, and a clean run
//!    never accepts with a torn chunk;
//! 6. **Cancellation never observable as torn state** — whenever the
//!    run's terminal cause is *cancelled*, every chunk is bitwise clean
//!    (the in-flight chunk either rolled back under its claim or
//!    committed whole) and the committed chunks form a contiguous
//!    prefix a sequential resume can pick up from;
//! 7. **Exactly one terminal outcome per run** — a run either completes
//!    cleanly or poisons, never both: a cancel that arrives after the
//!    last chunk changes nothing, and a cancelled run never reads as
//!    completed;
//! 8. **Checkpoint capture happens-before token handoff** — the leader
//!    captures the durable checkpoint of chunk *k* while still holding
//!    the claim, so no capture ever observes a chunk beyond *k* mutated
//!    or any chunk torn: a checkpoint can never persist an uncommitted
//!    write.
//!
//! The model follows the runner's code paths step for step: `Seek`
//! mirrors `Roster::next_owned`, `Claim`/`Advance` mirror
//! `Token::try_claim`/`try_advance`, `Recover`/`HandBack` mirror
//! `recover_from_panic` (remap under the roster lock, then the unclaim
//! CAS as a separate step — the dangerous window in between is explored),
//! and `DetectStall` mirrors `declare_stall` with the strike ladder
//! compressed to its final verdict. Cancellation is modeled too:
//! `CancelAt` fires the run's cancel flag at an arbitrary point
//! (exploring it at every schedule position covers every cancel
//! timing), `ObserveCancel` mirrors the `wait_to_claim` cancel check,
//! and `CancelAbort`/`CancelCommit` mirror the post-body abort — roll
//! the journaled chunk back under the claim, or commit the
//! unjournalable chunk whole. Checkpointing is modeled as the runner
//! implements it: with `with_checkpointing` the committing executor's
//! `CkptCapture` step reads the arena *between* the commit and the
//! advance CAS, still under the claim — and the capture check flags any
//! schedule where the read could observe an uncommitted write.
//! Abstractions: backoff timing is
//! dropped (any detector may fire whenever the real watchdog *could*
//! have), and strikes escalate immediately — both over-approximate the
//! real scheduler, so the verified state space is a superset of what the
//! runtime can reach.
//!
//! [`Bug`] deliberately re-introduces protocol mistakes (skipping the
//! claim CAS, plain-store release, last-cause-wins poisoning, unclaiming
//! before the journal rollback — on the retry path or the cancel-abort
//! path) so the tests can prove the checker actually *catches*
//! violations instead of vacuously passing.
//!
//! A second, independent state machine ([`DoAcrossModel`]) covers the
//! plan-driven runtime's DOACROSS post/wait protocol
//! ([`crate::sched`]): post happens-before wait-satisfied, no worker
//! reads an iteration before its lag window is committed, exactly-once
//! execution. Its seeded bugs ([`DaBug`]) invert the execute/publish
//! order and shorten the gate window by one — both caught by
//! exploration.
//!
//! A third state machine ([`VerifyModel`]) covers the verified-execution
//! protocol (checksummed handoffs + blame, `docs/ROBUSTNESS.md` §"Silent
//! data corruption") with three invariants: **verification
//! happens-before downstream commit visibility** when a `VerifyPolicy`
//! is armed (the claimant of chunk `j` verifies chunk `j-1`'s packet
//! before its own execute phase), **a corrupted chunk is never part of
//! the committed prefix** a typed error reports (the fail path rolls the
//! chunk back to its pre-image before poisoning), and **blame never
//! convicts an innocent worker** under a single-fault assumption
//! (conviction requires the sequential tiebreak — two agreeing replays —
//! *and* the published digest matching the committed bytes, which proves
//! the executor computed them). Its seeded bugs ([`VBug`]) verify after
//! the downstream execute instead of before
//! ([`VBug::VerifyAfterHandoff`]) and blame on a lone mismatch without
//! the tiebreak ([`VBug::BlameWithoutTiebreak`]) — both caught by
//! exploration.

use interleave::{explore, Exploration, Model};

/// Modeled token word: the three decoded states of [`crate::TokenView`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Tok {
    /// Chunk granted, unclaimed (`Granted` in the runtime).
    Granted(u8),
    /// Chunk claimed by an executor (`EXEC_BIT` set).
    Claimed(u8),
    /// Poisoned (`u64::MAX`).
    Poisoned,
}

impl Tok {
    /// The chunk the cascade is at, `None` when poisoned.
    fn position(self) -> Option<u8> {
        match self {
            Tok::Granted(c) | Tok::Claimed(c) => Some(c),
            Tok::Poisoned => None,
        }
    }
}

/// A fault a modeled thread is scripted to inject, once.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ModelFault {
    /// Panic inside the chunk body before any write lands (fail-stop):
    /// the chunk is legally retryable.
    PanicFailStop,
    /// Panic after partial writes (kernel not fail-stop, no journal):
    /// the chunk must never be re-run.
    PanicMidBody,
    /// Panic after partial writes on a kernel whose write-set the
    /// analyzer bounded: the worker restores the chunk's undo journal
    /// while still holding the claim, then retries as if the fault were
    /// fail-stop.
    PanicMidBodyJournaled,
    /// Panic in the helper phase: no claim held, body untouched.
    PanicHelper,
    /// Go quiet mid-body while holding the claim (a finite stall: the
    /// thread wakes and finishes eventually).
    Stall,
}

/// A deliberately seeded protocol bug, for negative tests: the checker
/// must catch each of these.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Bug {
    /// The faithful protocol.
    #[default]
    None,
    /// Execute without winning the claim CAS (the token stays granted):
    /// breaks exactly-one-executor / at-most-once execution.
    SkipClaim,
    /// Release with a plain store instead of a CAS: a late finisher
    /// resurrects a poisoned token.
    ResurrectToken,
    /// Poison with a store instead of a CAS: a later fault overwrites the
    /// first recorded cause.
    LastCauseWins,
    /// Hand the claim back (the unclaim CAS) *before* applying the undo
    /// journal: a survivor can re-claim the chunk while it is still
    /// torn, breaking rollback-happens-before-re-execution.
    UnclaimBeforeRollback,
    /// On the cancellation abort path, hand the claim back *before*
    /// rolling the in-flight chunk back: the unclaim re-publishes the
    /// chunk to the survivors while its memory is still torn, so a
    /// remap race lets another worker re-claim mid-rollback.
    UnclaimBeforeCancelRollback,
    /// Capture the checkpoint *after* the token handoff instead of
    /// before: a schedule lets the next chunk's executor claim and
    /// mutate memory before the late capture reads it, so the
    /// checkpoint persists an uncommitted write.
    CaptureAfterHandoff,
}

/// What one modeled thread is doing (mirrors the runner's worker loop).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Th {
    /// Between chunks: about to compute its next owned chunk.
    Idle { cursor: u8 },
    /// Helper done, polling the token for `chunk`. Keeps the cursor it
    /// seeked from: a remap may hand this thread an *earlier* chunk, and
    /// the re-seek must restart from the cursor, not from `chunk` (the
    /// runner's `wait_to_claim` re-seeks on every roster-epoch change).
    Waiting { chunk: u8, cursor: u8 },
    /// Won the claim: inside the chunk body.
    Executing { chunk: u8 },
    /// Gone quiet mid-body, claim held (will wake).
    Stalled { chunk: u8 },
    /// Body done, about to CAS the token forward.
    Releasing { chunk: u8 },
    /// Panicked; about to climb the recovery ladder.
    Recovering {
        chunk: u8,
        claimed: bool,
        fail_stop: bool,
    },
    /// Panicked mid-body with a captured journal; about to restore the
    /// chunk's write-set bitwise. `recovered` marks the seeded-bug path
    /// ([`Bug::UnclaimBeforeRollback`]) where the ladder already ran and
    /// the rollback is landing late, after the unclaim.
    RollingBack { chunk: u8, recovered: bool },
    /// Self-quarantined and remapped; about to hand the claim back.
    /// `rollback_after` is only ever true under
    /// [`Bug::UnclaimBeforeRollback`]: the undo journal is still
    /// unapplied and will run after the unclaim.
    HandingBack { chunk: u8, rollback_after: bool },
    /// Cancellation abort of a journaled chunk: the body completed but
    /// the run is cancelled, so the worker restores the chunk's undo
    /// journal. `unclaimed` marks the seeded-bug path
    /// ([`Bug::UnclaimBeforeCancelRollback`]) where the claim was
    /// handed back first and the rollback is landing late.
    CancelRollingBack { chunk: u8, unclaimed: bool },
    /// Checkpoint capture pending *after* the token handoff: only ever
    /// reached under [`Bug::CaptureAfterHandoff`] (the faithful order
    /// captures from `Releasing`, claim still held).
    Capturing { chunk: u8 },
    /// Fell through the ladder; about to poison the token. `cancelled`
    /// marks a poison whose cause is run cancellation rather than a
    /// fault — the terminal-outcome invariant keys off which cause wins.
    Poisoning { chunk: u8, cancelled: bool },
    /// Drained.
    Done,
}

/// One atomic protocol step some thread takes.
#[derive(Clone, Copy, Debug)]
pub enum Step {
    /// Compute the next owned chunk from the roster (or drain).
    Seek(usize),
    /// Notice supersession / poisoning / remap / quarantine while waiting.
    Observe(usize),
    /// The claim CAS: granted(j) → claimed(j).
    Claim(usize),
    /// Run the chunk body to completion.
    Execute(usize),
    /// Inject this thread's scripted fault instead of executing.
    Fault(usize),
    /// The advance CAS: claimed(j) → granted(j+1), refused when poisoned.
    Advance(usize),
    /// Recovery ladder: budget, roster remove + re-anchor, quarantine.
    Recover(usize),
    /// Restore the chunk's write-set from the undo journal (bitwise).
    Rollback(usize),
    /// The unclaim CAS: hand a retryable chunk back to the survivors.
    HandBack(usize),
    /// The poison CAS (first cause wins).
    Poison(usize),
    /// A waiter's watchdog verdict against a suspect (strike ladder
    /// compressed to its final outcome).
    DetectStall {
        /// The waiting thread whose watchdog fired.
        detector: usize,
        /// The thread it blames.
        suspect: usize,
    },
    /// A stalled executor wakes and finishes its body.
    Wake(usize),
    /// The governor (deadline thread, budget refusal, or user) fires the
    /// run's cancel flag. Exploring this at every schedule position
    /// covers every possible cancel timing.
    CancelAt,
    /// A waiter notices the cancel flag and poisons with the
    /// `Cancelled` cause (mirrors the `wait_to_claim` cancel check).
    ObserveCancel(usize),
    /// Post-body cancel abort of a *journaled* chunk: roll the completed
    /// body back under the claim, then poison.
    CancelAbort(usize),
    /// Post-body cancel abort of an *unjournalable* chunk: commit the
    /// completed body whole, then poison without advancing.
    CancelCommit(usize),
    /// The committing executor captures the durable checkpoint: reads
    /// the arena covering chunks `..=k`. Faithful order: from
    /// `Releasing`, claim still held, before the advance CAS. The
    /// capture check records a violation if the read could observe a
    /// chunk beyond `k` mutated or any chunk torn.
    CkptCapture(usize),
}

/// Explicit state of the modeled protocol: token word, per-thread
/// control state, roster, health, retry budget, and the bookkeeping the
/// invariants need. Build one with [`Protocol::new`] and the `with_*`
/// methods, then hand it to [`verify`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Protocol {
    // Scenario (constant across a run, varied across tests).
    chunks: u8,
    spurious: bool,
    cancel: bool,
    ckpt: bool,
    bug: Bug,
    plan: Vec<Option<(u8, ModelFault)>>,
    // Dynamic protocol state.
    budget: u8,
    cancel_fired: bool,
    fired: Vec<bool>,
    token: Tok,
    threads: Vec<Th>,
    executed: Vec<u8>,
    mutated: Vec<bool>,
    torn: Vec<bool>,
    live: Vec<u8>,
    base: u8,
    quarantined: Vec<bool>,
    cause: Option<(u8, u8)>,
    /// Chunks already covered by a published checkpoint (the sink
    /// no-ops on re-delivery of a covered commit).
    ckpt_done: Vec<bool>,
    // Violation trackers (set in apply, reported by invariant).
    was_poisoned: bool,
    max_pos: u8,
    moved_back: bool,
    cause_overwritten: bool,
    double_exec: bool,
    claimed_torn: bool,
    /// The installed (first-cause-wins) poison cause is `Cancelled`.
    cancelled_poison: bool,
    /// A checkpoint capture observed an uncommitted write (a chunk
    /// beyond the captured prefix mutated, or a torn chunk).
    ckpt_dirty: bool,
}

impl Protocol {
    /// A faithful protocol over `nthreads` threads, `chunks` chunks and a
    /// retry `budget`, with no scripted faults.
    pub fn new(nthreads: usize, chunks: u8, budget: u8) -> Self {
        Protocol {
            chunks,
            spurious: false,
            cancel: false,
            ckpt: false,
            bug: Bug::None,
            plan: vec![None; nthreads],
            budget,
            cancel_fired: false,
            fired: vec![false; nthreads],
            token: Tok::Granted(0),
            threads: vec![Th::Idle { cursor: 0 }; nthreads],
            executed: vec![0; chunks as usize],
            mutated: vec![false; chunks as usize],
            torn: vec![false; chunks as usize],
            live: (0..nthreads as u8).collect(),
            base: 0,
            quarantined: vec![false; nthreads],
            cause: None,
            ckpt_done: vec![false; chunks as usize],
            was_poisoned: false,
            max_pos: 0,
            moved_back: false,
            cause_overwritten: false,
            double_exec: false,
            claimed_torn: false,
            cancelled_poison: false,
            ckpt_dirty: false,
        }
    }

    /// Script thread `t` to inject `fault` at `chunk` (once).
    pub fn with_fault(mut self, t: usize, chunk: u8, fault: ModelFault) -> Self {
        self.plan[t] = Some((chunk, fault));
        self
    }

    /// Let detectors fire spuriously against healthy owners of a granted
    /// chunk — the watchdog false-positive a slow-but-alive worker causes.
    pub fn with_spurious_detection(mut self) -> Self {
        self.spurious = true;
        self
    }

    /// Seed a protocol bug the checker must catch.
    pub fn with_bug(mut self, bug: Bug) -> Self {
        self.bug = bug;
        self
    }

    /// Let the governor fire the run's cancel flag at an arbitrary point
    /// in the schedule (covers user cancels, deadlines and budget
    /// refusals — all three raise the same flag).
    pub fn with_cancellation(mut self) -> Self {
        self.cancel = true;
        self
    }

    /// Checkpoint every committed chunk: the executor's commit path
    /// captures the arena before the advance CAS (claim still held).
    /// Modeling every commit as due over-approximates every real policy
    /// (`EveryChunks(n)` / `EveryMillis(t)` capture at a subset of these
    /// points).
    pub fn with_checkpointing(mut self) -> Self {
        self.ckpt = true;
        self
    }

    /// The capture check: a checkpoint covering chunks `..=chunk` must
    /// never read a later chunk's mutation or any torn chunk — either
    /// would persist an uncommitted write.
    fn capture(&mut self, chunk: u8) {
        let dirty = self
            .mutated
            .iter()
            .enumerate()
            .any(|(c, &m)| m && c as u8 > chunk)
            || self.torn.iter().any(|&t| t);
        if dirty {
            self.ckpt_dirty = true;
        }
        self.ckpt_done[chunk as usize] = true;
    }

    /// `Roster::owner_of`, modeled.
    fn owner_of(&self, chunk: u8) -> Option<u8> {
        if self.live.is_empty() || chunk < self.base {
            return None;
        }
        let l = self.live.len() as u8;
        Some(self.live[((chunk - self.base) % l) as usize])
    }

    /// `Roster::next_owned`, modeled.
    fn next_owned(&self, t: u8, from: u8) -> Option<u8> {
        let idx = self.live.iter().position(|&x| x == t)? as u8;
        let l = self.live.len() as u8;
        let start = from.max(self.base);
        let first = self.base + idx;
        if start <= first {
            return Some(first);
        }
        Some(first + (start - first).div_ceil(l) * l)
    }

    /// Move the token, tracking monotonicity for the invariant.
    fn set_token(&mut self, tok: Tok) {
        if let Some(p) = tok.position() {
            if p < self.max_pos {
                self.moved_back = true;
            }
            self.max_pos = self.max_pos.max(p);
        }
        self.token = tok;
    }

    /// `Token::poison_with`, modeled (a CAS: first cause wins) — except
    /// under [`Bug::LastCauseWins`], which overwrites like a plain store.
    /// Returns `true` when this call installed the cause (won the CAS).
    fn poison(&mut self, by: u8, chunk: u8) -> bool {
        if self.token == Tok::Poisoned {
            if self.bug == Bug::LastCauseWins {
                self.cause = Some((by, chunk));
                self.cause_overwritten = true;
            }
            return false;
        }
        self.token = Tok::Poisoned;
        self.was_poisoned = true;
        self.cause = Some((by, chunk));
        true
    }

    /// Does thread `i` have an unfired body fault scripted at `chunk`?
    fn body_fault_pending(&self, i: usize, chunk: u8) -> bool {
        matches!(self.plan[i], Some((c, f)) if c == chunk && f != ModelFault::PanicHelper)
            && !self.fired[i]
    }
}

impl Model for Protocol {
    type Action = Step;

    fn actions(&self) -> Vec<Step> {
        let mut acts = Vec::new();
        for (i, th) in self.threads.iter().enumerate() {
            match *th {
                Th::Idle { .. } => acts.push(Step::Seek(i)),
                Th::Waiting { chunk, cursor } => {
                    if self.token == Tok::Granted(chunk) {
                        acts.push(Step::Claim(i));
                    }
                    // The `wait_to_claim` cancel check: a waiter on a
                    // real chunk proves the run is incomplete, so it may
                    // poison with the Cancelled cause.
                    if self.cancel_fired {
                        acts.push(Step::ObserveCancel(i));
                    }
                    // Re-seek whenever poisoned, quarantined, or a
                    // supersession/remap means seeking again would land
                    // on a different chunk (possibly an *earlier* one we
                    // now own) — mirroring `wait_to_claim`'s poison,
                    // quarantine, supersession and epoch checks.
                    let reseek_differs = match self.token.position() {
                        None => true,
                        Some(p) => self.next_owned(i as u8, cursor.max(p)) != Some(chunk),
                    };
                    if reseek_differs || self.quarantined[i] {
                        acts.push(Step::Observe(i));
                    }
                    // The watchdog: a waiter may blame the thread holding
                    // things up, whenever the real timer could have fired.
                    match self.token {
                        Tok::Claimed(c) => {
                            for (s, sth) in self.threads.iter().enumerate() {
                                if s != i && matches!(sth, Th::Stalled { chunk } if *chunk == c) {
                                    acts.push(Step::DetectStall {
                                        detector: i,
                                        suspect: s,
                                    });
                                }
                            }
                        }
                        Tok::Granted(c) if self.spurious => {
                            if let Some(s) = self.owner_of(c) {
                                if s as usize != i && !self.quarantined[s as usize] {
                                    acts.push(Step::DetectStall {
                                        detector: i,
                                        suspect: s as usize,
                                    });
                                }
                            }
                        }
                        _ => {}
                    }
                }
                Th::Executing { chunk } => {
                    if self.body_fault_pending(i, chunk) {
                        acts.push(Step::Fault(i));
                    } else {
                        acts.push(Step::Execute(i));
                    }
                }
                Th::Stalled { .. } => acts.push(Step::Wake(i)),
                Th::Releasing { chunk } => {
                    if self.ckpt
                        && !self.ckpt_done[chunk as usize]
                        && self.bug != Bug::CaptureAfterHandoff
                    {
                        // Faithful order: the commit path captures the
                        // checkpoint before the advance CAS, claim still
                        // held — the advance only becomes available once
                        // the capture has happened.
                        acts.push(Step::CkptCapture(i));
                    } else {
                        acts.push(Step::Advance(i));
                    }
                    // Post-body cancel check: the executor may notice the
                    // flag before advancing (the Advance action models it
                    // missing the racing store). Both kernel kinds are
                    // explored: journaled chunks roll back, unjournalable
                    // chunks commit whole. The runner's single cancel
                    // check precedes the commit and capture, so once a
                    // checkpoint covered this chunk the abort window is
                    // closed.
                    if self.cancel_fired && !self.ckpt_done[chunk as usize] {
                        acts.push(Step::CancelAbort(i));
                        acts.push(Step::CancelCommit(i));
                    }
                }
                Th::Capturing { .. } => acts.push(Step::CkptCapture(i)),
                Th::Recovering { .. } => acts.push(Step::Recover(i)),
                Th::RollingBack { .. } | Th::CancelRollingBack { .. } => {
                    acts.push(Step::Rollback(i))
                }
                Th::HandingBack { .. } => acts.push(Step::HandBack(i)),
                Th::Poisoning { .. } => acts.push(Step::Poison(i)),
                Th::Done => {}
            }
        }
        if self.cancel && !self.cancel_fired {
            acts.push(Step::CancelAt);
        }
        acts
    }

    fn apply(&self, step: &Step) -> Self {
        let mut s = self.clone();
        match *step {
            Step::Seek(i) => {
                let Th::Idle { cursor } = s.threads[i] else {
                    unreachable!("Seek from non-Idle")
                };
                if s.quarantined[i] {
                    s.threads[i] = Th::Done;
                    return s;
                }
                let Some(pos) = s.token.position() else {
                    s.threads[i] = Th::Done;
                    return s;
                };
                let cursor = cursor.max(pos);
                match s.next_owned(i as u8, cursor) {
                    Some(j) if j < s.chunks => {
                        if let Some((fc, ModelFault::PanicHelper)) = s.plan[i] {
                            if fc == j && !s.fired[i] {
                                s.fired[i] = true;
                                s.threads[i] = Th::Recovering {
                                    chunk: j,
                                    claimed: false,
                                    fail_stop: true,
                                };
                                return s;
                            }
                        }
                        s.threads[i] = Th::Waiting { chunk: j, cursor };
                    }
                    _ => {
                        // Drained: leave the roster before exiting so a
                        // later remap can never orphan a chunk on an
                        // already-exited worker (mirrors the runner's
                        // drain-exit removal).
                        if s.live.len() > 1 && s.live.contains(&(i as u8)) {
                            s.live.retain(|&x| x != i as u8);
                            s.base = s.base.max(pos);
                        }
                        s.threads[i] = Th::Done;
                    }
                }
            }
            Step::Observe(i) => {
                let Th::Waiting { cursor, .. } = s.threads[i] else {
                    unreachable!("Observe from non-Waiting")
                };
                if s.token == Tok::Poisoned || s.quarantined[i] {
                    s.threads[i] = Th::Done;
                } else {
                    // Re-seek from the *cursor*, not the waited chunk: a
                    // remap may have handed us an earlier granted chunk.
                    s.threads[i] = Th::Idle { cursor };
                }
            }
            Step::Claim(i) => {
                let Th::Waiting { chunk, .. } = s.threads[i] else {
                    unreachable!("Claim from non-Waiting")
                };
                if s.torn[chunk as usize] {
                    // Re-claiming a chunk whose partial writes were never
                    // rolled back: the retry would read torn state.
                    s.claimed_torn = true;
                }
                if s.bug != Bug::SkipClaim {
                    s.set_token(Tok::Claimed(chunk));
                }
                s.threads[i] = Th::Executing { chunk };
            }
            Step::Execute(i) | Step::Wake(i) => {
                let (Th::Executing { chunk } | Th::Stalled { chunk }) = s.threads[i] else {
                    unreachable!("Execute/Wake from non-body state")
                };
                if s.mutated[chunk as usize] {
                    s.double_exec = true;
                }
                s.executed[chunk as usize] += 1;
                s.mutated[chunk as usize] = true;
                s.threads[i] = Th::Releasing { chunk };
            }
            Step::Fault(i) => {
                let Th::Executing { chunk } = s.threads[i] else {
                    unreachable!("Fault from non-Executing")
                };
                let (_, kind) = s.plan[i].expect("fault action requires a plan");
                s.fired[i] = true;
                s.threads[i] = match kind {
                    ModelFault::PanicFailStop => Th::Recovering {
                        chunk,
                        claimed: true,
                        fail_stop: true,
                    },
                    ModelFault::PanicMidBody => {
                        s.mutated[chunk as usize] = true;
                        s.torn[chunk as usize] = true;
                        Th::Recovering {
                            chunk,
                            claimed: true,
                            fail_stop: false,
                        }
                    }
                    ModelFault::PanicMidBodyJournaled => {
                        s.mutated[chunk as usize] = true;
                        s.torn[chunk as usize] = true;
                        if s.bug == Bug::UnclaimBeforeRollback {
                            // Seeded bug: climb the ladder (and unclaim)
                            // with the journal still unapplied — the
                            // rollback lands too late.
                            Th::Recovering {
                                chunk,
                                claimed: true,
                                fail_stop: true,
                            }
                        } else {
                            Th::RollingBack {
                                chunk,
                                recovered: false,
                            }
                        }
                    }
                    ModelFault::Stall => Th::Stalled { chunk },
                    ModelFault::PanicHelper => unreachable!("helper faults fire at Seek"),
                };
            }
            Step::Advance(i) => {
                let Th::Releasing { chunk } = s.threads[i] else {
                    unreachable!("Advance from non-Releasing")
                };
                match s.token {
                    Tok::Claimed(c) if c == chunk => {
                        s.set_token(Tok::Granted(chunk + 1));
                        s.threads[i] = if s.bug == Bug::CaptureAfterHandoff
                            && s.ckpt
                            && !s.ckpt_done[chunk as usize]
                        {
                            // Seeded bug: the token is already handed off
                            // but the capture has not happened yet — the
                            // successor may mutate chunk+1 before we read.
                            Th::Capturing { chunk }
                        } else {
                            Th::Idle { cursor: chunk + 1 }
                        };
                    }
                    Tok::Poisoned if s.bug == Bug::ResurrectToken => {
                        // Plain store instead of the CAS: resurrection.
                        s.token = Tok::Granted(chunk + 1);
                        s.threads[i] = Th::Idle { cursor: chunk + 1 };
                    }
                    _ => {
                        // CAS refused (poisoned, or — under SkipClaim —
                        // never claimed): late completion, drain.
                        s.threads[i] = Th::Done;
                    }
                }
            }
            Step::CkptCapture(i) => match s.threads[i] {
                Th::Releasing { chunk } => {
                    // Faithful order: claim still held, so no successor
                    // can have started chunk+1 — the capture reads only
                    // committed prefix state. `ckpt_done` now gates the
                    // Releasing arm over to Advance.
                    s.capture(chunk);
                }
                Th::Capturing { chunk } => {
                    // Seeded-bug tail: capture after the handoff, racing
                    // the successor's execution of chunk+1.
                    s.capture(chunk);
                    s.threads[i] = Th::Idle { cursor: chunk + 1 };
                }
                _ => unreachable!("CkptCapture from non-capturing state"),
            },
            Step::Recover(i) => {
                let Th::Recovering {
                    chunk,
                    claimed,
                    fail_stop,
                } = s.threads[i]
                else {
                    unreachable!("Recover from non-Recovering")
                };
                if (claimed && !fail_stop) || s.budget == 0 {
                    // Unretryable chunk or dry budget: fall through.
                    s.threads[i] = Th::Poisoning {
                        chunk,
                        cancelled: false,
                    };
                    return s;
                }
                if s.live.contains(&(i as u8)) {
                    if s.live.len() == 1 {
                        // Last live worker: no survivor to retry on.
                        s.threads[i] = Th::Poisoning {
                            chunk,
                            cancelled: false,
                        };
                        return s;
                    }
                    let Some(anchor) = s.token.position() else {
                        // Poisoned while we recovered: just report.
                        s.threads[i] = Th::Poisoning {
                            chunk,
                            cancelled: false,
                        };
                        return s;
                    };
                    s.budget -= 1;
                    s.live.retain(|&x| x != i as u8);
                    s.base = s.base.max(anchor);
                    s.quarantined[i] = true;
                }
                // (If we were not live, a detector already quarantined and
                // remapped us — just hand the chunk back.)
                s.threads[i] = if claimed {
                    Th::HandingBack {
                        chunk,
                        // Only the seeded UnclaimBeforeRollback path can
                        // reach here with the chunk still torn: the
                        // faithful order rolled back before recovering.
                        rollback_after: s.torn[chunk as usize],
                    }
                } else {
                    Th::Done
                };
            }
            Step::Rollback(i) => match s.threads[i] {
                Th::RollingBack { chunk, recovered } => {
                    // Bitwise restore: the chunk's write-set is pristine
                    // again — legally re-executable, no longer torn.
                    s.torn[chunk as usize] = false;
                    s.mutated[chunk as usize] = false;
                    s.threads[i] = if recovered {
                        // Seeded-bug tail: the ladder already ran.
                        Th::Done
                    } else {
                        // Faithful order: rollback first (claim still
                        // held), then climb the ladder as if the kernel
                        // were fail-stop — the chunk is pristine.
                        Th::Recovering {
                            chunk,
                            claimed: true,
                            fail_stop: true,
                        }
                    };
                }
                Th::CancelRollingBack { chunk, unclaimed } => {
                    // Cancellation abort: the completed body is undone
                    // bitwise, so the chunk reverts to unexecuted and the
                    // sequential resume point is its first iteration.
                    s.torn[chunk as usize] = false;
                    s.mutated[chunk as usize] = false;
                    s.executed[chunk as usize] -= 1;
                    s.threads[i] = if unclaimed {
                        // Seeded-bug tail: the claim was already handed
                        // back; nothing left but to drain.
                        Th::Done
                    } else {
                        Th::Poisoning {
                            chunk,
                            cancelled: true,
                        }
                    };
                }
                _ => unreachable!("Rollback from non-rollback state"),
            },
            Step::HandBack(i) => {
                let Th::HandingBack {
                    chunk,
                    rollback_after,
                } = s.threads[i]
                else {
                    unreachable!("HandBack from non-HandingBack")
                };
                if s.token == Tok::Claimed(chunk) {
                    // The unclaim CAS: a survivor will re-claim.
                    s.set_token(Tok::Granted(chunk));
                    s.threads[i] = if rollback_after {
                        // Seeded-bug ordering: the journal is applied
                        // only now, after the unclaim already published
                        // the chunk to the survivors.
                        Th::RollingBack {
                            chunk,
                            recovered: true,
                        }
                    } else {
                        Th::Done
                    };
                } else {
                    // Poisoned while recovering: the fall-through poison
                    // call is a no-op CAS, modeled for the cause check.
                    s.threads[i] = Th::Poisoning {
                        chunk,
                        cancelled: false,
                    };
                }
            }
            Step::Poison(i) => {
                let Th::Poisoning { chunk, cancelled } = s.threads[i] else {
                    unreachable!("Poison from non-Poisoning")
                };
                if s.poison(i as u8, chunk) && cancelled {
                    s.cancelled_poison = true;
                }
                s.threads[i] = Th::Done;
            }
            Step::CancelAt => {
                s.cancel_fired = true;
            }
            Step::ObserveCancel(i) => {
                let Th::Waiting { chunk, .. } = s.threads[i] else {
                    unreachable!("ObserveCancel from non-Waiting")
                };
                s.threads[i] = Th::Poisoning {
                    chunk,
                    cancelled: true,
                };
            }
            Step::CancelAbort(i) => {
                let Th::Releasing { chunk } = s.threads[i] else {
                    unreachable!("CancelAbort from non-Releasing")
                };
                // Journaled chunk: undo the completed body. Until the
                // rollback lands the chunk's memory is torn; the faithful
                // order keeps the claim for the whole window.
                s.torn[chunk as usize] = true;
                if s.bug == Bug::UnclaimBeforeCancelRollback && s.token == Tok::Claimed(chunk) {
                    // Seeded bug: hand the claim back first, re-publishing
                    // the torn chunk to the survivors.
                    s.set_token(Tok::Granted(chunk));
                    s.threads[i] = Th::CancelRollingBack {
                        chunk,
                        unclaimed: true,
                    };
                } else {
                    s.threads[i] = Th::CancelRollingBack {
                        chunk,
                        unclaimed: false,
                    };
                }
            }
            Step::CancelCommit(i) => {
                let Th::Releasing { chunk } = s.threads[i] else {
                    unreachable!("CancelCommit from non-Releasing")
                };
                // Unjournalable chunk: it commits whole (stays executed)
                // and the worker poisons without advancing — the resume
                // point is the next chunk.
                s.threads[i] = Th::Poisoning {
                    chunk,
                    cancelled: true,
                };
            }
            Step::DetectStall { suspect, .. } => match s.token {
                Tok::Claimed(c) => {
                    // A stuck executor may still write: unretryable.
                    s.poison(suspect as u8, c);
                }
                Tok::Granted(c) => {
                    if !s.quarantined[suspect] {
                        if s.budget == 0 || s.live.len() <= 1 {
                            s.poison(suspect as u8, c);
                        } else if s.live.contains(&(suspect as u8)) {
                            s.quarantined[suspect] = true;
                            s.budget -= 1;
                            s.live.retain(|&x| x != suspect as u8);
                            s.base = s.base.max(c);
                        }
                    }
                }
                Tok::Poisoned => {}
            },
        }
        s
    }

    fn invariant(&self) -> Result<(), String> {
        let executors = self
            .threads
            .iter()
            .filter(|t| matches!(t, Th::Executing { .. } | Th::Stalled { .. }))
            .count();
        if executors > 1 {
            return Err(format!("{executors} simultaneous executors"));
        }
        if self.double_exec {
            return Err("a chunk was executed again after mutation".into());
        }
        if self.claimed_torn {
            return Err("a torn chunk was re-claimed before its rollback".into());
        }
        if self.was_poisoned && self.token != Tok::Poisoned {
            return Err("a poisoned token was resurrected".into());
        }
        if self.moved_back {
            return Err("the token moved backward (lost hand-off)".into());
        }
        if self.cause_overwritten {
            return Err("the first poison cause was overwritten".into());
        }
        if self.ckpt_dirty {
            return Err("a checkpoint observed an uncommitted write".into());
        }
        Ok(())
    }

    fn is_accepting(&self) -> bool {
        self.threads.iter().all(|t| matches!(t, Th::Done))
    }

    fn final_check(&self) -> Result<(), String> {
        if self.cancelled_poison {
            // The run's terminal cause is Cancelled: the resume guarantee
            // requires a bitwise-clean committed prefix — no torn chunk,
            // no chunk executed twice, and no gap a sequential resume
            // from `committed_iters` would silently skip.
            if let Some(c) = self.torn.iter().position(|&t| t) {
                return Err(format!("cancelled run left chunk {c} torn"));
            }
            if let Some(c) = self.executed.iter().position(|&n| n > 1) {
                return Err(format!("cancelled run committed chunk {c} twice"));
            }
            let mut gap = false;
            for (c, &n) in self.executed.iter().enumerate() {
                if n == 0 {
                    gap = true;
                } else if gap {
                    return Err(format!(
                        "cancelled run committed chunk {c} after an uncommitted gap"
                    ));
                }
            }
            return Ok(());
        }
        if self.was_poisoned {
            // Fell through the ladder; salvage takes over outside the
            // model. The invariants already guaranteed no corruption.
            return Ok(());
        }
        // Exactly one terminal outcome: with neither a cancelled nor a
        // faulted poison the run must have completed cleanly — even when
        // the cancel flag fired but arrived too late to be observed.
        if self.token != Tok::Granted(self.chunks) {
            return Err(format!(
                "clean run ended with the token at {:?}, not Granted({})",
                self.token, self.chunks
            ));
        }
        for (c, &n) in self.executed.iter().enumerate() {
            if n != 1 {
                return Err(format!("chunk {c} executed {n} times"));
            }
        }
        if let Some(c) = self.torn.iter().position(|&t| t) {
            return Err(format!(
                "clean run accepted with chunk {c} still torn (rollback never ran)"
            ));
        }
        Ok(())
    }
}

/// Exhaustively explore `scenario`, panicking if the state space exceeds
/// `max_states` (a truncated exploration must never read as a pass).
pub fn verify(scenario: Protocol, max_states: usize) -> Exploration<Step> {
    let result = explore(scenario, max_states);
    assert!(
        !result.truncated,
        "exploration truncated at {} states — raise max_states",
        result.states
    );
    result
}

// ---------------------------------------------------------------------------
// DOACROSS post/wait model
// ---------------------------------------------------------------------------

/// A deliberately seeded bug in the DOACROSS post/wait protocol, for
/// negative tests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DaBug {
    /// The faithful protocol: execute, then publish the frontier.
    #[default]
    None,
    /// Publish the committed frontier *before* executing the iteration:
    /// a gated peer observes `posts[w] = j + 1`, reads iteration `j`'s
    /// output, and finds stale memory — post must happen-before
    /// wait-satisfied.
    PostBeforeExec,
    /// Gate with window `lag + 1` instead of `lag` — the "wait for
    /// `lag - 1` commits" off-by-one. One predecessor fewer is demanded,
    /// so a schedule exists where iteration `j` runs while `j - lag` is
    /// still unexecuted.
    WaitTooShort,
}

/// One atomic step of the DOACROSS model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DaStep {
    /// Execute the worker's next owned iteration (its gate is satisfied).
    Exec {
        /// Acting worker.
        worker: u8,
    },
    /// Publish the worker's committed frontier (the `Release` store).
    Post {
        /// Acting worker.
        worker: u8,
    },
}

/// Explicit-state model of the planned runtime's DOACROSS post/wait
/// protocol ([`crate::sched`]): round-robin chunk ownership, in-order
/// execution within each worker, a padded per-worker committed frontier
/// published after every iteration, and a gate that admits iteration
/// `j` only once `posts` proves **every** iteration `≤ j − lag`
/// committed (the per-worker [`gate-target`] thresholds — checking one
/// counter would re-introduce the off-by-a-chunk bug).
///
/// The execute and publish halves of an iteration are separate atomic
/// actions, so the model explores the window in between — exactly where
/// [`DaBug::PostBeforeExec`] breaks. The gate's multi-counter read is
/// modeled as one atomic predicate: `posts` counters are monotone and
/// the gate only tests `≥` thresholds, so a torn non-atomic read can
/// delay admission but never falsely grant it — the abstraction
/// over-approximates nothing.
///
/// Invariants, checked in every reachable state:
/// 1. **Post happens-before wait-satisfied** — `posts[w] = f` implies
///    every `w`-owned iteration below `f` has executed;
/// 2. **Lag safety** — no iteration `j` executes while some iteration
///    `≤ j − lag` is still unexecuted (no worker reads an iteration
///    before its lag window is committed);
/// 3. **At-most-once execution**, with exactly-once on acceptance.
///
/// [`gate-target`]: crate::sched
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DoAcrossModel {
    nthreads: u8,
    iters: u8,
    chunk: u8,
    lag: u8,
    bug: DaBug,
    /// Published committed frontier per worker.
    posts: Vec<u8>,
    /// Times each iteration's body ran (ground truth).
    executed: Vec<u8>,
    /// Next owned iteration per worker; `u8::MAX` = exhausted.
    next: Vec<u8>,
    /// Mid-iteration phase marker: `Some(j + 1)` between the two halves
    /// of iteration `j` (executed-not-posted for the faithful protocol,
    /// posted-not-executed under [`DaBug::PostBeforeExec`]).
    pending: Vec<Option<u8>>,
}

impl DoAcrossModel {
    /// A fresh model: `nthreads` workers over `iters` iterations in
    /// round-robin chunks of `chunk`, carried lag `lag`.
    pub fn new(nthreads: u8, iters: u8, chunk: u8, lag: u8) -> Self {
        assert!(nthreads >= 1 && chunk >= 1 && lag >= 1);
        let next = (0..nthreads)
            .map(|w| {
                let c = w; // first round-robin chunk owned by w
                let j = c * chunk;
                if j < iters {
                    j
                } else {
                    u8::MAX
                }
            })
            .collect();
        DoAcrossModel {
            nthreads,
            iters,
            chunk,
            lag,
            bug: DaBug::None,
            posts: vec![0; nthreads as usize],
            executed: vec![0; iters as usize],
            next,
            pending: vec![None; nthreads as usize],
        }
    }

    /// Seed a protocol bug (negative tests).
    pub fn with_bug(mut self, bug: DaBug) -> Self {
        self.bug = bug;
        self
    }

    /// The iteration after `j` in `w`'s round-robin in-order schedule.
    fn advance(&self, w: u8, j: u8) -> u8 {
        let c = self.chunk as u64;
        let n = self.nthreads as u64;
        let cur = j as u64 / c;
        let nj = j as u64 + 1;
        if nj < self.iters as u64 && nj / c == cur {
            return nj as u8;
        }
        let mut cc = cur + 1;
        while cc % n != w as u64 {
            cc += 1;
        }
        if cc * c < self.iters as u64 {
            (cc * c) as u8
        } else {
            u8::MAX
        }
    }

    /// The gate for iteration `j`, read from `posts` only (mirrors
    /// `sched::gate_target` across every worker).
    fn gate(&self, j: u8) -> bool {
        let window = match self.bug {
            DaBug::WaitTooShort => self.lag as u64 + 1,
            _ => self.lag as u64,
        };
        let j = j as u64;
        if j < window {
            return true;
        }
        let d = j - window;
        let (c, n, iters) = (self.chunk as u64, self.nthreads as u64, self.iters as u64);
        (0..n).all(|w| {
            let e = d / c;
            let target = if e % n == w {
                d + 1
            } else {
                let delta = (e % n + n - w) % n;
                if e < delta {
                    0
                } else {
                    ((e - delta + 1) * c).min(iters)
                }
            };
            self.posts[w as usize] as u64 >= target
        })
    }
}

impl Model for DoAcrossModel {
    type Action = DaStep;

    fn actions(&self) -> Vec<DaStep> {
        let mut acts = Vec::new();
        for w in 0..self.nthreads {
            let (first, second) = match self.bug {
                DaBug::PostBeforeExec => (DaStep::Post { worker: w }, DaStep::Exec { worker: w }),
                _ => (DaStep::Exec { worker: w }, DaStep::Post { worker: w }),
            };
            if self.pending[w as usize].is_some() {
                acts.push(second);
            } else if self.next[w as usize] != u8::MAX && self.gate(self.next[w as usize]) {
                acts.push(first);
            }
        }
        acts
    }

    fn apply(&self, step: &DaStep) -> Self {
        let mut s = self.clone();
        match (*step, self.bug) {
            // Faithful order: execute, then publish and move on.
            (DaStep::Exec { worker }, DaBug::None | DaBug::WaitTooShort) => {
                let j = s.next[worker as usize];
                s.executed[j as usize] += 1;
                s.pending[worker as usize] = Some(j + 1);
            }
            (DaStep::Post { worker }, DaBug::None | DaBug::WaitTooShort) => {
                let f = s.pending[worker as usize]
                    .take()
                    .expect("post follows exec");
                s.posts[worker as usize] = f;
                s.next[worker as usize] = s.advance(worker, f - 1);
            }
            // Inverted order: publish first, then execute and move on.
            (DaStep::Post { worker }, DaBug::PostBeforeExec) => {
                let j = s.next[worker as usize];
                s.posts[worker as usize] = j + 1;
                s.pending[worker as usize] = Some(j + 1);
            }
            (DaStep::Exec { worker }, DaBug::PostBeforeExec) => {
                let f = s.pending[worker as usize]
                    .take()
                    .expect("exec follows post");
                s.executed[(f - 1) as usize] += 1;
                s.next[worker as usize] = s.advance(worker, f - 1);
            }
        }
        s
    }

    fn invariant(&self) -> Result<(), String> {
        // 1. Post happens-before wait-satisfied: a published frontier
        //    only covers executed iterations.
        for w in 0..self.nthreads {
            let f = self.posts[w as usize];
            for j in 0..f {
                let owned = (j as u64 / self.chunk as u64) % self.nthreads as u64 == w as u64;
                if owned && self.executed[j as usize] == 0 {
                    return Err(format!(
                        "worker {w} posted frontier {f} before executing iteration {j}"
                    ));
                }
            }
        }
        // 2. Lag safety: an executed iteration proves its whole lag
        //    window executed first.
        for j in 0..self.iters {
            if self.executed[j as usize] == 0 || (j as u64) < self.lag as u64 {
                continue;
            }
            let d = j - self.lag;
            for i in 0..=d {
                if self.executed[i as usize] == 0 {
                    return Err(format!(
                        "iteration {j} executed before its lag-{} dependence {i}",
                        self.lag
                    ));
                }
            }
        }
        // 3. At most once.
        for (j, &n) in self.executed.iter().enumerate() {
            if n > 1 {
                return Err(format!("iteration {j} executed {n} times"));
            }
        }
        Ok(())
    }

    fn is_accepting(&self) -> bool {
        self.next.iter().all(|&j| j == u8::MAX) && self.pending.iter().all(|p| p.is_none())
    }

    fn final_check(&self) -> Result<(), String> {
        for (j, &n) in self.executed.iter().enumerate() {
            if n != 1 {
                return Err(format!("iteration {j} executed {n} times"));
            }
        }
        Ok(())
    }
}

/// Exhaustively explore a DOACROSS scenario, panicking on truncation
/// (a truncated exploration must never read as a pass).
pub fn verify_doacross(scenario: DoAcrossModel, max_states: usize) -> Exploration<DaStep> {
    let result = explore(scenario, max_states);
    assert!(
        !result.truncated,
        "exploration truncated at {} states — raise max_states",
        result.states
    );
    result
}

// ---------------------------------------------------------------------------
// Verified-execution (checksummed handoffs + blame) model
// ---------------------------------------------------------------------------

/// The single scripted corruption fault of a [`VerifyModel`] scenario.
/// At most one fires per run — the blame-attribution invariant is proved
/// under the same single-fault assumption the runner's tiebreak
/// reasoning rests on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VFault {
    /// The executor of `chunk` computes wrong bytes. Its published
    /// digest covers them (an executor digests what it actually wrote),
    /// so the tiebreak *plus* the digest match convict it — correctly.
    WrongBytes {
        /// The chunk whose body miscomputes.
        chunk: u8,
    },
    /// The chunk's committed bytes flip *after* the executor's
    /// commit-time digest capture, while the handoff packet is still
    /// outstanding. The digest mismatch proves the executor innocent:
    /// the faithful protocol detects and recovers without blame.
    PostCommitFlip {
        /// The chunk whose committed bytes flip in place.
        chunk: u8,
    },
    /// The verifier's first private replay of `chunk` is itself wrong (a
    /// transient on the verifier's side). The tiebreak's second replay
    /// disagrees with the first, so the faithful protocol blames nobody
    /// and lets the committed bytes stand.
    ReplayGlitch {
        /// The chunk whose first replay glitches.
        chunk: u8,
    },
}

impl VFault {
    /// The chunk this fault is scripted at.
    fn chunk(self) -> u8 {
        match self {
            VFault::WrongBytes { chunk }
            | VFault::PostCommitFlip { chunk }
            | VFault::ReplayGlitch { chunk } => chunk,
        }
    }
}

/// A deliberately seeded verified-execution protocol bug, for negative
/// tests: the checker must catch each of these.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum VBug {
    /// The faithful protocol.
    #[default]
    None,
    /// The claimant executes its own chunk *before* verifying the
    /// predecessor's packet: the downstream body consumes bytes nobody
    /// has checked yet, breaking verification-happens-before-downstream
    /// commit visibility.
    VerifyAfterHandoff,
    /// Blame the executor on a lone replay mismatch — no second replay,
    /// no digest guard. A verifier-side glitch or a post-commit flip
    /// then convicts an innocent worker.
    BlameWithoutTiebreak,
}

/// What a chunk's committed bytes look like, abstractly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum VData {
    /// Never executed.
    Fresh,
    /// Executed correctly (or repaired to the verified bytes).
    Good,
    /// The executor committed miscomputed bytes.
    Wrong,
    /// Flipped in place after the executor's digest capture.
    Flipped,
    /// Restored to its pre-image by the fail path (and poisoned).
    RolledBack,
}

/// Modeled worker control state (the verify-relevant slice of the
/// runner's worker loop).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum VTh {
    /// About to compute its next owned chunk.
    Idle { cursor: u8 },
    /// Polling the token for its owned chunk.
    Waiting { chunk: u8 },
    /// Won the claim; the predecessor's packet is pending — the faithful
    /// order verifies it *before* the execute phase.
    Verifying { chunk: u8 },
    /// Inside the chunk body.
    Executing { chunk: u8 },
    /// Seeded-bug tail ([`VBug::VerifyAfterHandoff`]): body already run,
    /// the predecessor's packet verified only now.
    LateVerifying { chunk: u8 },
    /// Body done; about to publish the handoff packet and advance.
    Releasing { chunk: u8 },
    /// Drained.
    Done,
}

/// One atomic step of the verified-execution model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VStep {
    /// Compute the next owned chunk (or drain).
    Seek(usize),
    /// Notice poisoning while waiting.
    Observe(usize),
    /// The claim CAS; the faithful claimant then verifies the
    /// predecessor's packet before executing.
    Claim(usize),
    /// Verify the pending packet: digest compare, replay, tiebreak,
    /// blame, repair-or-fail — the runner's `verify_committed`.
    Verify(usize),
    /// Run the chunk body.
    Execute(usize),
    /// Publish the handoff packet (digest + pre-image) and advance the
    /// token — the checksummed handoff.
    Advance(usize),
    /// The scripted post-commit flip lands (only while the victim
    /// chunk's packet is outstanding — the window the protocol claims
    /// detection over).
    Flip,
    /// The supervisor verifies the final chunk's packet after the last
    /// handoff (post-join in the runner, quiescent by construction).
    FinalVerify,
}

/// Explicit-state model of the verified-execution protocol
/// ([`crate::runner`]'s `verify_committed` / `convict` / `fail_rollback`
/// under an armed `VerifyPolicy`): every commit publishes a packet
/// (digest + pre-image) with the token handoff, the claimant of chunk
/// `j` verifies chunk `j-1` before its own execute phase, a mismatch is
/// confirmed by the sequential tiebreak (two agreeing private replays),
/// blame additionally requires the published digest to match the
/// committed bytes, and the fail path rolls the corrupted chunk back to
/// its pre-image before poisoning.
///
/// Ownership is a fixed round-robin with no roster dynamics: quarantine
/// remaps, stalls and panics are [`Protocol`]'s concern — this model
/// isolates the three verification claims so their state space stays
/// exhaustively explorable:
///
/// 1. **Verification happens-before downstream commit visibility** — in
///    no reachable state is a chunk's body executing (or executed,
///    unreleased) while its predecessor's packet is still unverified;
/// 2. **A corrupted chunk is never part of the committed prefix** — in
///    every poisoned state the blamed chunk is rolled back to its
///    pre-image and every chunk before the resume point is bitwise
///    good, so the typed error's `committed_iters` is trustworthy;
/// 3. **Blame never convicts an innocent worker** (single-fault
///    assumption) — a conviction implies the convicted executor really
///    computed the wrong bytes.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VerifyModel {
    // Scenario (constant across a run, varied across tests).
    nthreads: u8,
    chunks: u8,
    recover: bool,
    bug: VBug,
    fault: Option<VFault>,
    // Dynamic state.
    fault_fired: bool,
    token: Tok,
    threads: Vec<VTh>,
    data: Vec<VData>,
    executed: Vec<u8>,
    /// The outstanding handoff packet: `(chunk, executor)`.
    packet: Option<(u8, u8)>,
    /// The chunk a corruption poison named (the typed error's blame).
    poisoned_chunk: Option<u8>,
    /// A worker that did not corrupt anything was blamed.
    blamed_innocent: bool,
}

impl VerifyModel {
    /// A faithful verified run over `nthreads` workers and `chunks`
    /// chunks with recovery on (convictions repair in place).
    pub fn new(nthreads: u8, chunks: u8) -> Self {
        assert!(nthreads >= 1 && chunks >= 1);
        VerifyModel {
            nthreads,
            chunks,
            recover: true,
            bug: VBug::None,
            fault: None,
            fault_fired: false,
            token: Tok::Granted(0),
            threads: vec![VTh::Idle { cursor: 0 }; nthreads as usize],
            data: vec![VData::Fresh; chunks as usize],
            executed: vec![0; chunks as usize],
            packet: None,
            poisoned_chunk: None,
            blamed_innocent: false,
        }
    }

    /// Script the run's single corruption fault.
    pub fn with_fault(mut self, fault: VFault) -> Self {
        assert!(fault.chunk() < self.chunks);
        self.fault = Some(fault);
        self
    }

    /// Disable recovery: a confirmed corruption rolls back and poisons
    /// instead of repairing in place (the fail-fast tolerance).
    pub fn without_recovery(mut self) -> Self {
        self.recover = false;
        self
    }

    /// Seed a protocol bug the checker must catch.
    pub fn with_bug(mut self, bug: VBug) -> Self {
        self.bug = bug;
        self
    }

    /// Fixed round-robin ownership: the smallest `j >= from` owned by `t`.
    fn next_owned(&self, t: u8, from: u8) -> u8 {
        let n = self.nthreads;
        let r = from % n;
        if r <= t {
            from - r + t
        } else {
            from - r + n + t
        }
    }

    /// The runner's `verify_committed`, compressed to one atomic
    /// decision (the interleavings that matter — packet vs. downstream
    /// claim vs. flip — are between steps, not inside the comparison).
    /// Returns `true` when the run poisoned.
    fn run_verify(&mut self) -> bool {
        let (c, _e) = self.packet.take().expect("verify requires a packet");
        let ci = c as usize;
        // First private replay: wrong only under a pending glitch.
        let glitch = matches!(self.fault, Some(VFault::ReplayGlitch { chunk }) if chunk == c)
            && !self.fault_fired;
        if glitch {
            self.fault_fired = true;
        }
        // The replay recomputes the chunk from its pre-image: correct
        // bytes unless the glitch fires, so it matches the committed
        // bytes iff they are good.
        let r1_matches = !glitch && self.data[ci] == VData::Good;
        // The executor digested what it wrote, so the published digest
        // matches the committed bytes unless they flipped afterwards.
        let digest_matches = self.data[ci] != VData::Flipped;
        if self.bug == VBug::BlameWithoutTiebreak {
            if r1_matches {
                return false;
            }
            // Seeded bug: lone mismatch, no second replay, no digest
            // guard — the executor is convicted outright.
            if self.data[ci] != VData::Wrong {
                self.blamed_innocent = true;
            }
            return self.resolve(ci);
        }
        if r1_matches {
            return false;
        }
        // Sequential tiebreak: the second replay (transients do not
        // repeat) — if it disagrees with the first, the fault is the
        // verifier's own and the committed bytes stand, unblamed.
        if glitch {
            return false;
        }
        // Two agreeing replays against the committed bytes: corruption
        // confirmed. Blame only if the digest proves the executor
        // computed them; a post-commit flip convicts nobody.
        if digest_matches && self.data[ci] != VData::Wrong {
            self.blamed_innocent = true;
        }
        self.resolve(ci)
    }

    /// Repair in place (recovery armed) or roll back and poison.
    fn resolve(&mut self, ci: usize) -> bool {
        if self.recover {
            // Install the verified replay bytes: bitwise what a clean
            // execution would have left.
            self.data[ci] = VData::Good;
            false
        } else {
            // Fail path: pre-image rollback first, then poison — the
            // committed prefix of the typed error stays clean.
            self.data[ci] = VData::RolledBack;
            self.token = Tok::Poisoned;
            self.poisoned_chunk = Some(ci as u8);
            true
        }
    }
}

impl Model for VerifyModel {
    type Action = VStep;

    fn actions(&self) -> Vec<VStep> {
        let mut acts = Vec::new();
        for (i, th) in self.threads.iter().enumerate() {
            match *th {
                VTh::Idle { .. } => acts.push(VStep::Seek(i)),
                VTh::Waiting { chunk } => {
                    if self.token == Tok::Granted(chunk) {
                        acts.push(VStep::Claim(i));
                    }
                    if self.token == Tok::Poisoned {
                        acts.push(VStep::Observe(i));
                    }
                }
                VTh::Verifying { .. } | VTh::LateVerifying { .. } => acts.push(VStep::Verify(i)),
                VTh::Executing { .. } => acts.push(VStep::Execute(i)),
                VTh::Releasing { .. } => acts.push(VStep::Advance(i)),
                VTh::Done => {}
            }
        }
        if let Some(VFault::PostCommitFlip { chunk }) = self.fault {
            // The flip may land at any point while the victim's packet
            // is outstanding — the window the protocol claims detection
            // over (later flips are the arena scrubber's concern).
            if !self.fault_fired && self.packet.is_some_and(|(c, _)| c == chunk) {
                acts.push(VStep::Flip);
            }
        }
        if self.token == Tok::Granted(self.chunks) && self.packet.is_some() {
            acts.push(VStep::FinalVerify);
        }
        acts
    }

    fn apply(&self, step: &VStep) -> Self {
        let mut s = self.clone();
        match *step {
            VStep::Seek(i) => {
                let VTh::Idle { cursor } = s.threads[i] else {
                    unreachable!("Seek from non-Idle")
                };
                if s.token == Tok::Poisoned {
                    s.threads[i] = VTh::Done;
                    return s;
                }
                let j = s.next_owned(i as u8, cursor);
                s.threads[i] = if j < s.chunks {
                    VTh::Waiting { chunk: j }
                } else {
                    VTh::Done
                };
            }
            VStep::Observe(i) => {
                s.threads[i] = VTh::Done;
            }
            VStep::Claim(i) => {
                let VTh::Waiting { chunk } = s.threads[i] else {
                    unreachable!("Claim from non-Waiting")
                };
                s.token = Tok::Claimed(chunk);
                let pending_pred = s.packet.is_some_and(|(c, _)| c + 1 == chunk);
                s.threads[i] = if pending_pred && s.bug != VBug::VerifyAfterHandoff {
                    // Faithful order: verify the predecessor while
                    // holding the downstream claim, before executing.
                    VTh::Verifying { chunk }
                } else {
                    // No packet (chunk 0), or the seeded bug defers the
                    // verification until after the body.
                    VTh::Executing { chunk }
                };
            }
            VStep::Verify(i) => {
                let late = matches!(s.threads[i], VTh::LateVerifying { .. });
                let (VTh::Verifying { chunk } | VTh::LateVerifying { chunk }) = s.threads[i] else {
                    unreachable!("Verify from non-verifying state")
                };
                let failed = s.run_verify();
                s.threads[i] = if failed {
                    VTh::Done
                } else if late {
                    VTh::Releasing { chunk }
                } else {
                    VTh::Executing { chunk }
                };
            }
            VStep::Execute(i) => {
                let VTh::Executing { chunk } = s.threads[i] else {
                    unreachable!("Execute from non-Executing")
                };
                s.executed[chunk as usize] += 1;
                let wrong = matches!(s.fault, Some(VFault::WrongBytes { chunk: fc }) if fc == chunk)
                    && !s.fault_fired;
                if wrong {
                    s.fault_fired = true;
                }
                s.data[chunk as usize] = if wrong { VData::Wrong } else { VData::Good };
                let pending_pred = s.packet.is_some_and(|(c, _)| c + 1 == chunk);
                s.threads[i] = if pending_pred {
                    // Only reachable under VerifyAfterHandoff: the
                    // deferred verification lands now, after the body
                    // already consumed unverified bytes.
                    VTh::LateVerifying { chunk }
                } else {
                    VTh::Releasing { chunk }
                };
            }
            VStep::Advance(i) => {
                let VTh::Releasing { chunk } = s.threads[i] else {
                    unreachable!("Advance from non-Releasing")
                };
                if s.token == Tok::Claimed(chunk) {
                    // The checksummed handoff: digest + pre-image packet
                    // published, then the advance CAS — program order
                    // within one worker, so modeled as one step.
                    s.packet = Some((chunk, i as u8));
                    s.token = Tok::Granted(chunk + 1);
                    s.threads[i] = VTh::Idle { cursor: chunk + 1 };
                } else {
                    s.threads[i] = VTh::Done;
                }
            }
            VStep::Flip => {
                let Some(VFault::PostCommitFlip { chunk }) = s.fault else {
                    unreachable!("Flip without a scripted flip")
                };
                s.fault_fired = true;
                s.data[chunk as usize] = VData::Flipped;
            }
            VStep::FinalVerify => {
                // Post-join supervisor verification of the last packet;
                // quiescent by construction.
                s.run_verify();
            }
        }
        s
    }

    fn invariant(&self) -> Result<(), String> {
        // 3. Blame never convicts an innocent worker (single fault).
        if self.blamed_innocent {
            return Err("an innocent worker was blamed for corruption".into());
        }
        // 1. Verification happens-before downstream commit visibility:
        //    no chunk's body runs while its predecessor is unverified.
        for th in &self.threads {
            if let VTh::Executing { chunk }
            | VTh::LateVerifying { chunk }
            | VTh::Releasing { chunk } = th
            {
                if self.packet.is_some_and(|(c, _)| c + 1 == *chunk) {
                    return Err(format!(
                        "chunk {chunk} executed before its predecessor was verified"
                    ));
                }
            }
        }
        // 2. A corrupted chunk is never part of the committed prefix.
        if let Some(pc) = self.poisoned_chunk {
            if self.data[pc as usize] != VData::RolledBack {
                return Err(format!("poisoned with chunk {pc} still corrupted in place"));
            }
            for c in 0..pc {
                if matches!(self.data[c as usize], VData::Wrong | VData::Flipped) {
                    return Err(format!(
                        "corrupted chunk {c} inside the committed prefix of the typed error"
                    ));
                }
            }
        }
        for (c, &n) in self.executed.iter().enumerate() {
            if n > 1 {
                return Err(format!("chunk {c} executed {n} times"));
            }
        }
        Ok(())
    }

    fn is_accepting(&self) -> bool {
        self.threads.iter().all(|t| matches!(t, VTh::Done)) && self.packet.is_none()
    }

    fn final_check(&self) -> Result<(), String> {
        if self.token == Tok::Poisoned {
            // Fail path: the per-state invariants already guaranteed the
            // rolled-back chunk and the clean prefix.
            return Ok(());
        }
        if self.token != Tok::Granted(self.chunks) {
            return Err(format!(
                "clean run ended with the token at {:?}, not Granted({})",
                self.token, self.chunks
            ));
        }
        for (c, &n) in self.executed.iter().enumerate() {
            if n != 1 {
                return Err(format!("chunk {c} executed {n} times"));
            }
        }
        // Online detection, never after the run: an accepted run has no
        // corrupted chunk left in place.
        if let Some(c) = self
            .data
            .iter()
            .position(|d| matches!(d, VData::Wrong | VData::Flipped))
        {
            return Err(format!("run accepted with chunk {c} still corrupted"));
        }
        Ok(())
    }
}

/// Exhaustively explore a verified-execution scenario, panicking on
/// truncation (a truncated exploration must never read as a pass).
pub fn verify_verification(scenario: VerifyModel, max_states: usize) -> Exploration<VStep> {
    let result = explore(scenario, max_states);
    assert!(
        !result.truncated,
        "exploration truncated at {} states — raise max_states",
        result.states
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_verified(scenario: Protocol, label: &str) {
        let result = verify(scenario, 2_000_000);
        if let Some(v) = &result.violation {
            panic!(
                "[{label}] {} — counterexample schedule ({} steps): {:?}",
                v.message,
                v.trace.len(),
                v.trace
            );
        }
        assert!(result.states > 0);
    }

    #[test]
    fn fault_free_protocol_verifies_for_3_and_4_threads() {
        for n in [3usize, 4] {
            assert_verified(Protocol::new(n, 5, 2), "fault-free");
        }
    }

    #[test]
    fn fail_stop_panic_recovers_under_every_schedule() {
        // Every interleaving must end clean (all chunks exactly once,
        // token at the end) or poisoned with the invariants intact —
        // never corrupted, never deadlocked.
        for faulty_thread in 0..3 {
            for chunk in 0..4 {
                assert_verified(
                    Protocol::new(3, 4, 2).with_fault(
                        faulty_thread,
                        chunk,
                        ModelFault::PanicFailStop,
                    ),
                    "fail-stop panic",
                );
            }
        }
    }

    #[test]
    fn helper_panic_recovers_under_every_schedule() {
        for chunk in 0..4 {
            assert_verified(
                Protocol::new(3, 4, 2).with_fault(1, chunk, ModelFault::PanicHelper),
                "helper panic",
            );
        }
    }

    #[test]
    fn mid_body_panic_never_reexecutes_a_mutated_chunk() {
        for chunk in 0..4 {
            assert_verified(
                Protocol::new(3, 4, 2).with_fault(2, chunk, ModelFault::PanicMidBody),
                "mid-body panic",
            );
        }
    }

    #[test]
    fn journaled_mid_body_panic_recovers_under_every_schedule() {
        // A mid-body panic on a journalable kernel rolls the chunk back
        // while the claim is still held, then retries like a fail-stop
        // fault. Every schedule must end clean (all chunks exactly once)
        // or poisoned with the invariants intact — in particular, the
        // torn window must never be observable to a re-claimer.
        for faulty_thread in 0..3 {
            for chunk in 0..4 {
                assert_verified(
                    Protocol::new(3, 4, 2).with_fault(
                        faulty_thread,
                        chunk,
                        ModelFault::PanicMidBodyJournaled,
                    ),
                    "journaled mid-body panic",
                );
            }
        }
    }

    #[test]
    fn journaled_panic_with_dry_budget_rolls_back_before_poisoning() {
        // No retry budget: the ladder falls through to poison, but the
        // rollback already ran (faithful order), so the poisoned state
        // carries no torn chunk — salvage can re-run it soundly.
        assert_verified(
            Protocol::new(3, 4, 0).with_fault(1, 1, ModelFault::PanicMidBodyJournaled),
            "journaled panic, dry budget",
        );
    }

    #[test]
    fn journaled_panic_plus_spurious_detection_verifies() {
        assert_verified(
            Protocol::new(3, 3, 2).with_spurious_detection().with_fault(
                0,
                1,
                ModelFault::PanicMidBodyJournaled,
            ),
            "journaled panic + spurious detection",
        );
    }

    #[test]
    fn stalled_executor_is_poisoned_never_double_executed() {
        // Thread 1 owns chunk 1: the stall fires while holding the claim.
        assert_verified(
            Protocol::new(3, 4, 2).with_fault(1, 1, ModelFault::Stall),
            "stall",
        );
    }

    #[test]
    fn spurious_watchdog_quarantine_races_are_benign() {
        // A healthy owner can be quarantined by a false-positive watchdog
        // and still race the new owner for the claim: the claim CAS must
        // arbitrate every such schedule.
        assert_verified(
            Protocol::new(3, 4, 2).with_spurious_detection(),
            "spurious detection",
        );
    }

    #[test]
    fn spurious_detection_plus_real_fault_verifies() {
        assert_verified(
            Protocol::new(3, 3, 2).with_spurious_detection().with_fault(
                0,
                1,
                ModelFault::PanicFailStop,
            ),
            "spurious + panic",
        );
    }

    #[test]
    fn two_faults_exhaust_the_ladder_cleanly() {
        assert_verified(
            Protocol::new(3, 5, 1)
                .with_fault(0, 1, ModelFault::PanicFailStop)
                .with_fault(2, 3, ModelFault::PanicFailStop),
            "two faults, budget 1",
        );
    }

    #[test]
    fn seeded_skip_claim_bug_is_caught() {
        // Without the claim CAS the protocol either wedges (the advance
        // CAS never matches) or double-executes under remap races; both
        // must surface.
        let quiet = explore(Protocol::new(3, 3, 2).with_bug(Bug::SkipClaim), 2_000_000);
        let v = quiet.violation.expect("SkipClaim must be caught");
        assert!(
            v.message.contains("deadlock") || v.message.contains("executor"),
            "unexpected message: {}",
            v.message
        );

        let racy = explore(
            Protocol::new(3, 3, 2)
                .with_bug(Bug::SkipClaim)
                .with_spurious_detection(),
            2_000_000,
        );
        assert!(
            racy.violation.is_some(),
            "SkipClaim under remap races must be caught"
        );
    }

    #[test]
    fn seeded_resurrect_token_bug_is_caught() {
        // Thread 2 owns chunk 2 under the initial round-robin, so the
        // stall actually fires; the detector poisons, the stalled thread
        // wakes, and the buggy plain-store release resurrects the token.
        let result = explore(
            Protocol::new(3, 4, 2)
                .with_bug(Bug::ResurrectToken)
                .with_fault(2, 2, ModelFault::Stall),
            2_000_000,
        );
        let v = result.violation.expect("ResurrectToken must be caught");
        assert!(v.message.contains("resurrected"), "{}", v.message);
    }

    #[test]
    fn seeded_unclaim_before_rollback_bug_is_caught() {
        // The buggy ordering unclaims the chunk (re-publishing it to the
        // survivors) before applying the undo journal: some schedule
        // lets a survivor claim the chunk while it is still torn.
        let result = explore(
            Protocol::new(3, 4, 2)
                .with_bug(Bug::UnclaimBeforeRollback)
                .with_fault(1, 1, ModelFault::PanicMidBodyJournaled),
            2_000_000,
        );
        let v = result
            .violation
            .expect("UnclaimBeforeRollback must be caught");
        assert!(v.message.contains("torn"), "{}", v.message);
    }

    #[test]
    fn cancellation_is_clean_at_every_point() {
        // The governor may fire the cancel at any schedule position:
        // every interleaving must end with a bitwise-clean committed
        // prefix (no torn chunk, no double-commit, no gap) or a clean
        // completion when the cancel lands too late — never both.
        for n in [2usize, 3] {
            assert_verified(Protocol::new(n, 4, 2).with_cancellation(), "cancellation");
        }
    }

    #[test]
    fn cancellation_racing_a_fail_stop_panic_verifies() {
        // Cancel and fault poisons race: whichever cause wins first, the
        // terminal state must satisfy its own invariant — cancelled
        // prefix-clean, or faulted with the usual guarantees.
        for chunk in 0..3 {
            assert_verified(
                Protocol::new(3, 3, 2).with_cancellation().with_fault(
                    1,
                    chunk,
                    ModelFault::PanicFailStop,
                ),
                "cancellation + fail-stop panic",
            );
        }
    }

    #[test]
    fn cancellation_racing_a_journaled_rollback_verifies() {
        // The cancel abort and the fault rollback both restore chunks
        // under their claims; no interleaving of the two may expose torn
        // state or double-commit a chunk.
        assert_verified(
            Protocol::new(3, 3, 2).with_cancellation().with_fault(
                0,
                1,
                ModelFault::PanicMidBodyJournaled,
            ),
            "cancellation + journaled panic",
        );
    }

    #[test]
    fn cancellation_under_spurious_detection_verifies() {
        // Remap races while a cancel abort is rolling back are exactly
        // where the claim-held-through-rollback ordering earns its keep.
        assert_verified(
            Protocol::new(3, 3, 2)
                .with_cancellation()
                .with_spurious_detection(),
            "cancellation + spurious detection",
        );
    }

    #[test]
    fn seeded_unclaim_before_cancel_rollback_bug_is_caught() {
        // The buggy abort hands the claim back before undoing the
        // cancelled chunk: a spurious quarantine of the aborting worker
        // remaps its chunk to a survivor, which re-claims it while the
        // rollback is still pending.
        let result = explore(
            Protocol::new(3, 4, 2)
                .with_cancellation()
                .with_spurious_detection()
                .with_bug(Bug::UnclaimBeforeCancelRollback),
            4_000_000,
        );
        let v = result
            .violation
            .expect("UnclaimBeforeCancelRollback must be caught");
        assert!(v.message.contains("torn"), "{}", v.message);
    }

    #[test]
    fn seeded_last_cause_wins_bug_is_caught() {
        // Two helper panics with a dry budget: both threads reach the
        // poison CAS; the second must lose, and a plain store does not.
        let result = explore(
            Protocol::new(3, 4, 0)
                .with_bug(Bug::LastCauseWins)
                .with_fault(0, 0, ModelFault::PanicHelper)
                .with_fault(1, 1, ModelFault::PanicHelper),
            2_000_000,
        );
        let v = result.violation.expect("LastCauseWins must be caught");
        assert!(v.message.contains("cause"), "{}", v.message);
    }

    #[test]
    fn checkpointing_verifies_fault_free() {
        // Invariant 8: every capture runs with the claim still held, so
        // no schedule lets a checkpoint observe a successor's write or a
        // torn chunk.
        for n in [2usize, 3] {
            assert_verified(Protocol::new(n, 4, 2).with_checkpointing(), "checkpointing");
        }
    }

    #[test]
    fn checkpointing_racing_cancellation_verifies() {
        // The cancel check precedes the commit and capture: a chunk is
        // either aborted pre-capture or captured post-commit — no
        // interleaving may checkpoint a chunk the abort then unwinds.
        assert_verified(
            Protocol::new(3, 3, 2)
                .with_cancellation()
                .with_checkpointing(),
            "checkpointing + cancellation",
        );
    }

    #[test]
    fn checkpointing_racing_a_journaled_rollback_verifies() {
        // The rollback happens under the faulted claim, before any
        // commit: no capture may persist the torn window.
        for chunk in 0..3 {
            assert_verified(
                Protocol::new(3, 3, 2).with_checkpointing().with_fault(
                    1,
                    chunk,
                    ModelFault::PanicMidBodyJournaled,
                ),
                "checkpointing + journaled panic",
            );
        }
    }

    fn assert_doacross_verified(scenario: DoAcrossModel, label: &str) {
        let result = verify_doacross(scenario, 2_000_000);
        if let Some(v) = &result.violation {
            panic!(
                "[{label}] {} — counterexample schedule ({} steps): {:?}",
                v.message,
                v.trace.len(),
                v.trace
            );
        }
        assert!(result.states > 0);
    }

    #[test]
    fn doacross_protocol_verifies_across_shapes() {
        // (workers, iters, chunk, lag) — chunk boundaries and lag
        // windows deliberately misaligned, including the case where a
        // gate's dependence sits two chunks back (the off-by-a-chunk
        // family a single-counter gate would miss).
        for (n, iters, c, lag) in [(2, 6, 2, 2), (3, 9, 2, 2), (2, 8, 3, 3), (2, 7, 2, 4)] {
            assert_doacross_verified(
                DoAcrossModel::new(n, iters, c, lag),
                &format!("doacross n={n} iters={iters} c={c} lag={lag}"),
            );
        }
    }

    #[test]
    fn seeded_post_before_exec_bug_is_caught() {
        let result = verify_doacross(
            DoAcrossModel::new(2, 6, 2, 2).with_bug(DaBug::PostBeforeExec),
            2_000_000,
        );
        let v = result
            .violation
            .expect("publishing the frontier before executing must be caught");
        assert!(
            v.message.contains("before executing"),
            "unexpected violation: {}",
            v.message
        );
    }

    #[test]
    fn seeded_wait_too_short_bug_is_caught() {
        // window = lag + 1 is the "wait for lag - 1 commits" off-by-one:
        // some schedule runs an iteration while its lag-distance
        // dependence is still unexecuted.
        let result = verify_doacross(
            DoAcrossModel::new(2, 6, 2, 2).with_bug(DaBug::WaitTooShort),
            2_000_000,
        );
        let v = result
            .violation
            .expect("the shortened gate window must be caught");
        assert!(
            v.message.contains("dependence"),
            "unexpected violation: {}",
            v.message
        );
    }

    #[test]
    fn seeded_capture_after_handoff_bug_is_caught() {
        // The buggy ordering hands the token off first and captures
        // second: some schedule lets the successor mutate chunk+1 before
        // the capture reads, persisting an uncommitted write.
        let result = explore(
            Protocol::new(3, 3, 2)
                .with_checkpointing()
                .with_bug(Bug::CaptureAfterHandoff),
            2_000_000,
        );
        let v = result
            .violation
            .expect("CaptureAfterHandoff must be caught");
        assert!(v.message.contains("uncommitted"), "{}", v.message);
    }

    fn assert_verify_verified(scenario: VerifyModel, label: &str) {
        let result = verify_verification(scenario, 2_000_000);
        if let Some(v) = &result.violation {
            panic!(
                "[{label}] {} — counterexample schedule ({} steps): {:?}",
                v.message,
                v.trace.len(),
                v.trace
            );
        }
        assert!(result.states > 0);
    }

    #[test]
    fn verified_execution_protocol_verifies_fault_free() {
        for n in [2u8, 3] {
            assert_verify_verified(VerifyModel::new(n, 4), &format!("verify fault-free n={n}"));
        }
    }

    #[test]
    fn wrong_bytes_are_detected_and_repaired_under_every_schedule() {
        // A miscomputing executor at any chunk: every interleaving must
        // convict it (digest matches the wrong bytes it digested itself)
        // and repair in place to the verified replay bytes.
        for chunk in 0..4 {
            assert_verify_verified(
                VerifyModel::new(2, 4).with_fault(VFault::WrongBytes { chunk }),
                &format!("wrong-bytes repair chunk={chunk}"),
            );
        }
        assert_verify_verified(
            VerifyModel::new(3, 4).with_fault(VFault::WrongBytes { chunk: 2 }),
            "wrong-bytes repair n=3",
        );
    }

    #[test]
    fn wrong_bytes_without_recovery_poison_with_a_clean_prefix() {
        // Fail-fast tolerance: the corrupted chunk must be rolled back
        // before the poison publishes, and every chunk before it must
        // still be good — invariant 2 holds in every poisoned state.
        for chunk in 0..4 {
            assert_verify_verified(
                VerifyModel::new(2, 4)
                    .with_fault(VFault::WrongBytes { chunk })
                    .without_recovery(),
                &format!("wrong-bytes fail-fast chunk={chunk}"),
            );
        }
    }

    #[test]
    fn post_commit_flip_never_blames_the_innocent_executor() {
        // The flip lands after the executor's digest capture, so the
        // digest guard must exonerate it in every schedule — detection
        // and recovery (or rollback) with no conviction.
        for chunk in 0..4 {
            for recover in [true, false] {
                let mut m = VerifyModel::new(2, 4).with_fault(VFault::PostCommitFlip { chunk });
                if !recover {
                    m = m.without_recovery();
                }
                assert_verify_verified(m, &format!("post-commit flip chunk={chunk}"));
            }
        }
    }

    #[test]
    fn replay_glitch_indicts_the_verifier_not_the_executor() {
        // A transient on the verifier's side: the tiebreak's second
        // replay disagrees with the first, so the committed bytes stand
        // and nobody is blamed — under every schedule.
        for chunk in 0..4 {
            assert_verify_verified(
                VerifyModel::new(2, 4).with_fault(VFault::ReplayGlitch { chunk }),
                &format!("replay glitch chunk={chunk}"),
            );
        }
    }

    #[test]
    fn seeded_verify_after_handoff_bug_is_caught() {
        // Deferring the predecessor's verification until after the body
        // breaks verification-happens-before-downstream-execution even
        // with no fault scripted — the ordering violation is structural.
        let result = verify_verification(
            VerifyModel::new(2, 3).with_bug(VBug::VerifyAfterHandoff),
            2_000_000,
        );
        let v = result
            .violation
            .expect("executing before the predecessor is verified must be caught");
        assert!(
            v.message.contains("before its predecessor was verified"),
            "unexpected violation: {}",
            v.message
        );
    }

    #[test]
    fn seeded_blame_without_tiebreak_bug_is_caught() {
        // Convicting on a lone replay mismatch blames the executor for
        // faults that are not its own: a verifier-side glitch and a
        // post-commit flip each produce an innocent conviction.
        for fault in [
            VFault::ReplayGlitch { chunk: 1 },
            VFault::PostCommitFlip { chunk: 1 },
        ] {
            let result = verify_verification(
                VerifyModel::new(2, 3)
                    .with_fault(fault)
                    .with_bug(VBug::BlameWithoutTiebreak),
                2_000_000,
            );
            let v = result
                .violation
                .unwrap_or_else(|| panic!("blame without tiebreak must be caught ({fault:?})"));
            assert!(
                v.message.contains("innocent"),
                "unexpected violation: {}",
                v.message
            );
        }
    }
}

//! End-to-end kill-restart recovery: `cascade chaos --kill` forks real
//! checkpointing child processes through the built `cascade` binary,
//! SIGKILLs each at a randomized point, and gates on bitwise equality
//! between the resumed run and an uninterrupted sequential run.
//!
//! The `--exe` override points the parent at the actual binary — under
//! `cargo test` the current executable is the test harness, which does
//! not dispatch cascade subcommands.

#[test]
fn chaos_kill_recovers_bitwise_at_random_kill_points() {
    let out = cascade_cli::run([
        "chaos",
        "--kill",
        "--exe",
        env!("CARGO_BIN_EXE_cascade"),
        "--n",
        "2048",
        "--plans",
        "3",
        "--chunk-iters",
        "64",
        "--max-threads",
        "2",
        "--seed",
        "11",
    ])
    .unwrap_or_else(|e| panic!("{e}"));
    assert!(out.contains("kill-restart storm: 3 trials"), "{out}");
    assert!(out.contains("0 diverged"), "{out}");
    assert!(
        out.contains("kill-restart verdict: every sampled SIGKILL point recovered bitwise"),
        "{out}"
    );
}

#[test]
fn chaos_kill_resume_survives_every_tolerance() {
    for tolerance in ["salvage", "retry", "fail-fast"] {
        let out = cascade_cli::run([
            "chaos",
            "--kill",
            "--exe",
            env!("CARGO_BIN_EXE_cascade"),
            "--n",
            "1024",
            "--plans",
            "2",
            "--chunk-iters",
            "64",
            "--max-threads",
            "2",
            "--seed",
            "23",
            "--tolerance",
            tolerance,
        ])
        .unwrap_or_else(|e| panic!("[{tolerance}] {e}"));
        assert!(out.contains("0 diverged"), "[{tolerance}] {out}");
    }
}

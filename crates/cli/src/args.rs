//! A small, dependency-free command-line parser.
//!
//! Grammar: `cascade <subcommand> [--flag] [--key value]...`. Values may
//! use size suffixes (`64K`, `2M`) where a byte count is expected.

use std::collections::HashMap;

/// Parsed invocation: a subcommand plus `--key value` options and bare
/// `--flag`s.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// The subcommand (first non-flag argument), if any.
    pub command: Option<String>,
    opts: HashMap<String, String>,
    flags: Vec<String>,
    /// Keys actually consulted (for unknown-option diagnostics).
    used: std::cell::RefCell<Vec<String>>,
}

/// What kind of failure an [`ArgError`] reports — and therefore which
/// exit code the binary maps it to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Bad invocation: unknown option, unparsable value, missing
    /// subcommand. Exit code 2.
    Usage,
    /// A verification run (e.g. `cascade chaos`) detected a correctness
    /// failure: the tool worked, the system under test did not. Exit
    /// code 1.
    Verification,
    /// A command panicked — a bug in the tool, not in the invocation.
    /// Exit code 2, with a message asking for a report.
    Internal,
}

/// A typed CLI error with a user-facing message; the kind picks the
/// process exit code (see [`ErrorKind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    kind: ErrorKind,
    message: String,
}

impl ArgError {
    /// A usage error (exit 2).
    pub fn usage(message: impl Into<String>) -> Self {
        ArgError {
            kind: ErrorKind::Usage,
            message: message.into(),
        }
    }

    /// A verification failure (exit 1): the run completed but detected a
    /// correctness problem.
    pub fn verification(message: impl Into<String>) -> Self {
        ArgError {
            kind: ErrorKind::Verification,
            message: message.into(),
        }
    }

    /// An internal error (exit 2): a command panicked.
    pub fn internal(message: impl Into<String>) -> Self {
        ArgError {
            kind: ErrorKind::Internal,
            message: message.into(),
        }
    }

    /// The user-facing message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The failure kind.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// Is this a verification failure (exit 1) rather than a usage or
    /// internal error (exit 2)?
    pub fn is_verification(&self) -> bool {
        self.kind == ErrorKind::Verification
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self.kind {
            ErrorKind::Verification => 1,
            ErrorKind::Usage | ErrorKind::Internal => 2,
        }
    }
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}
impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments (excluding `argv[0]`).
    pub fn parse<I, S>(raw: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut it = raw.into_iter().map(Into::into).peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let key = key.to_string();
                if key.is_empty() {
                    return Err(ArgError::usage("empty option name '--'"));
                }
                // An option takes a value when the next token is not
                // another option; otherwise it is a boolean flag. The
                // peek/next pair is written to degrade (treat the option
                // as a flag) rather than panic if they ever disagree.
                match it.peek() {
                    Some(next) if !next.starts_with("--") => match it.next() {
                        Some(v) => {
                            if args.opts.insert(key.clone(), v).is_some() {
                                return Err(ArgError::usage(format!("duplicate option --{key}")));
                            }
                        }
                        None => args.flags.push(key),
                    },
                    _ => args.flags.push(key),
                }
            } else if args.command.is_none() {
                args.command = Some(a);
            } else {
                return Err(ArgError::usage(format!(
                    "unexpected positional argument '{a}'"
                )));
            }
        }
        Ok(args)
    }

    /// String option with default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.used.borrow_mut().push(key.to_string());
        self.opts
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Optional string option.
    pub fn get_opt(&self, key: &str) -> Option<String> {
        self.used.borrow_mut().push(key.to_string());
        self.opts.get(key).cloned()
    }

    /// Numeric option with default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        self.used.borrow_mut().push(key.to_string());
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::usage(format!("--{key}: cannot parse '{v}' as a number"))),
        }
    }

    /// Byte-size option with default, accepting `K`/`M`/`G` suffixes.
    pub fn get_bytes(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        self.used.borrow_mut().push(key.to_string());
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => parse_bytes(v).ok_or_else(|| {
                ArgError::usage(format!("--{key}: cannot parse '{v}' as a byte size"))
            }),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.used.borrow_mut().push(key.to_string());
        self.flags.iter().any(|f| f == key)
    }

    /// Comma-separated list option.
    pub fn get_list(&self, key: &str, default: &[&str]) -> Vec<String> {
        self.used.borrow_mut().push(key.to_string());
        match self.opts.get(key) {
            None => default.iter().map(|s| s.to_string()).collect(),
            Some(v) => v.split(',').map(|s| s.trim().to_string()).collect(),
        }
    }

    /// After a command has pulled everything it understands, reject
    /// leftovers (typo protection).
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let used = self.used.borrow();
        for key in self.opts.keys().chain(self.flags.iter()) {
            if !used.iter().any(|u| u == key) {
                return Err(ArgError::usage(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

/// Parse `"64K"`, `"2M"`, `"512"`, `"1G"` into bytes.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1u64 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    let v: f64 = num.parse().ok()?;
    if v < 0.0 {
        return None;
    }
    Some((v * mult as f64).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_flags() {
        let a = Args::parse(["sim", "--machine", "r10000", "--per-loop", "--procs", "8"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("sim"));
        assert_eq!(a.get("machine", "ppro"), "r10000");
        assert_eq!(a.get_num("procs", 4usize).unwrap(), 8);
        assert!(a.flag("per-loop"));
        assert!(!a.flag("unbounded"));
        a.reject_unknown().unwrap();
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_bytes("64K"), Some(64 * 1024));
        assert_eq!(parse_bytes("2M"), Some(2 * 1024 * 1024));
        assert_eq!(parse_bytes("512"), Some(512));
        assert_eq!(parse_bytes("1.5k"), Some(1536));
        assert_eq!(parse_bytes("x"), None);
        assert_eq!(parse_bytes("-4K"), None);
    }

    #[test]
    fn duplicate_option_is_an_error() {
        assert!(Args::parse(["sim", "--procs", "2", "--procs", "4"]).is_err());
    }

    #[test]
    fn unknown_option_is_rejected_after_use() {
        let a = Args::parse(["sim", "--bogus", "1"]).unwrap();
        let _ = a.get("machine", "ppro");
        assert!(a.reject_unknown().is_err());
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(["sim"]).unwrap();
        assert_eq!(a.get_bytes("chunk", 64 * 1024).unwrap(), 64 * 1024);
        assert_eq!(a.get_list("values", &["2", "4"]), vec!["2", "4"]);
    }

    #[test]
    fn list_parsing_trims() {
        let a = Args::parse(["sweep", "--values", "2, 4 ,8"]).unwrap();
        assert_eq!(a.get_list("values", &[]), vec!["2", "4", "8"]);
    }

    #[test]
    fn positional_after_command_is_an_error() {
        assert!(Args::parse(["sim", "extra"]).is_err());
    }
}
